"""Process-parallel fan-out for independent simulation jobs.

Every experiment in this reproduction replays traces against many
independent (workload × configuration) pairs; each pair owns its own
:class:`~repro.sim.engine.Environment` and seeded RNG, so the jobs are
embarrassingly parallel.  :func:`sweep` is the shared fan-out point:
the experiment drivers describe their runs as :class:`Job` records and
receive results in job order, whatever the worker count.

Determinism guarantee
---------------------
``sweep`` returns *bit-identical* results for any ``n_workers``:

* results are collected with ``ProcessPoolExecutor.map``, which
  preserves submission order;
* each job regenerates its own trace from a fixed seed and builds a
  fresh environment inside the worker, so no state crosses jobs;
* jobs that cannot be pickled (e.g. closures over debug hooks) fall
  back to the deterministic in-process path with a warning rather than
  failing or changing semantics.

``n_workers=1`` (the default everywhere) never spawns processes, so
single-worker behaviour — including breakpoints, monkeypatching and
ad-hoc instrumentation inside job functions — is exactly the plain
serial call.

Observability
-------------
When an ambient tracer (:func:`repro.obs.tracing`) or an ambient
metrics registry (:func:`repro.obs.metrics_session`) is active, a
multi-process sweep transparently collects each worker's spans,
telemetry and live metrics: the job is wrapped so the worker runs it
under fresh collectors and ships the recorded payloads back with the
result, and the parent merges them into the ambient collectors in job
order — deterministic, and without re-running anything.  Neither
tracing nor metrics ever changes job *results*; the figures stay
bit-identical to an unobserved sweep.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Job", "resolve_workers", "sweep", "sweep_by_key"]


@dataclass(frozen=True)
class Job:
    """One independent unit of work: ``fn(*args, **kwargs)``.

    ``fn`` must be a module-level callable for multi-process runs (the
    standard pickle restriction); ``key`` is an optional identifier the
    driver uses to reassemble results and never affects execution.
    """

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    key: Any = None

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def resolve_workers(n_workers: Optional[int]) -> int:
    """Normalise a worker-count request: ``None``/``0`` = all cores."""
    if n_workers is None or n_workers == 0:
        return os.cpu_count() or 1
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0 or None, got {n_workers}")
    return n_workers


def _run_job(job: Job) -> Any:
    return job.run()


def _run_job_observed(job: Job, traced: bool, metered: bool) -> Tuple:
    """Worker-side wrapper: run ``job`` under fresh observability.

    Returns ``(result, trace_payload, metrics_snapshot)`` — the
    plain-data forms of everything the job recorded, ready to cross
    the process boundary.  Either side may be ``None`` when the
    corresponding collector was not requested.
    """
    from repro.obs.metrics import MetricsRegistry, metrics_session
    from repro.obs.tracer import Tracer, tracing

    trace_payload = None
    metrics_snapshot = None
    if traced and metered:
        with tracing(Tracer()) as tracer:
            with metrics_session(MetricsRegistry()) as registry:
                result = job.run()
        trace_payload = tracer.payload()
        metrics_snapshot = registry.snapshot()
    elif traced:
        with tracing(Tracer()) as tracer:
            result = job.run()
        trace_payload = tracer.payload()
    else:
        with metrics_session(MetricsRegistry()) as registry:
            result = job.run()
        metrics_snapshot = registry.snapshot()
    return result, trace_payload, metrics_snapshot


def _picklable(jobs: List[Job]) -> bool:
    try:
        pickle.dumps(jobs)
        return True
    except Exception:
        return False


def sweep(
    jobs: Iterable[Job],
    n_workers: int = 1,
    chunksize: int = 1,
) -> List[Any]:
    """Run ``jobs`` and return their results in job order.

    Parameters
    ----------
    jobs:
        The independent units of work.
    n_workers:
        ``1`` runs in-process (deterministic fallback, always
        available); ``> 1`` fans out across a
        :class:`~concurrent.futures.ProcessPoolExecutor`; ``None`` or
        ``0`` uses every core.
    chunksize:
        Batch size handed to each worker; raise above 1 when jobs are
        tiny relative to the pickling overhead.
    """
    job_list = list(jobs)
    workers = resolve_workers(n_workers)
    if workers > 1 and len(job_list) > 1 and not _picklable(job_list):
        warnings.warn(
            "sweep(): jobs are not picklable (closures or open handles "
            "in fn/args?); falling back to the in-process executor",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    if workers <= 1 or len(job_list) <= 1:
        # In-process: an active ambient tracer observes the jobs
        # directly, no wrapping required.
        return [job.run() for job in job_list]
    from repro.obs.metrics import current_metrics
    from repro.obs.tracer import current_tracer

    tracer = current_tracer()
    metrics = current_metrics()
    if tracer.enabled or metrics.enabled:
        # Fan out with per-worker collectors and merge the recorded
        # payloads back (in job order, so merged traces and metric
        # snapshots are deterministic for any worker count).
        wrapped = [
            Job(
                _run_job_observed,
                (job, tracer.enabled, metrics.enabled),
                key=job.key,
            )
            for job in job_list
        ]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(job_list))
        ) as pool:
            triples = list(
                pool.map(_run_job, wrapped, chunksize=chunksize)
            )
        results = []
        for result, trace_payload, metrics_snapshot in triples:
            if trace_payload is not None:
                tracer.merge_payload(trace_payload)
            if metrics_snapshot is not None:
                metrics.merge_snapshot(metrics_snapshot)
            results.append(result)
        return results
    with ProcessPoolExecutor(
        max_workers=min(workers, len(job_list))
    ) as pool:
        return list(pool.map(_run_job, job_list, chunksize=chunksize))


def sweep_by_key(
    jobs: Iterable[Job],
    n_workers: int = 1,
    chunksize: int = 1,
) -> Dict[Any, Any]:
    """Like :func:`sweep`, but returns ``{job.key: result}``.

    Keys must be unique and hashable; insertion order follows job
    order, so iterating the mapping reproduces the serial layout.
    """
    job_list = list(jobs)
    keys = [job.key for job in job_list]
    if len(set(keys)) != len(keys):
        raise ValueError("sweep_by_key() requires unique job keys")
    results = sweep(job_list, n_workers=n_workers, chunksize=chunksize)
    return dict(zip(keys, results))
