"""The open-loop trace driver shared by every experiment.

Replays a trace against a storage system: each request is submitted at
its arrival time regardless of completions (an *open* system, like the
paper's trace-driven DiskSim runs), then the run continues until the
last request drains.  Returns the measurement collector, the power
breakdown, and run metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.disk.request import IORequest
from repro.metrics.collector import RequestCollector
from repro.obs.tracer import tracer_for
from repro.power.accounting import PowerBreakdown, array_power
from repro.raid.array import DiskArray
from repro.sim.engine import Environment
from repro.sim.sharded import ShardedEngine, sharding_available
from repro.workloads.trace import Trace

__all__ = ["RunResult", "run_trace"]


@dataclass
class RunResult:
    """Everything an experiment needs from one simulation run."""

    label: str
    collector: RequestCollector
    power: PowerBreakdown
    elapsed_ms: float
    requests: int

    @property
    def mean_response_ms(self) -> float:
        return self.collector.mean_response_ms

    def response_cdf(self) -> List[float]:
        return self.collector.response_cdf()

    def rotational_pdf(self) -> List[float]:
        return self.collector.rotational_pdf()

    def percentile(self, q: float) -> float:
        return self.collector.response_percentile(q)


def run_trace(
    env: Environment,
    system: DiskArray,
    trace: Trace,
    keep_samples: bool = True,
    label: Optional[str] = None,
    warmup_fraction: float = 0.0,
    shards: int = 1,
) -> RunResult:
    """Replay ``trace`` against ``system`` and collect measurements.

    The trace's requests are cloned before submission, so the same
    trace object can be replayed against many configurations without
    cross-contamination of measurement fields.

    ``warmup_fraction`` discards the first fraction of completions
    from the collector (cold caches, parked arms), for steady-state
    measurements; power accounting always covers the whole run.

    ``shards`` > 1 runs the simulation on the sharded kernel
    (:mod:`repro.sim.sharded`): one forked engine shard per drive
    group, merged conservatively so every figure is bit-identical to
    the serial kernel.  Falls back to the serial kernel when fork is
    unavailable on the platform.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > 1 and not sharding_available():
        shards = 1
    collector = RequestCollector(keep_samples=keep_samples)
    warmup_remaining = int(len(trace) * warmup_fraction)
    warmed_up = 0

    def record(request: IORequest) -> None:
        nonlocal warmed_up
        if warmed_up < warmup_remaining:
            warmed_up += 1
            return
        collector.record(request)

    system.on_complete.append(record)
    fresh: List[IORequest] = [request.clone() for request in trace]
    # A Trace validates (or sorts) arrival order at construction, but
    # ``trace`` may be any iterable of requests.  The producer below
    # stamps each request's arrival at submission time, so an
    # out-of-order request would be *silently* submitted late with a
    # rewritten arrival time, corrupting every response-time figure.
    # Fail loudly instead.
    for index, (earlier, later) in enumerate(zip(fresh, fresh[1:])):
        if later.arrival_time < earlier.arrival_time:
            raise ValueError(
                f"run_trace: trace arrival times not monotone at request "
                f"{index + 1} ({later.arrival_time} after "
                f"{earlier.arrival_time}); sort the trace first, e.g. "
                "Trace(requests, sort=True)"
            )

    def producer():
        timeout = env.timeout
        submit = system.submit
        for request in fresh:
            delay = request.arrival_time - env._now
            if delay > 0:
                yield timeout(delay)
            request.arrival_time = env._now
            submit(request)

    # Every span a run records fires inside env.run(); scoping the run
    # by its label separates identically named drives of different
    # runs onto distinct exporter tracks (e.g. the HC-SD drive, which
    # is always called after its spec, across four workloads).
    run_label = label or system.label
    tracer = tracer_for(env)
    # Construct the sharded engine before the producer process exists:
    # it only validates here; the fork happens inside engine.run(), by
    # which point the producer must already be on the schedule (shard
    # workers purge it from their inherited copy).
    engine = ShardedEngine(env, system, shards) if shards > 1 else None
    env.process(producer())
    with tracer.scope(run_label):
        if tracer.enabled:
            tracer.instant(
                "run-start",
                env.now,
                (system.label, "run"),
                args={"requests": len(fresh)},
            )
        if engine is not None:
            engine.run()
        else:
            env.run()
        if tracer.enabled:
            tracer.instant(
                "run-end",
                env.now,
                (system.label, "run"),
                args={"requests": len(fresh), "elapsed_ms": env.now},
            )
    if tracer.enabled:
        telemetry = tracer.telemetry
        telemetry.counter("runs.completed").inc()
        telemetry.stats("run.elapsed_ms").add(env.now)
        if collector.completed:
            telemetry.stats("run.mean_response_ms").add(
                collector.mean_response_ms
            )
    completed = collector.completed + warmed_up
    if completed != len(fresh):
        raise RuntimeError(
            f"run did not drain: {completed} of {len(fresh)} "
            "requests completed"
        )
    elapsed = max(env.now, 1e-9)
    return RunResult(
        label=label or system.label,
        collector=collector,
        power=array_power(system.drives, elapsed),
        elapsed_ms=elapsed,
        requests=len(fresh),
    )
