"""The open-loop trace driver shared by every experiment.

Replays a trace against a storage system: each request is submitted at
its arrival time regardless of completions (an *open* system, like the
paper's trace-driven DiskSim runs), then the run continues until the
last request drains.  Returns the measurement collector, the power
breakdown, and run metadata.
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.disk.request import IORequest
from repro.metrics.collector import RequestCollector
from repro.obs.metrics import metrics_for
from repro.obs.tracer import tracer_for
from repro.power.accounting import PowerBreakdown, array_power
from repro.raid.array import DiskArray
from repro.sim.engine import Environment
from repro.sim.sharded import ShardedEngine, sharding_available
from repro.workloads.streaming import StreamingTrace
from repro.workloads.trace import Trace

__all__ = ["ChunkProgress", "RunResult", "run_trace"]


@dataclass
class RunResult:
    """Everything an experiment needs from one simulation run."""

    label: str
    collector: RequestCollector
    power: PowerBreakdown
    elapsed_ms: float
    requests: int

    @property
    def mean_response_ms(self) -> float:
        return self.collector.mean_response_ms

    def response_cdf(self) -> List[float]:
        return self.collector.response_cdf()

    def rotational_pdf(self) -> List[float]:
        return self.collector.rotational_pdf()

    def percentile(self, q: float) -> float:
        return self.collector.response_percentile(q)


@dataclass
class ChunkProgress:
    """Telemetry for one completed chunk of a streamed replay.

    ``chunk`` holds exact per-chunk measurements (samples included, so
    chunk percentiles are exact); ``cumulative`` is the incremental
    :meth:`~repro.metrics.collector.RequestCollector.merge` of every
    chunk so far with samples dropped — the flat-memory running
    aggregate a progress consumer (e.g. a serve worker heartbeat)
    reads without waiting for the run to drain.
    """

    index: int
    completed: int
    simulated_ms: float
    chunk: RequestCollector
    cumulative: RequestCollector


def run_trace(
    env: Environment,
    system: DiskArray,
    trace: Trace,
    keep_samples: bool = True,
    label: Optional[str] = None,
    warmup_fraction: float = 0.0,
    shards: int = 1,
    on_chunk: Optional[Callable[[ChunkProgress], None]] = None,
    chunk_requests: Optional[int] = None,
) -> RunResult:
    """Replay ``trace`` against ``system`` and collect measurements.

    The trace's requests are cloned before submission, so the same
    trace object can be replayed against many configurations without
    cross-contamination of measurement fields.

    ``warmup_fraction`` discards the first fraction of completions
    from the collector (cold caches, parked arms), for steady-state
    measurements; power accounting always covers the whole run.

    ``shards`` > 1 runs the simulation on the sharded kernel
    (:mod:`repro.sim.sharded`): one forked engine shard per drive
    group, merged conservatively so every figure is bit-identical to
    the serial kernel.  Falls back to the serial kernel when fork is
    unavailable on the platform.

    ``trace`` may also be a
    :class:`~repro.workloads.streaming.StreamingTrace`: requests are
    then pulled from disk in bounded-memory chunks and submitted
    without ever materializing the trace, and the collector's figures
    are bit-identical to an in-memory replay of the same file (the
    record path is unchanged; only the producer's sourcing differs).
    ``on_chunk``, if given, is called with a :class:`ChunkProgress`
    after every ``chunk_requests`` completions (default: the stream's
    chunk size): per-chunk collectors are merged incrementally so the
    progress aggregate stays flat in memory too.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if isinstance(trace, StreamingTrace):
        if warmup_fraction > 0.0:
            raise ValueError(
                "warmup_fraction requires a known trace length; "
                "materialize the stream or use warmup_fraction=0"
            )
        if shards > 1:
            raise ValueError(
                "streamed replay runs on the serial kernel: the shard "
                "workers fork mid-run and cannot share one file "
                "cursor; use shards=1 (replay-level parallelism comes "
                "from the job service instead)"
            )
        return _run_trace_streaming(
            env,
            system,
            trace,
            keep_samples=keep_samples,
            label=label,
            on_chunk=on_chunk,
            chunk_requests=chunk_requests,
        )
    if on_chunk is not None or chunk_requests is not None:
        raise ValueError(
            "on_chunk/chunk_requests apply to StreamingTrace replays"
        )
    if shards > 1 and not sharding_available():
        shards = 1
    collector = RequestCollector(keep_samples=keep_samples)
    warmup_remaining = int(len(trace) * warmup_fraction)
    warmed_up = 0

    if warmup_remaining:
        def record(request: IORequest) -> None:
            nonlocal warmed_up
            if warmed_up < warmup_remaining:
                warmed_up += 1
                return
            collector.record(request)
        system.on_complete.append(record)
    else:
        # No warmup (the default): skip the wrapper frame and let the
        # completion hook call the collector directly.
        system.on_complete.append(collector.record)
    # ``clone()`` with no overrides is exactly this positional fast
    # path; calling it directly skips one wrapper frame per request.
    fresh: List[IORequest] = [
        request.clone_slice(
            request.lba,
            request.size,
            request.is_read,
            request.arrival_time,
            request.source_disk,
        )
        for request in trace
    ]
    # A Trace validates (or sorts) arrival order at construction, but
    # ``trace`` may be any iterable of requests.  The producer below
    # stamps each request's arrival at submission time, so an
    # out-of-order request would be *silently* submitted late with a
    # rewritten arrival time, corrupting every response-time figure.
    # Fail loudly instead.
    for index, (earlier, later) in enumerate(zip(fresh, fresh[1:])):
        if later.arrival_time < earlier.arrival_time:
            raise ValueError(
                f"run_trace: trace arrival times not monotone at request "
                f"{index + 1} ({later.arrival_time} after "
                f"{earlier.arrival_time}); sort the trace first, e.g. "
                "Trace(requests, sort=True)"
            )

    def producer():
        timeout = env.timeout
        submit = system.submit
        pool = env._timeout_pool
        for request in fresh:
            delay = request.arrival_time - env._now
            if delay > 0:
                if pool:
                    # Inlined Environment.timeout pool path (the
                    # ``delay > 0`` guard above subsumes its negative-
                    # delay check); one inter-arrival wait per request
                    # makes this the producer's hottest line.  See
                    # engine.timeout for the canonical body.
                    wait = pool.pop()
                    wait.delay = delay
                    wait._value = None
                    wait._ok = True
                    wait.defused = False
                    env._eid += 1
                    calendar = env._calendar
                    if calendar is not None and (
                        calendar._cursor > calendar._nbuckets
                    ):
                        current = calendar._current
                        insort(
                            current,
                            (-env._now - delay, -1, -env._eid, wait),
                        )
                        if len(current) > calendar._spill_limit:
                            calendar._rest += len(current)
                            calendar._overflow.extend(current)
                            del current[:]
                            calendar._reseed()
                    else:
                        env._queue.push(
                            env._now + delay, 1, env._eid, wait
                        )
                    yield wait
                else:
                    yield timeout(delay)
            request.arrival_time = env._now
            submit(request)

    # Every span a run records fires inside env.run(); scoping the run
    # by its label separates identically named drives of different
    # runs onto distinct exporter tracks (e.g. the HC-SD drive, which
    # is always called after its spec, across four workloads).
    run_label = label or system.label
    tracer = tracer_for(env)
    metrics = metrics_for(env)
    wall_start = time.perf_counter() if metrics.enabled else 0.0
    # Construct the sharded engine before the producer process exists:
    # it only validates here; the fork happens inside engine.run(), by
    # which point the producer must already be on the schedule (shard
    # workers purge it from their inherited copy).
    engine = ShardedEngine(env, system, shards) if shards > 1 else None
    env.process(producer())
    with tracer.scope(run_label):
        if tracer.enabled:
            tracer.instant(
                "run-start",
                env.now,
                (system.label, "run"),
                args={"requests": len(fresh)},
            )
        if engine is not None:
            engine.run()
        else:
            env.run()
        if tracer.enabled:
            tracer.instant(
                "run-end",
                env.now,
                (system.label, "run"),
                args={"requests": len(fresh), "elapsed_ms": env.now},
            )
    if tracer.enabled:
        telemetry = tracer.telemetry
        telemetry.counter("runs.completed").inc()
        telemetry.stats("run.elapsed_ms").add(env.now)
        if collector.completed:
            telemetry.stats("run.mean_response_ms").add(
                collector.mean_response_ms
            )
    if metrics.enabled:
        # Wall-clock only — never simulated time — so figures stay
        # bit-identical with metrics on or off.
        wall_ms = (time.perf_counter() - wall_start) * 1000.0
        metrics.counter(
            "repro_runs_total", "Completed replays", labels=("mode",)
        ).labels(mode="sharded" if engine is not None else "memory").inc()
        metrics.histogram(
            "repro_run_wall_ms", "Wall-clock time of one replay"
        ).observe(wall_ms)
    completed = collector.completed + warmed_up
    if completed != len(fresh):
        raise RuntimeError(
            f"run did not drain: {completed} of {len(fresh)} "
            "requests completed"
        )
    elapsed = max(env.now, 1e-9)
    return RunResult(
        label=label or system.label,
        collector=collector,
        power=array_power(system.drives, elapsed),
        elapsed_ms=elapsed,
        requests=len(fresh),
    )


def _run_trace_streaming(
    env: Environment,
    system: DiskArray,
    trace: StreamingTrace,
    keep_samples: bool,
    label: Optional[str],
    on_chunk: Optional[Callable[[ChunkProgress], None]],
    chunk_requests: Optional[int],
) -> RunResult:
    """Replay a disk-backed stream without materializing it.

    The measurement path is *identical* to the in-memory replay: one
    collector records every completion in the same order the serial
    kernel produces, so every figure (means, CDFs, PDFs, power) is
    bit-identical to ``run_trace`` over ``trace.materialize()`` —
    streaming only changes where the producer gets its requests.
    Memory is bounded by one parse chunk plus in-flight requests (plus
    retained samples if ``keep_samples=True``; pass ``False`` for a
    flat ceiling on multi-million-request traces).
    """
    chunk_size = chunk_requests or trace.chunk_requests
    if chunk_size < 1:
        raise ValueError(
            f"chunk_requests must be >= 1, got {chunk_size}"
        )
    collector = RequestCollector(keep_samples=keep_samples)
    submitted = 0
    progress_state = None
    if on_chunk is None:
        system.on_complete.append(collector)
    else:
        # Per-chunk collectors keep samples (exact chunk percentiles)
        # and merge incrementally into a sample-free cumulative
        # aggregate, so progress costs O(chunk), not O(trace).
        progress_state = {
            "chunk": RequestCollector(keep_samples=True),
            "cumulative": RequestCollector(keep_samples=False),
            "index": 0,
        }

        def record(request: IORequest) -> None:
            collector.record(request)
            chunk = progress_state["chunk"]
            chunk.record(request)
            if chunk.completed >= chunk_size:
                _flush_chunk(progress_state, on_chunk, env)

        system.on_complete.append(record)

    stream_stats = {"chunks": 0, "peak": 0}

    def producer():
        nonlocal submitted
        timeout = env.timeout
        submit = system.submit
        for chunk in trace.iter_chunks(chunk_size):
            stream_stats["chunks"] += 1
            if len(chunk) > stream_stats["peak"]:
                stream_stats["peak"] = len(chunk)
            for request in chunk:
                delay = request.arrival_time - env._now
                if delay > 0:
                    yield timeout(delay)
                request.arrival_time = env._now
                submit(request)
                submitted += 1

    run_label = label or system.label
    tracer = tracer_for(env)
    metrics = metrics_for(env)
    wall_start = time.perf_counter() if metrics.enabled else 0.0
    env.process(producer())
    with tracer.scope(run_label):
        if tracer.enabled:
            tracer.instant(
                "run-start",
                env.now,
                (system.label, "run"),
                args={"trace": trace.name, "streamed": True},
            )
        env.run()
        if tracer.enabled:
            tracer.instant(
                "run-end",
                env.now,
                (system.label, "run"),
                args={"requests": submitted, "elapsed_ms": env.now},
            )
    if progress_state is not None and progress_state["chunk"].completed:
        _flush_chunk(progress_state, on_chunk, env)
    if tracer.enabled:
        telemetry = tracer.telemetry
        telemetry.counter("runs.completed").inc()
        telemetry.counter("runs.streamed").inc()
        telemetry.stats("run.elapsed_ms").add(env.now)
        if collector.completed:
            telemetry.stats("run.mean_response_ms").add(
                collector.mean_response_ms
            )
    if metrics.enabled:
        # Wall-clock only, measured after the run: replay throughput
        # and chunking shape, with zero work on the simulated path.
        wall_s = max(time.perf_counter() - wall_start, 1e-9)
        metrics.counter(
            "repro_runs_total", "Completed replays", labels=("mode",)
        ).labels(mode="streamed").inc()
        metrics.counter(
            "repro_replay_chunks_total", "Streamed chunks replayed"
        ).inc(stream_stats["chunks"])
        metrics.counter(
            "repro_replay_requests_total", "Requests replayed from streams"
        ).inc(submitted)
        metrics.gauge(
            "repro_replay_peak_chunk_requests",
            "Largest chunk of the last streamed replay",
        ).set(stream_stats["peak"])
        metrics.gauge(
            "repro_replay_requests_per_s",
            "Wall-clock replay rate of the last streamed run",
        ).set(submitted / wall_s)
        metrics.histogram(
            "repro_run_wall_ms", "Wall-clock time of one replay"
        ).observe(wall_s * 1000.0)
    if collector.completed != submitted:
        raise RuntimeError(
            f"streamed run did not drain: {collector.completed} of "
            f"{submitted} requests completed"
        )
    if progress_state is not None:
        merged = progress_state["cumulative"]
        if merged.completed != collector.completed:
            raise RuntimeError(
                "chunk-merge accounting mismatch: merged "
                f"{merged.completed} completions, collector saw "
                f"{collector.completed}"
            )
    elapsed = max(env.now, 1e-9)
    return RunResult(
        label=run_label,
        collector=collector,
        power=array_power(system.drives, elapsed),
        elapsed_ms=elapsed,
        requests=submitted,
    )


def _flush_chunk(progress_state, on_chunk, env) -> None:
    chunk = progress_state["chunk"]
    progress_state["cumulative"] = cumulative = progress_state[
        "cumulative"
    ].merge(chunk)
    on_chunk(
        ChunkProgress(
            index=progress_state["index"],
            completed=cumulative.completed,
            simulated_ms=env.now,
            chunk=chunk,
            cumulative=cumulative,
        )
    )
    progress_state["index"] += 1
    progress_state["chunk"] = RequestCollector(keep_samples=True)
