"""Sensitivity of the paper's conclusions to arrival intensity.

The original traces' arrival intensities are not published (except
TPC-H's), so this reproduction calibrates them (see EXPERIMENTS.md).
This study asks how robust the headline conclusions are to that
calibration: it sweeps each workload's mean inter-arrival time over a
range of scale factors and re-evaluates

* the MD → HC-SD gap (does naive consolidation still collapse?), and
* the smallest actuator count whose HC-SD-SA(n) matches MD.

The paper's qualitative story should hold over a broad band: at much
lighter load everything trivially matches (the TPC-H regime); at much
heavier load no single-drive design can keep up (the Financial
regime); in between, more intensity ⇒ more actuators needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments.configs import build_hcsd_system, build_md_system
from repro.experiments.executor import Job, sweep
from repro.experiments.runner import RunResult, run_trace
from repro.metrics.report import format_table
from repro.sim.engine import Environment
from repro.workloads.commercial import (
    COMMERCIAL_WORKLOADS,
    CommercialWorkload,
)

__all__ = [
    "SensitivityCell",
    "SensitivityResult",
    "format_sensitivity",
    "run_sensitivity_study",
]

DEFAULT_SCALES = (2.0, 1.5, 1.0, 0.75)
DEFAULT_ACTUATOR_LADDER = (1, 2, 3, 4)
DEFAULT_REQUESTS = 3000
#: SA(n) "matches MD" when its mean response is within this factor.
MATCH_TOLERANCE = 1.35


@dataclass
class SensitivityCell:
    """One (workload, intensity-scale) evaluation."""

    workload: str
    scale: float
    interarrival_ms: float
    md: RunResult
    by_actuators: Dict[int, RunResult] = field(default_factory=dict)

    @property
    def gap_factor(self) -> float:
        """HC-SD mean response over MD mean response."""
        return (
            self.by_actuators[1].mean_response_ms
            / self.md.mean_response_ms
        )

    def actuators_to_match(self) -> Optional[int]:
        """Smallest n with SA(n) within tolerance of MD, or None."""
        limit = self.md.mean_response_ms * MATCH_TOLERANCE
        for actuators in sorted(self.by_actuators):
            if self.by_actuators[actuators].mean_response_ms <= limit:
                return actuators
        return None


@dataclass
class SensitivityResult:
    cells: List[SensitivityCell] = field(default_factory=list)

    def for_workload(self, name: str) -> List[SensitivityCell]:
        return [cell for cell in self.cells if cell.workload == name]

    def monotone_actuator_need(self, name: str) -> bool:
        """Heavier load never needs *fewer* actuators (None = ∞)."""
        cells = sorted(
            self.for_workload(name), key=lambda c: c.scale, reverse=True
        )  # descending scale = ascending intensity
        previous = 0
        for cell in cells:
            needed = cell.actuators_to_match()
            value = needed if needed is not None else 99
            if value < previous:
                return False
            previous = value
        return True


def _cell_job(
    workload: CommercialWorkload,
    scale: float,
    ladder: Tuple[int, ...],
    requests: int,
) -> SensitivityCell:
    """One (workload, intensity-scale) cell (executes in a worker)."""
    scaled = workload.scaled(scale)
    trace = scaled.generate(requests)
    env = Environment()
    md = run_trace(env, build_md_system(env, scaled), trace)
    cell = SensitivityCell(
        workload=workload.name,
        scale=scale,
        interarrival_ms=scaled.mean_interarrival_ms,
        md=md,
    )
    for actuators in ladder:
        env = Environment()
        system = build_hcsd_system(env, scaled, actuators=actuators)
        cell.by_actuators[actuators] = run_trace(env, system, trace)
    return cell


def run_sensitivity_study(
    workloads: Optional[Iterable[CommercialWorkload]] = None,
    scales: Iterable[float] = DEFAULT_SCALES,
    actuator_ladder: Iterable[int] = DEFAULT_ACTUATOR_LADDER,
    requests: int = DEFAULT_REQUESTS,
    n_workers: int = 1,
) -> SensitivityResult:
    ladder = tuple(actuator_ladder)
    jobs = [
        Job(
            _cell_job,
            (workload, scale, ladder, requests),
            key=(workload.name, scale),
        )
        for workload in (workloads or COMMERCIAL_WORKLOADS.values())
        for scale in scales
    ]
    result = SensitivityResult()
    result.cells.extend(sweep(jobs, n_workers=n_workers))
    return result


def format_sensitivity(result: SensitivityResult) -> str:
    headers = [
        "workload",
        "ia_scale",
        "ia_ms",
        "MD_ms",
        "HC-SD_ms",
        "gap",
        "SA(n)_to_match",
    ]
    rows: List[Tuple] = []
    for cell in result.cells:
        needed = cell.actuators_to_match()
        rows.append(
            (
                cell.workload,
                cell.scale,
                cell.interarrival_ms,
                cell.md.mean_response_ms,
                cell.by_actuators[1].mean_response_ms,
                cell.gap_factor,
                needed if needed is not None else ">4",
            )
        )
    return format_table(
        headers,
        rows,
        title=(
            "Sensitivity: arrival-intensity scaling vs actuators needed "
            "to match MD"
        ),
        float_format="{:.2f}",
    )
