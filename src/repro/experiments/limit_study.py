"""Figures 2 and 3: the MD → HC-SD limit study.

For each commercial workload, replay the same trace against (a) the
original multi-disk array and (b) the single high-capacity drive, and
report the response-time CDFs (Figure 2) and the mode-stacked average
power of each storage system (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.experiments.configs import build_hcsd_system, build_md_system
from repro.experiments.executor import Job, sweep
from repro.experiments.runner import RunResult, run_trace
from repro.metrics.cdf import RESPONSE_TIME_EDGES_MS
from repro.metrics.report import format_cdf_table, format_table
from repro.sim.engine import Environment
from repro.workloads.commercial import (
    COMMERCIAL_WORKLOADS,
    CommercialWorkload,
)

__all__ = ["LimitStudyResult", "format_figure2", "format_figure3",
           "run_limit_study"]

DEFAULT_REQUESTS = 6000


@dataclass
class LimitStudyResult:
    """MD and HC-SD runs for one workload."""

    workload: str
    md: RunResult
    hcsd: RunResult

    @property
    def power_ratio(self) -> float:
        """MD power over HC-SD power (the order-of-magnitude claim)."""
        return self.md.power.total_watts / self.hcsd.power.total_watts


def _limit_job(
    workload: CommercialWorkload, requests: int, shards: int = 1
) -> LimitStudyResult:
    """One workload's MD and HC-SD runs (executes in a worker)."""
    trace = workload.generate(requests)
    env = Environment()
    md = run_trace(env, build_md_system(env, workload), trace,
                   shards=shards)
    env = Environment()
    hcsd = run_trace(env, build_hcsd_system(env, workload), trace,
                     shards=shards)
    return LimitStudyResult(workload=workload.name, md=md, hcsd=hcsd)


def run_limit_study(
    workloads: Optional[Iterable[CommercialWorkload]] = None,
    requests: int = DEFAULT_REQUESTS,
    n_workers: int = 1,
    shards: int = 1,
) -> Dict[str, LimitStudyResult]:
    """Run the limit study; returns results keyed by workload name.

    ``n_workers`` fans the per-workload jobs out across processes via
    :func:`repro.experiments.executor.sweep`; ``shards`` runs each
    simulation on the sharded kernel (one forked engine shard per
    drive group).  Both compose, and results are bit-identical to the
    serial path for any worker or shard count.
    """
    selected = list(workloads or COMMERCIAL_WORKLOADS.values())
    jobs = [
        Job(_limit_job, (workload, requests, shards), key=workload.name)
        for workload in selected
    ]
    return {
        result.workload: result
        for result in sweep(jobs, n_workers=n_workers)
    }


def _edge_labels() -> List[str]:
    labels = [f"{edge:g}" for edge in RESPONSE_TIME_EDGES_MS]
    labels.append("200+")
    return labels


def format_figure2(results: Dict[str, LimitStudyResult]) -> str:
    """Figure 2: response-time CDFs, MD vs HC-SD, per workload."""
    blocks = []
    for name, result in results.items():
        blocks.append(
            format_cdf_table(
                _edge_labels(),
                [
                    ("MD", result.md.response_cdf()),
                    ("HC-SD", result.hcsd.response_cdf()),
                ],
                title=f"Figure 2 [{name}]: response-time CDF",
            )
        )
    return "\n\n".join(blocks)


def format_figure3(results: Dict[str, LimitStudyResult]) -> str:
    """Figure 3: average power, stacked by operating mode."""
    headers = [
        "workload",
        "system",
        "idle_W",
        "seek_W",
        "rotational_W",
        "transfer_W",
        "total_W",
    ]
    rows = []
    for name, result in results.items():
        for label, run in (("MD", result.md), ("HC-SD", result.hcsd)):
            power = run.power
            rows.append(
                (
                    name,
                    label,
                    power.idle_watts,
                    power.seek_watts,
                    power.rotational_watts,
                    power.transfer_watts,
                    power.total_watts,
                )
            )
    return format_table(
        headers,
        rows,
        title="Figure 3: storage-system average power (MD vs HC-SD)",
        float_format="{:.2f}",
    )
