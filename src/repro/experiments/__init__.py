"""Experiment drivers: one module per paper table/figure.

* :mod:`repro.experiments.configs` — MD / HC-SD / HC-SD-SA(n) storage
  system factories for each workload.
* :mod:`repro.experiments.runner` — the open-loop trace driver.
* :mod:`repro.experiments.limit_study` — Figures 2 and 3.
* :mod:`repro.experiments.bottleneck` — Figure 4.
* :mod:`repro.experiments.parallel_study` — Figure 5.
* :mod:`repro.experiments.rpm_study` — Figures 6 and 7.
* :mod:`repro.experiments.raid_study` — Figure 8.
* :mod:`repro.experiments.technology` — Tables 1 and 2.
* :mod:`repro.experiments.cost_study` — Table 9a / Figure 9b.
* :mod:`repro.experiments.executor` — the process-parallel ``sweep()``
  fan-out every driver above runs on (``n_workers`` parameter).
"""

from repro.experiments.executor import Job, sweep, sweep_by_key
from repro.experiments.configs import (
    build_hcsd_drive,
    build_hcsd_system,
    build_md_system,
    build_raid0_system,
)
from repro.experiments.runner import RunResult, run_trace
from repro.experiments.limit_study import run_limit_study
from repro.experiments.bottleneck import run_bottleneck_study
from repro.experiments.parallel_study import run_parallel_study
from repro.experiments.rpm_study import run_rpm_study
from repro.experiments.raid_study import run_raid_study
from repro.experiments.cost_study import run_cost_study

__all__ = [
    "Job",
    "sweep",
    "sweep_by_key",
    "RunResult",
    "build_hcsd_drive",
    "build_hcsd_system",
    "build_md_system",
    "build_raid0_system",
    "run_bottleneck_study",
    "run_cost_study",
    "run_limit_study",
    "run_parallel_study",
    "run_raid_study",
    "run_rpm_study",
    "run_trace",
]
