"""Table 9a and Figure 9b: the cost-benefit analysis.

Thin reporting layer over :mod:`repro.cost`: renders the component
cost table for conventional / 2-actuator / 4-actuator drives and the
iso-performance configuration cost comparison.
"""

from __future__ import annotations

from typing import List

from repro.cost.analysis import (
    ConfigurationCost,
    iso_performance_comparison,
)
from repro.cost.components import (
    COMPONENT_COSTS,
    drive_material_cost,
)
from repro.experiments.executor import Job, sweep
from repro.metrics.report import format_table

__all__ = ["format_figure9b", "format_table9a", "run_cost_study"]

_ACTUATOR_COLUMNS = (1, 2, 4)


def format_table9a(platters: int = 4) -> str:
    """Table 9a: per-component and total material costs."""
    headers = ["component", "unit_cost"] + [
        {1: "conventional", 2: "2-actuator", 4: "4-actuator"}[k]
        for k in _ACTUATOR_COLUMNS
    ]
    rows = []
    for component in COMPONENT_COSTS:
        row = [component.name]
        unit = component.unit
        if unit.low == unit.high == 0.0:
            row.append("(affine)")
        else:
            row.append(str(unit))
        for actuators in _ACTUATOR_COLUMNS:
            row.append(str(component.drive_cost(platters, actuators)))
        rows.append(row)
    total_row = ["TOTAL", ""]
    for actuators in _ACTUATOR_COLUMNS:
        total_row.append(str(drive_material_cost(platters, actuators)))
    rows.append(total_row)
    return format_table(
        headers,
        rows,
        title="Table 9a: estimated component and drive costs (USD)",
    )


def run_cost_study(
    platters: int = 4, n_workers: int = 1
) -> List[ConfigurationCost]:
    """The iso-performance configuration costs of Figure 9b.

    Pure arithmetic — a single :class:`Job` on the shared executor, so
    the driver surface matches the simulation studies; with one job the
    sweep always runs in-process regardless of ``n_workers``.
    """
    jobs = [Job(iso_performance_comparison, kwargs={"platters": platters})]
    return sweep(jobs, n_workers=n_workers)[0]


def format_figure9b(platters: int = 4) -> str:
    configs = run_cost_study(platters=platters)
    baseline = configs[0]
    headers = ["configuration", "cost_range", "mean_cost", "savings"]
    rows = []
    for config in configs:
        rows.append(
            (
                config.label,
                str(config.total),
                config.mean_total,
                config.savings_vs(baseline),
            )
        )
    return format_table(
        headers,
        rows,
        title="Figure 9b: iso-performance cost comparison",
        float_format="{:.2f}",
    )
