"""Storage-system factories for the paper's configurations.

Three system shapes cover every experiment:

* **MD** — the original multi-disk array a trace was collected on
  (Table 2): one drive per source disk, JBOD routing.
* **HC-SD / HC-SD-SA(n)** — the single high-capacity
  Barracuda-ES-class drive, optionally with ``n`` actuators, reduced
  RPM, latency-scaling hooks, or a different cache; trace source-disk
  address spaces are concatenated onto it (§7.1).
* **RAID-0 arrays** of conventional or intra-disk-parallel drives for
  the synthetic study (§7.3).

Queue policy: drives keep FCFS *queue* order while the multi-actuator
drives apply SPTF to the *arm choice* for each request, exactly the
role the paper gives SPTF ("the SPTF-based disk arm scheduler has
flexibility in choosing that arm assembly which minimises the overall
positioning time", §7.2).  The paper's HC-SD rotational-latency PDFs
are spread across a full revolution, which shows its disk queue was
not rotation-reordered; queue-level SPTF is available through the
``scheduler_factory`` argument and is studied in the scheduler-sweep
ablation bench.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.parallel_disk import ParallelDisk
from repro.core.taxonomy import DashConfig
from repro.disk.scheduler import FCFSScheduler, QueueScheduler
from repro.disk.specs import BARRACUDA_ES, DriveSpec
from repro.raid.array import DiskArray
from repro.raid.layout import ConcatLayout, JBODLayout, Raid0Layout
from repro.sim.engine import Environment
from repro.workloads.commercial import CommercialWorkload

__all__ = [
    "build_hcsd_drive",
    "build_hcsd_system",
    "build_md_system",
    "build_raid0_system",
]


def build_md_system(
    env: Environment, workload: CommercialWorkload
) -> DiskArray:
    """The original array of ``workload`` (Table 2): JBOD of MD drives."""
    spec = workload.md_drive_spec()
    drives = [
        ParallelDisk(
            env,
            spec,
            config=DashConfig(),
            scheduler=FCFSScheduler(),
            label=f"md-{workload.name}-{index}",
        )
        for index in range(workload.disks)
    ]
    layout = JBODLayout(
        [workload.disk_capacity_sectors] * workload.disks
    )
    return DiskArray(env, drives, layout, label=f"MD-{workload.name}")


def build_hcsd_drive(
    env: Environment,
    actuators: int = 1,
    rpm: Optional[float] = None,
    seek_scale: float = 1.0,
    rotation_scale: float = 1.0,
    cache_bytes: Optional[int] = None,
    spec: Optional[DriveSpec] = None,
    scheduler: Optional[QueueScheduler] = None,
    label: Optional[str] = None,
) -> ParallelDisk:
    """The HC-SD drive, with every §7 design knob.

    ``actuators`` > 1 yields HC-SD-SA(n); ``rpm`` overrides the spindle
    speed (reduced-RPM study); the scales implement the limit study;
    ``cache_bytes`` the cache-sensitivity experiment.
    """
    base = spec or BARRACUDA_ES
    if rpm is not None:
        base = base.with_rpm(rpm)
    if cache_bytes is not None:
        base = base.with_cache_bytes(cache_bytes)
    if actuators != 1:
        base = dataclasses.replace(base, actuators=actuators)
    return ParallelDisk(
        env,
        base,
        config=DashConfig(arm_assemblies=actuators),
        scheduler=scheduler or FCFSScheduler(),
        seek_scale=seek_scale,
        rotation_scale=rotation_scale,
        label=label,
    )


def build_hcsd_system(
    env: Environment,
    workload: CommercialWorkload,
    actuators: int = 1,
    rpm: Optional[float] = None,
    seek_scale: float = 1.0,
    rotation_scale: float = 1.0,
    cache_bytes: Optional[int] = None,
    scheduler: Optional[QueueScheduler] = None,
) -> DiskArray:
    """HC-SD(-SA(n)) hosting a workload's full dataset (§7.1 layout).

    The source disks' address spaces are concatenated sequentially onto
    the single drive, exactly as the paper lays the MD data out on
    HC-SD.
    """
    drive = build_hcsd_drive(
        env,
        actuators=actuators,
        rpm=rpm,
        seek_scale=seek_scale,
        rotation_scale=rotation_scale,
        cache_bytes=cache_bytes,
        scheduler=scheduler,
    )
    required = workload.disks * workload.disk_capacity_sectors
    if required > drive.geometry.total_sectors:
        raise ValueError(
            f"{workload.name}: dataset ({required} sectors) exceeds the "
            f"HC-SD capacity ({drive.geometry.total_sectors} sectors)"
        )
    layout = ConcatLayout(
        [workload.disk_capacity_sectors] * workload.disks
    )
    suffix = f"-SA({actuators})" if actuators > 1 else ""
    rpm_suffix = f"/{rpm:g}" if rpm is not None else ""
    return DiskArray(
        env,
        [drive],
        layout,
        label=f"HC-SD{suffix}{rpm_suffix}-{workload.name}",
    )


def build_raid0_system(
    env: Environment,
    disks: int,
    actuators: int = 1,
    spec: Optional[DriveSpec] = None,
    stripe_unit: int = 128,
) -> DiskArray:
    """A RAID-0 array of ``disks`` drives for the synthetic study (§7.3).

    Conventional (``actuators=1``) and intra-disk-parallel members use
    the same underlying spec — same recording technology, platter
    count, RPM and cache — as the paper requires for a fair comparison.
    """
    base = spec or BARRACUDA_ES
    drives = [
        ParallelDisk(
            env,
            dataclasses.replace(base, actuators=actuators)
            if actuators != 1
            else base,
            config=DashConfig(arm_assemblies=actuators),
            scheduler=FCFSScheduler(),
            label=f"raid0-{index}-SA({actuators})",
        )
        for index in range(disks)
    ]
    layout = Raid0Layout(
        disk_count=disks,
        disk_capacity=drives[0].geometry.total_sectors,
        stripe_unit=stripe_unit,
    )
    kind = f"SA({actuators})" if actuators > 1 else "HC-SD"
    return DiskArray(env, drives, layout, label=f"{disks}x{kind}")
