"""The reliability study: MD RAID-5 vs HC-SD-SA(n) under faults.

The paper's iso-performance argument (one HC-SD-SA(4) drive replacing
a 4-drive array, §7.3) invites the reliability objection of §8: the
parallel drive concentrates every failure point on one spindle.  This
study answers quantitatively, re-running the comparison under a seeded
:class:`~repro.faults.plan.FaultPlan`:

- a **4-member RAID-5 array** of single-actuator drives, which absorbs
  a whole-drive failure by degraded-mode reconstruction and a hot-spare
  rebuild;
- a **single HC-SD-SA(4) drive** with the same usable capacity, which
  absorbs actuator failures by deconfiguring arms (SA(4) → SA(3) → …)
  and soaks up the media errors of every member it replaces.

The same plan drives both systems (each applies the event kinds its
shape supports — the divergence is logged, not hidden), and both run
healthy under the *empty* plan for the baseline CDFs.  Reported:
healthy vs degraded response-time CDFs, rebuild-window inflation
(loaded vs idle rebuild), robustness counters, and an analytic
MTTDL/availability table whose RAID-5 repair time is derived from the
*measured* rebuild rate scaled to the full drive capacity.

Determinism: every cell is a pure function of its picklable arguments,
so serial and ``sweep()`` runs produce bit-identical figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.parallel_disk import ParallelDisk
from repro.core.taxonomy import DashConfig
from repro.disk.scheduler import FCFSScheduler
from repro.disk.specs import BARRACUDA_ES
from repro.experiments.executor import Job, sweep_by_key
from repro.experiments.runner import run_trace
from repro.faults.injector import FaultInjector
from repro.faults.mttdl import (
    availability,
    mttdl_parallel_drive,
    mttdl_raid0,
    mttdl_raid5,
    mttdl_single,
)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.policy import RetryPolicy
from repro.metrics.report import format_table
from repro.raid.array import DiskArray
from repro.raid.layout import ConcatLayout, Raid5Layout
from repro.sim.engine import Environment
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "ReliabilityStudyResult",
    "build_reliability_raid5",
    "build_reliability_sa",
    "default_fault_plan",
    "default_retry_policy",
    "format_mttdl_table",
    "format_reliability_cdfs",
    "format_reliability_summary",
    "reliability_figures",
    "run_reliability_study",
]

DEFAULT_REQUESTS = 2000
DEFAULT_INTERARRIVAL_MS = 4.0
DEFAULT_SEED = 42
DEFAULT_FAULT_SEED = 101
ARRAY_DISKS = 4
DEFAULT_ACTUATORS = 4
STRIPE_UNIT = 128
#: Logical extent per RAID member (64 MiB).  Small enough that a full
#: rebuild (1024 rows) finishes within the simulated run; the MTTDL
#: table scales the measured rebuild rate back up to the real drive
#: capacity.
MEMBER_CAPACITY_SECTORS = 131_072

#: Datasheet-class MTTF for the Barracuda-ES drives the study models.
DRIVE_MTTF_HOURS = 1.2e6
#: Share of drive failures attributable to head/arm assemblies (the
#: survivable ones on an arm-redundant drive); see
#: :func:`repro.faults.mttdl.mttdl_parallel_drive`.
ARM_FAILURE_FRACTION = 0.4
#: Repair time for configurations that need a restore from backup
#: (non-redundant layouts — there is nothing to rebuild from).
RESTORE_HOURS = 24.0


def default_retry_policy() -> RetryPolicy:
    """Array-level policy: three submissions, 50 ms command timeout,
    half-millisecond linear backoff."""
    return RetryPolicy(max_attempts=3, timeout_ms=50.0, backoff_ms=0.5)


def build_reliability_raid5(
    env: Environment,
    retry_policy: Optional[RetryPolicy] = None,
) -> DiskArray:
    """The baseline: RAID-5 over four single-actuator members."""
    drives = [
        ParallelDisk(
            env,
            BARRACUDA_ES,
            config=DashConfig(),
            scheduler=FCFSScheduler(),
            label=f"raid5-member-{index}",
        )
        for index in range(ARRAY_DISKS)
    ]
    layout = Raid5Layout(
        ARRAY_DISKS, MEMBER_CAPACITY_SECTORS, stripe_unit=STRIPE_UNIT
    )
    return DiskArray(
        env,
        drives,
        layout,
        label=f"{ARRAY_DISKS}xHC-SD-RAID5",
        retry_policy=retry_policy,
    )


def build_reliability_sa(
    env: Environment,
    actuators: int = DEFAULT_ACTUATORS,
    retry_policy: Optional[RetryPolicy] = None,
) -> DiskArray:
    """The challenger: one SA(n) drive with the array's usable capacity."""
    spec = BARRACUDA_ES.with_actuators(actuators)
    drive = ParallelDisk(
        env,
        spec,
        config=DashConfig(arm_assemblies=actuators),
        scheduler=FCFSScheduler(),
        label=f"hcsd-sa{actuators}",
    )
    # Usable capacity matches RAID-5 exactly: (N-1) data members.
    layout = ConcatLayout([(ARRAY_DISKS - 1) * MEMBER_CAPACITY_SECTORS])
    return DiskArray(
        env,
        [drive],
        layout,
        label=f"HC-SD-SA({actuators})",
        retry_policy=retry_policy,
    )


def default_fault_plan(
    fault_seed: int, horizon_ms: float,
    actuators: int = DEFAULT_ACTUATORS,
) -> FaultPlan:
    """The study's seeded plan: stochastic media errors + scheduled
    structural failures.

    Media errors (transient + latent) are drawn per member drive from
    ``fault_seed``; they are untargeted (no ``lba``), so each one is
    consumed by the drive's next media access — every armed error
    visibly costs retry revolutions during the run.  The structural
    events are scheduled, so both systems face a comparable shock at
    the same instant: the array loses member 1 at 25 % of the horizon
    (hot spare at 40 %, so the rebuild runs under the remaining load);
    the SA drive loses one arm at the same instant and a second at
    55 %.
    """
    generated = FaultPlan.generate(
        seed=fault_seed,
        horizon_ms=horizon_ms,
        drives=ARRAY_DISKS,
        transient_mtbf_ms=horizon_ms / 4.0,
        latent_mtbf_ms=horizon_ms,
        max_error_attempts=2,
    )
    events = list(generated.events)
    events.append(FaultEvent(
        time_ms=0.25 * horizon_ms, kind="drive_failure", drive=1
    ))
    events.append(FaultEvent(
        time_ms=0.40 * horizon_ms, kind="spare_arrival", drive=1
    ))
    events.append(FaultEvent(
        time_ms=0.25 * horizon_ms, kind="arm_failure", drive=0, arm=1
    ))
    if actuators > 2:
        events.append(FaultEvent(
            time_ms=0.55 * horizon_ms, kind="arm_failure", drive=0, arm=2
        ))
    return FaultPlan(events, seed=fault_seed)


#: Event kinds each configuration can absorb.  The RAID array has no
#: deconfigurable arms (single-actuator members); the single SA drive
#: has no redundancy to survive a whole-drive loss, so those events
#: are filtered rather than crashing a comparison run.
_KINDS_BY_CONFIG = {
    "raid5": ("transient", "latent", "drive_failure", "spare_arrival"),
    "sa": ("transient", "latent", "arm_failure"),
}


def _spare_factory(env: Environment):
    def make() -> ParallelDisk:
        return ParallelDisk(
            env,
            BARRACUDA_ES,
            config=DashConfig(),
            scheduler=FCFSScheduler(),
            label="hot-spare",
        )

    return make


def _run_cell(
    config: str,
    mode: str,
    plan_payload: Dict,
    requests: int,
    interarrival_ms: float,
    seed: int,
    actuators: int,
    policy: RetryPolicy,
    shards: int = 1,
) -> Dict:
    """One (configuration, mode) cell; executes in a worker process.

    Returns a plain picklable dict — everything the figures and tables
    need, nothing simulation-bound.
    """
    plan = FaultPlan.from_dict(plan_payload)
    env = Environment()
    if config == "raid5":
        system = build_reliability_raid5(env, retry_policy=policy)
    elif config == "sa":
        system = build_reliability_sa(
            env, actuators=actuators, retry_policy=policy
        )
    else:
        raise ValueError(f"unknown config {config!r}")
    members = list(system.drives)
    injector = None
    if len(plan):
        injector = FaultInjector(
            env,
            plan,
            array=system,
            spare_factory=_spare_factory(env),
            kinds=_KINDS_BY_CONFIG[config],
            strict=False,
            # The single SA drive absorbs the media faults of every
            # member it replaces.
            drive_map="modulo" if config == "sa" else "strict",
        )
    workload = SyntheticWorkload(
        capacity_sectors=system.capacity_sectors(),
        mean_interarrival_ms=interarrival_ms,
        seed=seed,
    )
    run = run_trace(env, system, workload.generate(requests),
                    shards=shards)

    # Sum drive-level fault stats over every drive that served —
    # original members, the replaced-out failed member, and the spare.
    drives = list(dict.fromkeys(members + list(system.drives)))
    drive_totals = {
        "media_errors": sum(d.stats.media_errors for d in drives),
        "media_retries": sum(d.stats.media_retries for d in drives),
        "unrecovered_errors": sum(
            d.stats.unrecovered_errors for d in drives
        ),
        "retry_ms": sum(d.stats.retry_ms for d in drives),
    }
    arms_deconfigured = sum(
        sum(1 for arm in drive.arms if arm.failed)
        for drive in drives
        if hasattr(drive, "arms")
    )
    return {
        "label": system.label,
        "config": config,
        "mode": mode,
        "requests": run.requests,
        "mean_ms": run.mean_response_ms,
        "p90_ms": run.percentile(90),
        "p99_ms": run.percentile(99),
        "cdf": run.response_cdf(),
        "elapsed_ms": run.elapsed_ms,
        "power_watts": run.power.total_watts,
        "degraded_ms": system.degraded_time_ms(),
        "rebuild_window_ms": system.rebuild_window_ms,
        "drive_failures": system.drive_failures,
        "slice_retries": system.slice_retries,
        "deadline_misses": system.deadline_misses,
        "unrecovered_requests": system.unrecovered_requests,
        "arms_deconfigured": arms_deconfigured,
        "faults_applied": len(injector.applied) if injector else 0,
        "faults_skipped": len(injector.skipped) if injector else 0,
        **drive_totals,
    }


def _run_idle_rebuild(policy: RetryPolicy) -> float:
    """Rebuild window with no foreground load (the inflation baseline)."""
    env = Environment()
    system = build_reliability_raid5(env, retry_policy=policy)
    system.fail_drive(1)
    system.rebuild(_spare_factory(env)())
    env.run()
    window = system.rebuild_window_ms
    if window is None:
        raise RuntimeError("idle rebuild did not complete")
    return window


@dataclass
class ReliabilityStudyResult:
    """Every cell of the study plus the plan that produced it."""

    requests: int
    interarrival_ms: float
    actuators: int
    plan: FaultPlan
    policy: RetryPolicy
    #: cells[(config, mode)] -> the dict produced by :func:`_run_cell`.
    cells: Dict[Tuple[str, str], Dict] = field(default_factory=dict)
    idle_rebuild_ms: float = 0.0

    def cell(self, config: str, mode: str) -> Dict:
        return self.cells[(config, mode)]

    @property
    def loaded_rebuild_ms(self) -> Optional[float]:
        return self.cell("raid5", "faulted")["rebuild_window_ms"]

    def rebuild_inflation(self) -> Optional[float]:
        """Loaded-over-idle rebuild window ratio (≥ 1 under load)."""
        loaded = self.loaded_rebuild_ms
        if loaded is None or self.idle_rebuild_ms <= 0.0:
            return None
        return loaded / self.idle_rebuild_ms

    def _raid5_mttr_hours(self) -> float:
        """Measured rebuild rate scaled to the full drive capacity."""
        window_ms = self.loaded_rebuild_ms or self.idle_rebuild_ms
        full_scale = (
            BARRACUDA_ES.build_geometry().total_sectors
            / MEMBER_CAPACITY_SECTORS
        )
        return window_ms * full_scale / 3.6e6

    def mttdl_rows(self) -> List[Tuple[str, float, float]]:
        """(config, MTTDL hours, availability) for the paper's contenders."""
        raid5_mttr = self._raid5_mttr_hours()
        rows = [
            (
                "1xHC-SD (no redundancy)",
                mttdl_single(DRIVE_MTTF_HOURS),
                availability(mttdl_single(DRIVE_MTTF_HOURS), RESTORE_HOURS),
            ),
            (
                f"{ARRAY_DISKS}xHC-SD RAID-0",
                mttdl_raid0(DRIVE_MTTF_HOURS, ARRAY_DISKS),
                availability(
                    mttdl_raid0(DRIVE_MTTF_HOURS, ARRAY_DISKS), RESTORE_HOURS
                ),
            ),
            (
                f"{ARRAY_DISKS}xHC-SD RAID-5 (measured rebuild)",
                mttdl_raid5(DRIVE_MTTF_HOURS, ARRAY_DISKS, raid5_mttr),
                availability(
                    mttdl_raid5(DRIVE_MTTF_HOURS, ARRAY_DISKS, raid5_mttr),
                    raid5_mttr,
                ),
            ),
            (
                f"1xHC-SD-SA({self.actuators}) arm-degradable",
                mttdl_parallel_drive(
                    DRIVE_MTTF_HOURS,
                    self.actuators,
                    ARM_FAILURE_FRACTION,
                ),
                availability(
                    mttdl_parallel_drive(
                        DRIVE_MTTF_HOURS,
                        self.actuators,
                        ARM_FAILURE_FRACTION,
                    ),
                    RESTORE_HOURS,
                ),
            ),
        ]
        return rows


def reliability_figures(result: ReliabilityStudyResult) -> List:
    """Canonical, JSON-able figures (digest input for determinism tests)."""
    figures: List = []
    for key in sorted(result.cells):
        cell = result.cells[key]
        figures.append([
            cell["label"],
            cell["mode"],
            cell["mean_ms"],
            cell["p90_ms"],
            cell["p99_ms"],
            cell["cdf"],
            cell["degraded_ms"],
            cell["rebuild_window_ms"],
            cell["slice_retries"],
            cell["deadline_misses"],
            cell["unrecovered_requests"],
            cell["media_errors"],
            cell["arms_deconfigured"],
        ])
    figures.append(["idle_rebuild_ms", result.idle_rebuild_ms])
    figures.append([
        "mttdl",
        [[label, hours, avail] for label, hours, avail
         in result.mttdl_rows()],
    ])
    return figures


def run_reliability_study(
    requests: int = DEFAULT_REQUESTS,
    interarrival_ms: float = DEFAULT_INTERARRIVAL_MS,
    seed: int = DEFAULT_SEED,
    fault_seed: int = DEFAULT_FAULT_SEED,
    actuators: int = DEFAULT_ACTUATORS,
    plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    n_workers: int = 1,
    shards: int = 1,
) -> ReliabilityStudyResult:
    """Run all four cells plus the idle-rebuild baseline.

    ``plan`` overrides the default seeded plan (pass
    ``FaultPlan.empty()`` for a healthy-only sanity run); both
    configurations replay the same plan with their respective kind
    filters.
    """
    policy = retry_policy or default_retry_policy()
    horizon_ms = requests * interarrival_ms
    if plan is None:
        plan = default_fault_plan(
            fault_seed, horizon_ms, actuators=actuators
        )
    empty = FaultPlan.empty().to_dict()
    payload = plan.to_dict()
    jobs = [
        Job(
            _run_cell,
            (
                config,
                mode,
                empty if mode == "healthy" else payload,
                requests,
                interarrival_ms,
                seed,
                actuators,
                policy,
                shards,
            ),
            key=(config, mode),
        )
        for config in ("raid5", "sa")
        for mode in ("healthy", "faulted")
    ]
    jobs.append(Job(_run_idle_rebuild, (policy,), key="idle-rebuild"))
    outcome = sweep_by_key(jobs, n_workers=n_workers)
    result = ReliabilityStudyResult(
        requests=requests,
        interarrival_ms=interarrival_ms,
        actuators=actuators,
        plan=plan,
        policy=policy,
    )
    result.idle_rebuild_ms = outcome.pop("idle-rebuild")
    result.cells.update(outcome)
    return result


# -- formatting -------------------------------------------------------------
def format_reliability_summary(result: ReliabilityStudyResult) -> str:
    headers = [
        "system", "mode", "mean_ms", "p90_ms", "p99_ms",
        "degraded_ms", "rebuild_ms", "retries", "misses", "unrec",
    ]
    rows = []
    for key in sorted(result.cells):
        cell = result.cells[key]
        rows.append((
            cell["label"],
            cell["mode"],
            cell["mean_ms"],
            cell["p90_ms"],
            cell["p99_ms"],
            cell["degraded_ms"],
            cell["rebuild_window_ms"] or 0.0,
            cell["slice_retries"] + cell["media_retries"],
            cell["deadline_misses"],
            cell["unrecovered_requests"],
        ))
    table = format_table(
        headers,
        rows,
        title=(
            f"Reliability study: {result.requests} requests, "
            f"{result.interarrival_ms:g} ms inter-arrival, "
            f"{len(result.plan)} fault events (seed "
            f"{result.plan.seed})"
        ),
        float_format="{:.2f}",
    )
    lines = [table]
    inflation = result.rebuild_inflation()
    if inflation is not None:
        lines.append(
            f"rebuild window: idle {result.idle_rebuild_ms:.1f} ms, "
            f"under load {result.loaded_rebuild_ms:.1f} ms "
            f"({inflation:.2f}x inflation)"
        )
    return "\n".join(lines)


def format_reliability_cdfs(result: ReliabilityStudyResult) -> str:
    from repro.metrics.cdf import RESPONSE_TIME_EDGES_MS

    headers = ["system", "mode"] + [
        f"<{edge:g}ms" for edge in RESPONSE_TIME_EDGES_MS
    ] + ["rest"]
    rows = []
    for key in sorted(result.cells):
        cell = result.cells[key]
        rows.append(
            [cell["label"], cell["mode"]] + list(cell["cdf"])
        )
    return format_table(
        headers,
        rows,
        title="Response-time CDFs, healthy vs faulted",
        float_format="{:.3f}",
    )


def format_mttdl_table(result: ReliabilityStudyResult) -> str:
    headers = ["configuration", "MTTDL_hours", "MTTDL_years", "availability"]
    rows = [
        (label, hours, hours / (24.0 * 365.0), avail)
        for label, hours, avail in result.mttdl_rows()
    ]
    table = format_table(
        headers,
        rows,
        title=(
            f"Analytic MTTDL/availability (drive MTTF "
            f"{DRIVE_MTTF_HOURS:.0f} h, arm share "
            f"{ARM_FAILURE_FRACTION:g})"
        ),
        float_format="{:.4g}",
    )
    mttr = result._raid5_mttr_hours()
    return (
        f"{table}\n"
        f"RAID-5 MTTR from measured rebuild rate scaled to full "
        f"capacity: {mttr:.1f} h"
    )
