"""Figure 8: RAID arrays built from intra-disk parallel drives.

Synthetic open workloads (exponential inter-arrival at 8/4/1 ms; 60 %
reads, 20 % sequential) run against RAID-0 arrays of 1..16 drives
built from conventional (HC-SD), 2-actuator and 4-actuator members.
Reported: the 90th-percentile response time per array size (the first
three panels of Figure 8) and the iso-performance power comparison
(the fourth panel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments.configs import build_raid0_system
from repro.experiments.executor import Job, sweep_by_key
from repro.experiments.runner import RunResult, run_trace
from repro.metrics.report import format_table
from repro.sim.engine import Environment
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "RaidStudyResult",
    "format_figure8_performance",
    "format_figure8_power",
    "run_raid_study",
]

DEFAULT_REQUESTS = 5000
DEFAULT_INTERARRIVALS_MS = (8.0, 4.0, 1.0)
DEFAULT_DISK_COUNTS = (1, 2, 4, 8, 16)
DEFAULT_ACTUATOR_COUNTS = (1, 2, 4)
#: Fraction of the array the synthetic dataset covers (short-stroked
#: outer zones; see the generator's docstring).
DEFAULT_FOOTPRINT_FRACTION = 0.02

#: The iso-performance triples of the paper's fourth panel, keyed by
#: inter-arrival time: (HC-SD disks, SA(2) disks, SA(4) disks).
ISO_PERFORMANCE_SETS: Dict[float, Tuple[int, int, int]] = {
    8.0: (4, 2, 1),
    4.0: (8, 4, 2),
    1.0: (16, 8, 4),
}


@dataclass
class RaidStudyResult:
    """p90 and power for every (inter-arrival, actuators, disks) cell."""

    requests: int
    #: cells[(ia_ms, actuators, disks)] -> RunResult
    cells: Dict[Tuple[float, int, int], RunResult] = field(
        default_factory=dict
    )

    def p90(self, ia_ms: float, actuators: int, disks: int) -> float:
        return self.cells[(ia_ms, actuators, disks)].percentile(90)

    def power(self, ia_ms: float, actuators: int, disks: int) -> float:
        return self.cells[(ia_ms, actuators, disks)].power.total_watts

    def iso_performance_power(
        self, ia_ms: float
    ) -> List[Tuple[str, float]]:
        """Power of the iso-performance configurations at ``ia_ms``."""
        disks_sa1, disks_sa2, disks_sa4 = ISO_PERFORMANCE_SETS[ia_ms]
        return [
            (f"{disks_sa1}xHC-SD", self.power(ia_ms, 1, disks_sa1)),
            (f"{disks_sa2}xSA(2)", self.power(ia_ms, 2, disks_sa2)),
            (f"{disks_sa4}xSA(4)", self.power(ia_ms, 4, disks_sa4)),
        ]

    def power_savings(self, ia_ms: float) -> Tuple[float, float]:
        """Fractional savings of the SA(2)/SA(4) arrays over HC-SD at
        iso-performance (paper: 41 % and 60 % at 1 ms)."""
        rows = self.iso_performance_power(ia_ms)
        base = rows[0][1]
        return (1.0 - rows[1][1] / base, 1.0 - rows[2][1] / base)


def _cell_job(
    ia_ms: float,
    actuators: int,
    disks: int,
    requests: int,
    footprint_fraction: float,
    seed: int,
    shards: int = 1,
) -> RunResult:
    """One (inter-arrival, actuators, disks) cell (executes in a worker)."""
    env = Environment()
    system = build_raid0_system(env, disks, actuators=actuators)
    workload = SyntheticWorkload(
        capacity_sectors=system.capacity_sectors(),
        mean_interarrival_ms=ia_ms,
        footprint_fraction=footprint_fraction,
        seed=seed,
    )
    trace = workload.generate(requests)
    return run_trace(env, system, trace, shards=shards)


def run_raid_study(
    interarrivals_ms: Iterable[float] = DEFAULT_INTERARRIVALS_MS,
    disk_counts: Iterable[int] = DEFAULT_DISK_COUNTS,
    actuator_counts: Iterable[int] = DEFAULT_ACTUATOR_COUNTS,
    requests: int = DEFAULT_REQUESTS,
    footprint_fraction: float = DEFAULT_FOOTPRINT_FRACTION,
    seed: int = 99,
    n_workers: int = 1,
    shards: int = 1,
) -> RaidStudyResult:
    jobs = [
        Job(
            _cell_job,
            (ia_ms, actuators, disks, requests, footprint_fraction, seed,
             shards),
            key=(ia_ms, actuators, disks),
        )
        for ia_ms in interarrivals_ms
        for actuators in actuator_counts
        for disks in disk_counts
    ]
    result = RaidStudyResult(requests=requests)
    result.cells.update(sweep_by_key(jobs, n_workers=n_workers))
    return result


def format_figure8_performance(
    result: RaidStudyResult,
    interarrivals_ms: Iterable[float] = DEFAULT_INTERARRIVALS_MS,
    disk_counts: Iterable[int] = DEFAULT_DISK_COUNTS,
    actuator_counts: Iterable[int] = DEFAULT_ACTUATOR_COUNTS,
) -> str:
    """Figure 8, panels 1-3: p90 response time vs array size."""
    blocks = []
    disks_list = list(disk_counts)
    for ia_ms in interarrivals_ms:
        headers = ["config"] + [f"{d}_disks" for d in disks_list]
        rows = []
        for actuators in actuator_counts:
            label = "HC-SD" if actuators == 1 else f"HC-SD-SA({actuators})"
            rows.append(
                [label]
                + [result.p90(ia_ms, actuators, d) for d in disks_list]
            )
        blocks.append(
            format_table(
                headers,
                rows,
                title=(
                    f"Figure 8: 90th-pct response (ms), "
                    f"inter-arrival {ia_ms:g} ms"
                ),
                float_format="{:.1f}",
            )
        )
    return "\n\n".join(blocks)


def format_figure8_power(
    result: RaidStudyResult,
    interarrivals_ms: Iterable[float] = DEFAULT_INTERARRIVALS_MS,
) -> str:
    """Figure 8, panel 4: iso-performance power comparison."""
    headers = ["inter_arrival_ms", "config", "power_W", "savings_vs_HC-SD"]
    rows = []
    for ia_ms in interarrivals_ms:
        entries = result.iso_performance_power(ia_ms)
        base = entries[0][1]
        for label, watts in entries:
            rows.append((f"{ia_ms:g}", label, watts, 1.0 - watts / base))
    return format_table(
        headers,
        rows,
        title="Figure 8: iso-performance power comparison",
        float_format="{:.2f}",
    )
