"""Tables 1 and 2: drive-technology comparison and workload configs.

Table 1 contrasts the 1988 RAID-paper drives with a modern
Barracuda-ES-class drive and the hypothetical 4-actuator extension,
using the power models of :mod:`repro.power.models`.  Table 2 records
the original storage systems the commercial traces were collected on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List

from repro.disk.specs import (
    BARRACUDA_ES,
    CONNERS_CP3100,
    DriveSpec,
    FUJITSU_M2361A,
    IBM_3380_AK4,
)
from repro.metrics.report import format_table
from repro.power.models import DrivePowerModel
from repro.workloads.commercial import COMMERCIAL_WORKLOADS

__all__ = [
    "TechnologyRow",
    "table1_rows",
    "format_table1",
    "table2_rows",
    "format_table2",
]


@dataclass(frozen=True)
class TechnologyRow:
    """One Table-1 column, rendered as a row."""

    name: str
    diameter_inches: float
    capacity_mb: float
    actuators: int
    modelled_power_watts: float
    reference_power_watts: float
    transfer_mb_s: float


def _four_actuator_barracuda() -> DriveSpec:
    return dataclasses.replace(
        BARRACUDA_ES,
        name="intra-disk-parallel-4A",
        actuators=4,
        reference_power_watts=34.0,
    )


def table1_rows() -> List[TechnologyRow]:
    """The five drives of Table 1, with modelled peak power."""
    specs = [
        IBM_3380_AK4,
        FUJITSU_M2361A,
        CONNERS_CP3100,
        BARRACUDA_ES,
        _four_actuator_barracuda(),
    ]
    rows = []
    for spec in specs:
        model = DrivePowerModel.from_spec(spec)
        rows.append(
            TechnologyRow(
                name=spec.name,
                diameter_inches=spec.diameter_inches,
                capacity_mb=spec.capacity_bytes / 1_000_000,
                actuators=spec.actuators,
                modelled_power_watts=model.peak_watts(),
                reference_power_watts=spec.reference_power_watts or 0.0,
                transfer_mb_s=spec.peak_transfer_mb_s,
            )
        )
    return rows


def format_table1() -> str:
    headers = [
        "drive",
        "diameter_in",
        "capacity_MB",
        "actuators",
        "power_model_W",
        "power_paper_W",
        "transfer_MB/s",
    ]
    rows = [
        (
            row.name,
            row.diameter_inches,
            row.capacity_mb,
            row.actuators,
            row.modelled_power_watts,
            row.reference_power_watts,
            row.transfer_mb_s,
        )
        for row in table1_rows()
    ]
    return format_table(
        headers,
        rows,
        title="Table 1: disk drive technologies over time",
        float_format="{:.1f}",
    )


def table2_rows() -> List[dict]:
    """Workloads and their original storage systems (Table 2)."""
    return [
        {
            "workload": workload.name,
            "paper_requests": workload.paper_requests,
            "disks": workload.disks,
            "capacity_gb": workload.disk_capacity_gb,
            "rpm": workload.rpm,
            "platters": workload.platters,
        }
        for workload in COMMERCIAL_WORKLOADS.values()
    ]


def format_table2() -> str:
    headers = [
        "workload",
        "requests",
        "disks",
        "capacity_GB",
        "RPM",
        "platters",
    ]
    rows = [
        (
            row["workload"],
            row["paper_requests"],
            row["disks"],
            row["capacity_gb"],
            row["rpm"],
            row["platters"],
        )
        for row in table2_rows()
    ]
    return format_table(
        headers,
        rows,
        title="Table 2: workloads and original storage systems",
        float_format="{:.2f}",
    )
