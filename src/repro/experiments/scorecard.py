"""The reproduction scorecard: DESIGN.md §6, executable.

DESIGN.md lists seven success criteria — the *shape* facts that must
hold for this reproduction to count.  This module evaluates all of
them in one pass and renders a pass/fail scorecard, giving the project
a single command (``python -m repro scorecard``) that answers "does
the reproduction still stand?" after any change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cost.analysis import iso_performance_comparison
from repro.experiments.bottleneck import run_bottleneck_study
from repro.experiments.limit_study import run_limit_study
from repro.experiments.parallel_study import run_parallel_study
from repro.experiments.raid_study import run_raid_study
from repro.experiments.rpm_study import run_rpm_study
from repro.metrics.report import format_table
from repro.workloads.commercial import COMMERCIAL_WORKLOADS

__all__ = ["Criterion", "format_scorecard", "run_scorecard"]

DEFAULT_REQUESTS = 2500


@dataclass
class Criterion:
    """One DESIGN.md §6 success criterion."""

    number: int
    description: str
    passed: bool
    evidence: str


def run_scorecard(
    requests: int = DEFAULT_REQUESTS, n_workers: int = 1
) -> List[Criterion]:
    """Evaluate every success criterion; returns them in order.

    Use ``requests >= 2000``: criterion 4's "Financial never catches
    MD" rests on slow queue divergence under saturation, which a
    shorter trace does not give time to develop.  ``n_workers`` fans
    each study's independent runs out across processes; the verdicts
    are identical for any worker count.
    """
    if requests < 500:
        raise ValueError(
            f"scorecard needs a meaningful scale, got {requests} requests"
        )
    criteria: List[Criterion] = []
    workloads = list(COMMERCIAL_WORKLOADS.values())

    # --- 1. Figure 2 shape ------------------------------------------------
    limit = run_limit_study(
        workloads=workloads, requests=requests, n_workers=n_workers
    )
    intense = ("financial", "websearch", "tpcc")
    gaps = {
        name: limit[name].hcsd.mean_response_ms
        / limit[name].md.mean_response_ms
        for name in limit
    }
    ok1 = all(gaps[name] > 3 for name in intense) and gaps["tpch"] < 3
    criteria.append(
        Criterion(
            1,
            "HC-SD collapses Financial/Websearch/TPC-C; TPC-H unaffected",
            ok1,
            "gap factors: "
            + ", ".join(f"{n}={gaps[n]:.1f}x" for n in gaps),
        )
    )

    # --- 2. Figure 3 shape --------------------------------------------------
    ratios = {name: limit[name].power_ratio for name in limit}
    idle_ok = all(
        limit[name].md.power.idle_watts
        > 0.5 * limit[name].md.power.total_watts
        for name in limit
    )
    ok2 = ratios["financial"] > 10 and idle_ok
    criteria.append(
        Criterion(
            2,
            "Order-of-magnitude power cut; MD power dominated by idle",
            ok2,
            "power ratios: "
            + ", ".join(f"{n}={ratios[n]:.1f}x" for n in ratios),
        )
    )

    # --- 3. Figure 4 shape -----------------------------------------------
    bottleneck = run_bottleneck_study(
        workloads=workloads, requests=requests, n_workers=n_workers
    )
    rotation_primary = all(
        result.rotation_is_primary for result in bottleneck.values()
    )
    quarter_r = all(
        bottleneck[name].runs["(1/4)R"].mean_response_ms
        <= bottleneck[name].md.mean_response_ms * 1.1
        for name in ("websearch", "tpcc", "tpch")
    )
    ok3 = rotation_primary and quarter_r
    criteria.append(
        Criterion(
            3,
            "Rotational latency is the primary bottleneck; (1/4)R beats MD",
            ok3,
            f"rotation primary everywhere: {rotation_primary}; "
            f"(1/4)R matches MD for websearch/tpcc/tpch: {quarter_r}",
        )
    )

    # --- 4. Figure 5 shape -----------------------------------------------
    parallel = run_parallel_study(
        workloads=workloads, requests=requests, n_workers=n_workers
    )
    sa_beats = all(
        parallel[name].by_actuators[4].mean_response_ms
        <= parallel[name].md.mean_response_ms
        for name in ("websearch", "tpcc")
    )
    financial_behind = (
        parallel["financial"].by_actuators[4].mean_response_ms
        > parallel["financial"].md.mean_response_ms
    )
    diminishing = all(
        result.by_actuators[4].mean_response_ms
        <= result.by_actuators[3].mean_response_ms * 1.05
        for result in parallel.values()
    )
    ok4 = sa_beats and financial_behind and diminishing
    criteria.append(
        Criterion(
            4,
            "SA(n) closes the gap with diminishing returns; Financial "
            "never catches MD",
            ok4,
            f"SA(4) beats MD (websearch/tpcc): {sa_beats}; financial "
            f"behind: {financial_behind}; diminishing: {diminishing}",
        )
    )

    # --- 5. Figures 6/7 shape ----------------------------------------------
    rpm = run_rpm_study(
        workloads=workloads, requests=requests, n_workers=n_workers
    )
    matches = {}
    for name in ("websearch", "tpcc", "tpch"):
        reduced = [
            label
            for label in rpm[name].breakeven_designs()
            if label.endswith(("6200", "5200", "4200"))
        ]
        matches[name] = len(reduced)
    power_ok = all(
        rpm[name].runs["SA(4)/4200"].power.total_watts
        < rpm[name].runs["HC-SD"].power.total_watts
        for name in rpm
    )
    ok5 = all(count > 0 for count in matches.values()) and power_ok
    criteria.append(
        Criterion(
            5,
            "Reduced-RPM SA designs match MD below a conventional "
            "drive's power",
            ok5,
            "reduced-RPM break-even designs: "
            + ", ".join(f"{n}={c}" for n, c in matches.items()),
        )
    )

    # --- 6. Figure 8 shape --------------------------------------------------
    raid = run_raid_study(
        requests=max(1200, requests // 2), n_workers=n_workers
    )
    iso_ok = (
        raid.p90(1.0, 2, 8) <= raid.p90(1.0, 1, 16) * 1.35
        and raid.p90(1.0, 4, 4) <= raid.p90(1.0, 1, 16) * 1.35
    )
    savings_sa2, savings_sa4 = raid.power_savings(1.0)
    ok6 = iso_ok and 0.3 <= savings_sa2 <= 0.55 and (
        0.5 <= savings_sa4 <= 0.75
    )
    criteria.append(
        Criterion(
            6,
            "SA arrays break even with 1/2 / 1/4 the disks; ~41%/60% "
            "power savings",
            ok6,
            f"savings at 1 ms: SA(2)={savings_sa2:.0%}, "
            f"SA(4)={savings_sa4:.0%}",
        )
    )

    # --- 7. Figure 9 (exact) ------------------------------------------------
    configs = iso_performance_comparison()
    s2 = configs[1].savings_vs(configs[0])
    s4 = configs[2].savings_vs(configs[0])
    ok7 = abs(s2 - 0.27) < 0.01 and abs(s4 - 0.40) < 0.01
    criteria.append(
        Criterion(
            7,
            "Iso-performance cost savings 27% (2xSA2) and 40% (1xSA4)",
            ok7,
            f"measured {s2:.0%} and {s4:.0%}",
        )
    )
    return criteria


def format_scorecard(criteria: List[Criterion]) -> str:
    rows = [
        (
            criterion.number,
            "PASS" if criterion.passed else "FAIL",
            criterion.description,
            criterion.evidence,
        )
        for criterion in criteria
    ]
    passed = sum(1 for c in criteria if c.passed)
    table = format_table(
        ["#", "verdict", "criterion", "evidence"],
        rows,
        title=(
            f"Reproduction scorecard: {passed}/{len(criteria)} "
            "success criteria hold"
        ),
    )
    return table
