"""Figure 4: the bottleneck analysis of HC-SD performance.

Reruns HC-SD with the simulator's computed seek times scaled to ½, ¼
and 0 of their value, and likewise for rotational latencies — exactly
the paper's methodology for isolating which mechanical delay causes
the MD → HC-SD gap.  The paper's conclusion, which this experiment
verifies, is that rotational latency is the primary bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.experiments.configs import build_hcsd_system, build_md_system
from repro.experiments.executor import Job, sweep_by_key
from repro.experiments.runner import RunResult, run_trace
from repro.metrics.cdf import RESPONSE_TIME_EDGES_MS
from repro.metrics.report import format_cdf_table
from repro.sim.engine import Environment
from repro.workloads.commercial import (
    COMMERCIAL_WORKLOADS,
    CommercialWorkload,
)

__all__ = ["BottleneckResult", "format_figure4", "run_bottleneck_study"]

DEFAULT_REQUESTS = 6000

#: The scaling points of Figure 4 (label, seek scale, rotation scale).
SCALING_POINTS = (
    ("HC-SD", 1.0, 1.0),
    ("(1/2)S", 0.5, 1.0),
    ("(1/4)S", 0.25, 1.0),
    ("S=0", 0.0, 1.0),
    ("(1/2)R", 1.0, 0.5),
    ("(1/4)R", 1.0, 0.25),
    ("R=0", 1.0, 0.0),
)


@dataclass
class BottleneckResult:
    """All scaling-point runs plus the MD reference for one workload."""

    workload: str
    md: RunResult
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def mean_response(self, label: str) -> float:
        return self.runs[label].mean_response_ms

    @property
    def rotation_is_primary(self) -> bool:
        """The paper's headline finding for this workload: scaling
        rotation helps more than scaling seeks by the same factor."""
        return (
            self.mean_response("(1/2)R") < self.mean_response("(1/2)S")
        )


def _md_job(workload: CommercialWorkload, requests: int) -> RunResult:
    """The MD reference run for one workload (executes in a worker)."""
    trace = workload.generate(requests)
    env = Environment()
    return run_trace(env, build_md_system(env, workload), trace)


def _scaled_job(
    workload: CommercialWorkload,
    requests: int,
    label: str,
    seek_scale: float,
    rotation_scale: float,
) -> RunResult:
    """One scaling-point HC-SD run (executes in a worker)."""
    trace = workload.generate(requests)
    env = Environment()
    system = build_hcsd_system(
        env,
        workload,
        seek_scale=seek_scale,
        rotation_scale=rotation_scale,
    )
    return run_trace(env, system, trace, label=label)


def run_bottleneck_study(
    workloads: Optional[Iterable[CommercialWorkload]] = None,
    requests: int = DEFAULT_REQUESTS,
    n_workers: int = 1,
) -> Dict[str, BottleneckResult]:
    selected = list(workloads or COMMERCIAL_WORKLOADS.values())
    jobs = []
    for workload in selected:
        jobs.append(
            Job(_md_job, (workload, requests), key=(workload.name, "md"))
        )
        for label, seek_scale, rotation_scale in SCALING_POINTS:
            jobs.append(
                Job(
                    _scaled_job,
                    (workload, requests, label, seek_scale, rotation_scale),
                    key=(workload.name, label),
                )
            )
    runs = sweep_by_key(jobs, n_workers=n_workers)
    results: Dict[str, BottleneckResult] = {}
    for workload in selected:
        result = BottleneckResult(
            workload=workload.name, md=runs[(workload.name, "md")]
        )
        for label, _, _ in SCALING_POINTS:
            result.runs[label] = runs[(workload.name, label)]
        results[workload.name] = result
    return results


def format_figure4(results: Dict[str, BottleneckResult]) -> str:
    """Figure 4: CDFs under seek scaling (top) and rotation scaling
    (bottom), per workload, with the MD reference."""
    edge_labels = [f"{edge:g}" for edge in RESPONSE_TIME_EDGES_MS]
    edge_labels.append("200+")
    blocks = []
    for name, result in results.items():
        seek_series = [
            (label, result.runs[label].response_cdf())
            for label in ("HC-SD", "(1/2)S", "(1/4)S", "S=0")
        ]
        seek_series.append(("MD", result.md.response_cdf()))
        rotation_series = [
            (label, result.runs[label].response_cdf())
            for label in ("HC-SD", "(1/2)R", "(1/4)R", "R=0")
        ]
        rotation_series.append(("MD", result.md.response_cdf()))
        blocks.append(
            format_cdf_table(
                edge_labels,
                seek_series,
                title=f"Figure 4 [{name}]: impact of seek time",
            )
        )
        blocks.append(
            format_cdf_table(
                edge_labels,
                rotation_series,
                title=f"Figure 4 [{name}]: impact of rotational latency",
            )
        )
    return "\n\n".join(blocks)
