"""Figure 5: performance of the HC-SD-SA(n) designs.

Runs HC-SD-SA(n) for n = 1..4 on each workload and reports the
response-time CDFs (Figure 5, top row) and the rotational-latency PDFs
(Figure 5, bottom row), against the MD reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.experiments.configs import build_hcsd_system, build_md_system
from repro.experiments.executor import Job, sweep_by_key
from repro.experiments.runner import RunResult, run_trace
from repro.metrics.cdf import (
    RESPONSE_TIME_EDGES_MS,
    ROTATIONAL_LATENCY_EDGES_MS,
)
from repro.metrics.report import format_cdf_table
from repro.sim.engine import Environment
from repro.workloads.commercial import (
    COMMERCIAL_WORKLOADS,
    CommercialWorkload,
)

__all__ = [
    "ParallelStudyResult",
    "format_figure5_cdf",
    "format_figure5_pdf",
    "run_parallel_study",
]

DEFAULT_REQUESTS = 6000
DEFAULT_ACTUATOR_COUNTS = (1, 2, 3, 4)


@dataclass
class ParallelStudyResult:
    """SA(1..n) runs plus the MD reference for one workload."""

    workload: str
    md: RunResult
    by_actuators: Dict[int, RunResult] = field(default_factory=dict)

    def label(self, actuators: int) -> str:
        return "HC-SD" if actuators == 1 else f"HC-SD-SA({actuators})"

    def improvement_over_single(self, actuators: int) -> float:
        """Mean-response speedup of SA(n) over the single-actuator drive."""
        base = self.by_actuators[1].mean_response_ms
        return base / self.by_actuators[actuators].mean_response_ms


def _md_job(workload: CommercialWorkload, requests: int) -> RunResult:
    """The MD reference run for one workload (executes in a worker)."""
    trace = workload.generate(requests)
    env = Environment()
    return run_trace(env, build_md_system(env, workload), trace)


def _sa_job(
    workload: CommercialWorkload,
    actuators: int,
    requests: int,
    label: str,
) -> RunResult:
    """One HC-SD-SA(n) run (executes in a worker).

    The trace is regenerated from the workload's fixed seed, so every
    job sees the byte-identical request stream the serial loop shares.
    """
    trace = workload.generate(requests)
    env = Environment()
    system = build_hcsd_system(env, workload, actuators=actuators)
    return run_trace(env, system, trace, label=label)


def run_parallel_study(
    workloads: Optional[Iterable[CommercialWorkload]] = None,
    actuator_counts: Iterable[int] = DEFAULT_ACTUATOR_COUNTS,
    requests: int = DEFAULT_REQUESTS,
    n_workers: int = 1,
) -> Dict[str, ParallelStudyResult]:
    counts = list(actuator_counts)
    selected = list(workloads or COMMERCIAL_WORKLOADS.values())
    jobs = []
    for workload in selected:
        jobs.append(
            Job(_md_job, (workload, requests), key=(workload.name, "md"))
        )
        for actuators in counts:
            label = (
                "HC-SD" if actuators == 1 else f"HC-SD-SA({actuators})"
            )
            jobs.append(
                Job(
                    _sa_job,
                    (workload, actuators, requests, label),
                    key=(workload.name, actuators),
                )
            )
    runs = sweep_by_key(jobs, n_workers=n_workers)
    results: Dict[str, ParallelStudyResult] = {}
    for workload in selected:
        result = ParallelStudyResult(
            workload=workload.name, md=runs[(workload.name, "md")]
        )
        for actuators in counts:
            result.by_actuators[actuators] = runs[(workload.name, actuators)]
        results[workload.name] = result
    return results


def _edges(edges: Iterable[float], plus: bool = True) -> List[str]:
    labels = [f"{edge:g}" for edge in edges]
    if plus:
        labels.append(f"{labels[-1]}+")
    return labels


def format_figure5_cdf(results: Dict[str, ParallelStudyResult]) -> str:
    """Figure 5, top: response-time CDFs of the SA(n) designs."""
    blocks = []
    for name, result in results.items():
        series = [
            (result.label(n), run.response_cdf())
            for n, run in sorted(result.by_actuators.items())
        ]
        series.append(("MD", result.md.response_cdf()))
        blocks.append(
            format_cdf_table(
                _edges(RESPONSE_TIME_EDGES_MS),
                series,
                title=f"Figure 5 [{name}]: response-time CDF",
            )
        )
    return "\n\n".join(blocks)


def format_figure5_pdf(results: Dict[str, ParallelStudyResult]) -> str:
    """Figure 5, bottom: rotational-latency PDFs of the SA(n) designs."""
    blocks = []
    for name, result in results.items():
        series = [
            (result.label(n), run.rotational_pdf())
            for n, run in sorted(result.by_actuators.items())
        ]
        blocks.append(
            format_cdf_table(
                _edges(ROTATIONAL_LATENCY_EDGES_MS),
                series,
                title=f"Figure 5 [{name}]: rotational-latency PDF",
            )
        )
    return "\n\n".join(blocks)
