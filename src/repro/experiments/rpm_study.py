"""Figures 6 and 7: reduced-RPM intra-disk parallel designs.

RPM has a near-cubic impact on spindle power, so an intra-disk
parallel drive can be designed at a lower RPM, trading rotational
latency (which the extra actuators claw back) for power.  Figure 6
reports the mode-stacked average power of SA(2)/SA(4) at 7200, 6200,
5200 and 4200 RPM; Figure 7 shows the response-time CDFs of the design
points that still match or exceed MD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.experiments.configs import build_hcsd_system, build_md_system
from repro.experiments.executor import Job, sweep_by_key
from repro.experiments.runner import RunResult, run_trace
from repro.metrics.cdf import RESPONSE_TIME_EDGES_MS
from repro.metrics.report import format_cdf_table, format_table
from repro.sim.engine import Environment
from repro.workloads.commercial import (
    COMMERCIAL_WORKLOADS,
    CommercialWorkload,
)

__all__ = [
    "RpmStudyResult",
    "format_figure6",
    "format_figure7",
    "run_rpm_study",
]

DEFAULT_REQUESTS = 6000
#: (actuators, rpm) design points of Figure 6; rpm None = the stock 7200.
DEFAULT_DESIGN_POINTS: Tuple[Tuple[int, Optional[float]], ...] = (
    (1, None),
    (2, None),
    (4, None),
    (2, 6200),
    (4, 6200),
    (2, 5200),
    (4, 5200),
    (2, 4200),
    (4, 4200),
)


def design_label(actuators: int, rpm: Optional[float]) -> str:
    if actuators == 1 and rpm is None:
        return "HC-SD"
    rpm_text = f"{rpm:g}" if rpm is not None else "7200"
    return f"SA({actuators})/{rpm_text}"


@dataclass
class RpmStudyResult:
    """All design-point runs plus the MD reference for one workload."""

    workload: str
    md: RunResult
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def breakeven_designs(self, tolerance: float = 1.35) -> Dict[str, RunResult]:
        """Design points whose mean response is within ``tolerance`` ×
        MD (or better) — the curves Figure 7 plots."""
        limit = self.md.mean_response_ms * tolerance
        return {
            label: run
            for label, run in self.runs.items()
            if label != "HC-SD" and run.mean_response_ms <= limit
        }


def _md_job(
    workload: CommercialWorkload, requests: int, shards: int = 1
) -> RunResult:
    """The MD reference run for one workload (executes in a worker)."""
    trace = workload.generate(requests)
    env = Environment()
    return run_trace(env, build_md_system(env, workload), trace,
                     shards=shards)


def _design_job(
    workload: CommercialWorkload,
    actuators: int,
    rpm: Optional[float],
    requests: int,
    shards: int = 1,
) -> RunResult:
    """One (actuators, rpm) design-point run (executes in a worker)."""
    trace = workload.generate(requests)
    env = Environment()
    system = build_hcsd_system(env, workload, actuators=actuators, rpm=rpm)
    label = design_label(actuators, rpm)
    return run_trace(env, system, trace, label=label, shards=shards)


def run_rpm_study(
    workloads: Optional[Iterable[CommercialWorkload]] = None,
    design_points: Iterable[Tuple[int, Optional[float]]] = (
        DEFAULT_DESIGN_POINTS
    ),
    requests: int = DEFAULT_REQUESTS,
    n_workers: int = 1,
    shards: int = 1,
) -> Dict[str, RpmStudyResult]:
    points = list(design_points)
    selected = list(workloads or COMMERCIAL_WORKLOADS.values())
    jobs = []
    for workload in selected:
        jobs.append(
            Job(_md_job, (workload, requests, shards),
                key=(workload.name, "md"))
        )
        for actuators, rpm in points:
            jobs.append(
                Job(
                    _design_job,
                    (workload, actuators, rpm, requests, shards),
                    key=(workload.name, design_label(actuators, rpm)),
                )
            )
    runs = sweep_by_key(jobs, n_workers=n_workers)
    results: Dict[str, RpmStudyResult] = {}
    for workload in selected:
        result = RpmStudyResult(
            workload=workload.name, md=runs[(workload.name, "md")]
        )
        for actuators, rpm in points:
            label = design_label(actuators, rpm)
            result.runs[label] = runs[(workload.name, label)]
        results[workload.name] = result
    return results


def format_figure6(results: Dict[str, RpmStudyResult]) -> str:
    """Figure 6: mode-stacked average power per design point."""
    headers = [
        "workload",
        "design",
        "idle_W",
        "seek_W",
        "rotational_W",
        "transfer_W",
        "total_W",
    ]
    rows = []
    for name, result in results.items():
        for label, run in result.runs.items():
            power = run.power
            rows.append(
                (
                    name,
                    label,
                    power.idle_watts,
                    power.seek_watts,
                    power.rotational_watts,
                    power.transfer_watts,
                    power.total_watts,
                )
            )
    return format_table(
        headers,
        rows,
        title="Figure 6: average power of reduced-RPM SA(n) designs",
        float_format="{:.2f}",
    )


def format_figure7(results: Dict[str, RpmStudyResult]) -> str:
    """Figure 7: CDFs of designs that match or exceed MD."""
    edge_labels = [f"{edge:g}" for edge in RESPONSE_TIME_EDGES_MS]
    edge_labels.append("200+")
    blocks = []
    for name, result in results.items():
        matching = result.breakeven_designs()
        if not matching:
            blocks.append(
                f"Figure 7 [{name}]: no reduced-RPM design matches MD"
            )
            continue
        series = [
            (label, run.response_cdf())
            for label, run in sorted(matching.items())
        ]
        series.append(("MD", result.md.response_cdf()))
        blocks.append(
            format_cdf_table(
                edge_labels,
                series,
                title=(
                    f"Figure 7 [{name}]: reduced-RPM designs matching MD"
                ),
            )
        )
    return "\n\n".join(blocks)
