"""The DASH taxonomy for the intra-disk parallelism design space.

The paper (§4) expresses a disk configuration as a 4-tuple
``D_k A_l S_m H_n`` — the degree of parallelism in, from coarse to
fine:

* **D** — disk stacks (independent spindles inside one enclosure),
* **A** — arm assemblies (independent actuators),
* **S** — surfaces accessed simultaneously,
* **H** — heads per arm per surface.

A conventional drive is ``D1 A1 S1 H1``; the drive of the paper's
Figure 1(b) is ``D1 A2 S1 H2`` (two assemblies, two heads per arm, up
to four data paths).  The evaluated HC-SD-SA(n) family is
``D1 An S1 H1``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["CONVENTIONAL", "DashConfig"]

_NOTATION = re.compile(
    r"^\s*D(?P<d>\d+)\s*A(?P<a>\d+)\s*S(?P<s>\d+)\s*H(?P<h>\d+)\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class DashConfig:
    """One point in the DASH design space.

    Attributes
    ----------
    disk_stacks:
        Independent platter stacks, each with its own spindle (k).
    arm_assemblies:
        Independent actuators per stack (l).
    surfaces:
        Surfaces accessible simultaneously per assembly (m).
    heads_per_arm:
        Read/write heads per arm per surface (n); heads beyond the
        first sit at distinct angular offsets along the arm.
    """

    disk_stacks: int = 1
    arm_assemblies: int = 1
    surfaces: int = 1
    heads_per_arm: int = 1

    def __post_init__(self) -> None:
        for name in (
            "disk_stacks",
            "arm_assemblies",
            "surfaces",
            "heads_per_arm",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive int, got {value!r}")

    @classmethod
    def parse(cls, notation: str) -> "DashConfig":
        """Parse ``"D1A2S1H2"``-style notation (case-insensitive)."""
        match = _NOTATION.match(notation)
        if match is None:
            raise ValueError(
                f"invalid DASH notation {notation!r}; expected e.g. 'D1A2S1H1'"
            )
        return cls(
            disk_stacks=int(match.group("d")),
            arm_assemblies=int(match.group("a")),
            surfaces=int(match.group("s")),
            heads_per_arm=int(match.group("h")),
        )

    @property
    def notation(self) -> str:
        return (
            f"D{self.disk_stacks}A{self.arm_assemblies}"
            f"S{self.surfaces}H{self.heads_per_arm}"
        )

    @property
    def max_data_paths(self) -> int:
        """Maximum simultaneous platter↔electronics transfer paths.

        The product of the four degrees: ``D1A2S1H2`` offers up to four
        (paper, Figure 1b).
        """
        return (
            self.disk_stacks
            * self.arm_assemblies
            * self.surfaces
            * self.heads_per_arm
        )

    @property
    def is_conventional(self) -> bool:
        return self.max_data_paths == 1

    @property
    def extra_actuators(self) -> int:
        """Actuators added relative to a conventional drive (per stack)."""
        return self.arm_assemblies - 1

    def arm_mount_angles(self) -> list:
        """Angular placement of the assemblies around the spindle.

        Assemblies are spread at equal offsets — diagonal for two
        (paper, Figure 1), which both maximises the rotational-latency
        benefit and keeps head-region air turbulence independent (§8).
        """
        count = self.arm_assemblies
        return [index / count for index in range(count)]

    def head_offset_angles(self) -> list:
        """Angular offsets of each head along one arm (H-dimension).

        Heads are placed equidistant from the axis of actuation
        (Figure 1b), spreading them across half a revolution so that
        the worst-case rotational gap shrinks with head count.
        """
        count = self.heads_per_arm
        if count == 1:
            return [0.0]
        return [index / (2 * count) for index in range(count)]

    def describe(self) -> str:
        """Human-readable summary of what each dimension contributes."""
        parts = [f"{self.notation}:"]
        parts.append(
            f"{self.disk_stacks} disk stack(s)"
            + (" (RAID-style internal striping)" if self.disk_stacks > 1 else "")
        )
        parts.append(f"{self.arm_assemblies} arm assembl"
                     + ("ies" if self.arm_assemblies != 1 else "y"))
        parts.append(f"{self.surfaces} surface(s) in parallel")
        parts.append(f"{self.heads_per_arm} head(s) per arm")
        parts.append(f"max {self.max_data_paths} data path(s)")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.notation


#: The conventional-drive configuration, ``D1 A1 S1 H1``.
CONVENTIONAL = DashConfig()
