"""Arm-assembly (actuator) state for multi-actuator drives.

Each assembly tracks its own radial position (cylinder), its angular
mount position around the spindle, and per-arm activity statistics.
The VCM of an assembly consumes power only while that assembly seeks,
which is why per-arm seek-time accounting matters for the power model
(paper §7.2: Websearch's seek residency rises from 55 % to 90 % going
from one to four arms).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["ArmAssembly"]


class ArmAssembly:
    """One independently movable arm assembly."""

    def __init__(
        self,
        arm_id: int,
        mount_angle: float,
        initial_cylinder: int = 0,
        head_offsets: Optional[List[float]] = None,
    ):
        if not 0.0 <= mount_angle < 1.0:
            raise ValueError(
                f"mount_angle must be in [0, 1), got {mount_angle}"
            )
        if initial_cylinder < 0:
            raise ValueError(
                f"initial_cylinder must be non-negative, got {initial_cylinder}"
            )
        self.arm_id = arm_id
        self.mount_angle = mount_angle
        self.cylinder = initial_cylinder
        #: Angular offsets of this arm's heads (H-dimension); the first
        #: head sits at offset 0 relative to the mount angle.
        self.head_offsets = list(head_offsets) if head_offsets else [0.0]
        # Absolute head angles are fixed for the assembly's lifetime;
        # precompute them so the per-request SPTF search is pure lookups.
        self._head_angles = [
            (self.mount_angle + offset) % 1.0 for offset in self.head_offsets
        ]
        #: Simulated time until which this assembly is committed to an
        #: in-flight request (used by the overlapped extensions).
        self.busy_until = 0.0
        #: Set when SMART-style monitoring deconfigures the assembly
        #: (paper §8, graceful degradation); failed arms never service
        #: or reposition again.
        self.failed = False
        # -- statistics
        self.requests_serviced = 0
        self.seek_time_ms = 0.0
        self.seeks = 0

    @property
    def heads_per_surface(self) -> int:
        return len(self.head_offsets)

    def is_idle(self, now: float) -> bool:
        return not self.failed and now >= self.busy_until

    def head_angles(self) -> List[float]:
        """Absolute angular positions of each head around the spindle."""
        return list(self._head_angles)

    def best_head_latency(
        self, latency_fn, time_ms: float, sector_angle: float
    ) -> tuple:
        """Minimum rotational latency over this arm's heads.

        ``latency_fn(time_ms, sector_angle, head_angle)`` must return
        the wait for one head (the spindle's ``latency_to``).  Returns
        ``(latency_ms, head_index)``.
        """
        angles = self._head_angles
        if len(angles) == 1:
            return latency_fn(time_ms, sector_angle, angles[0]), 0
        best_latency = float("inf")
        best_head = 0
        for index, angle in enumerate(angles):
            latency = latency_fn(time_ms, sector_angle, angle)
            if latency < best_latency:
                best_latency = latency
                best_head = index
        return best_latency, best_head

    def record_service(self, seek_ms: float) -> None:
        self.requests_serviced += 1
        self.seek_time_ms += seek_ms
        if seek_ms > 0.0:
            self.seeks += 1

    def move_to(self, cylinder: int) -> None:
        if cylinder < 0:
            raise ValueError(f"cylinder must be non-negative, got {cylinder}")
        self.cylinder = cylinder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArmAssembly(id={self.arm_id}, mount={self.mount_angle:.3f}, "
            f"cyl={self.cylinder}, heads={self.heads_per_surface})"
        )
