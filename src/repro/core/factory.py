"""Build a drive (or drive assembly) for any DASH configuration.

The A, S, and H dimensions live inside a single
:class:`~repro.core.parallel_disk.ParallelDisk`.  The D dimension —
multiple platter stacks, each with its own spindle, inside one
enclosure (§4, Level 1) — is realised here as a RAID-0 of ``k``
sub-stacks with platters shrunk by ``1/sqrt(k)``: per-platter capacity
scales with diameter squared, so total capacity is preserved while the
strong (D^4.6) platter-size dependence of spindle power makes the
multi-stack design fit the single-drive power envelope, exactly the
argument the paper makes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Union

from repro.core.parallel_disk import ParallelDisk
from repro.core.taxonomy import DashConfig
from repro.disk.scheduler import QueueScheduler
from repro.disk.specs import DriveSpec
from repro.raid.array import DiskArray
from repro.raid.layout import Raid0Layout
from repro.sim.engine import Environment

__all__ = ["build_dash_drive", "shrink_spec_for_stacks"]


def shrink_spec_for_stacks(spec: DriveSpec, stacks: int) -> DriveSpec:
    """The per-stack spec for a ``k``-stack DASH drive.

    Platter diameter scales by ``1/sqrt(k)`` (areal capacity per platter
    scales with diameter², so ``k`` stacks preserve total capacity);
    track length — and hence sectors per track — scales with diameter.
    """
    if stacks <= 1:
        return spec
    shrink = 1.0 / math.sqrt(stacks)
    return dataclasses.replace(
        spec,
        name=f"{spec.name}/stack{stacks}",
        capacity_bytes=spec.capacity_bytes // stacks,
        diameter_inches=spec.diameter_inches * shrink,
        spt_outer=max(8, round(spec.spt_outer * shrink)),
        spt_inner=max(8, round(spec.spt_inner * shrink)),
        cache_bytes=max(64 * 1024, spec.cache_bytes // stacks),
        # Shorter stroke: full-stroke and average seeks shrink with the
        # radius while the settle-dominated track-to-track time holds.
        seek_average_ms=spec.seek_average_ms * shrink,
        seek_full_stroke_ms=max(
            spec.seek_full_stroke_ms * shrink,
            spec.seek_average_ms * shrink,
        ),
    )


def build_dash_drive(
    env: Environment,
    spec: DriveSpec,
    config: Union[DashConfig, str],
    scheduler_factory=None,
    seek_scale: float = 1.0,
    rotation_scale: float = 1.0,
    stripe_unit: int = 128,
    label: Optional[str] = None,
):
    """Construct the storage object for a DASH configuration.

    Returns a :class:`ParallelDisk` when ``disk_stacks == 1``; otherwise
    a :class:`~repro.raid.array.DiskArray` of per-stack parallel disks
    behind RAID-0.  ``scheduler_factory`` (``() -> QueueScheduler``) is
    called once per stack so stateful schedulers are not shared.
    """
    if isinstance(config, str):
        config = DashConfig.parse(config)

    def make_scheduler() -> Optional[QueueScheduler]:
        return scheduler_factory() if scheduler_factory else None

    inner = DashConfig(
        disk_stacks=1,
        arm_assemblies=config.arm_assemblies,
        surfaces=config.surfaces,
        heads_per_arm=config.heads_per_arm,
    )
    if config.disk_stacks == 1:
        return ParallelDisk(
            env,
            spec,
            config=inner,
            scheduler=make_scheduler(),
            seek_scale=seek_scale,
            rotation_scale=rotation_scale,
            label=label,
        )

    stack_spec = shrink_spec_for_stacks(spec, config.disk_stacks)
    stacks = [
        ParallelDisk(
            env,
            stack_spec,
            config=inner,
            scheduler=make_scheduler(),
            seek_scale=seek_scale,
            rotation_scale=rotation_scale,
            label=f"stack{index}",
        )
        for index in range(config.disk_stacks)
    ]
    layout = Raid0Layout(
        disk_count=config.disk_stacks,
        disk_capacity=min(s.geometry.total_sectors for s in stacks),
        stripe_unit=stripe_unit,
    )
    return DiskArray(
        env, stacks, layout, label=label or f"{spec.name}-{config.notation}"
    )
