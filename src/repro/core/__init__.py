"""Intra-disk parallelism — the paper's primary contribution.

* :mod:`repro.core.taxonomy` — the DASH design-space taxonomy
  (``D_k A_l S_m H_n``).
* :mod:`repro.core.actuator` — independent arm-assembly state.
* :mod:`repro.core.parallel_disk` — the HC-SD-SA(n) multi-actuator
  drive: SPTF arm selection under the paper's two conventional-drive
  restrictions (one arm in motion, one head transferring).
* :mod:`repro.core.extensions` — the technical-report relaxations:
  multiple arms in motion (MA) and multiple data channels (MC).
* :mod:`repro.core.factory` — build any DASH configuration (including
  the D-dimension, realised as an array of smaller stacks).
"""

from repro.core.taxonomy import DashConfig, CONVENTIONAL
from repro.core.actuator import ArmAssembly
from repro.core.parallel_disk import ParallelDisk
from repro.core.extensions import OverlappedParallelDisk
from repro.core.factory import build_dash_drive

__all__ = [
    "ArmAssembly",
    "CONVENTIONAL",
    "DashConfig",
    "OverlappedParallelDisk",
    "ParallelDisk",
    "build_dash_drive",
]
