"""Relaxations of the SA(n) restrictions (technical-report designs).

The paper's base HC-SD-SA(n) design keeps two conventional-drive
restrictions: one arm in motion at a time, one head transferring at a
time.  §7.2 notes two evaluated extensions that relax them —

* **MA** — multiple arm assemblies may be in motion simultaneously, so
  one request's seek can overlap another's rotation/transfer;
* **MC** — multiple data channels, so transfers themselves overlap —

and reports that both "provide little benefit over the HC-SD-SA(n)
design".  :class:`OverlappedParallelDisk` implements both so the
ablation benchmark can reproduce that negative result.

Unlike the serialised base drive, this model dispatches one service
*process per request*: a request grabs an idle arm, seeks and waits out
its rotational latency concurrently with other arms, then contends for
one of ``channels`` data channels to transfer.  If the channel was busy
when the sector arrived under the head, the platter has rotated past
and the request pays a re-alignment wait.
"""

from __future__ import annotations

from typing import Optional

from repro.core.actuator import ArmAssembly
from repro.core.parallel_disk import ParallelDisk
from repro.core.taxonomy import DashConfig
from repro.disk.request import IORequest
from repro.disk.scheduler import QueueScheduler
from repro.disk.specs import DriveSpec
from repro.sim.engine import Environment
from repro.sim.resources import Resource

__all__ = ["OverlappedParallelDisk"]

_FAR_FUTURE = float("inf")


class OverlappedParallelDisk(ParallelDisk):
    """SA(n) with the MA relaxation, and MC when ``channels > 1``.

    Parameters
    ----------
    channels:
        Number of concurrently usable data channels (1 reproduces the
        MA-only design; ``n`` arms with ``n`` channels is the full MC
        design).
    """

    def __init__(
        self,
        env: Environment,
        spec: DriveSpec,
        config: Optional[DashConfig] = None,
        channels: int = 1,
        scheduler: Optional[QueueScheduler] = None,
        seek_scale: float = 1.0,
        rotation_scale: float = 1.0,
        cache_segments: int = 16,
        label: Optional[str] = None,
    ):
        if channels <= 0:
            raise ValueError(f"channels must be positive, got {channels}")
        self._channels_requested = channels
        super().__init__(
            env,
            spec,
            config=config,
            scheduler=scheduler,
            seek_scale=seek_scale,
            rotation_scale=rotation_scale,
            cache_segments=cache_segments,
            label=label,
        )
        self.channel = Resource(env, capacity=channels)
        self.channels = channels

    # -- dispatch loop -------------------------------------------------------
    def _serve_loop(self):
        # The Resource is created after the base constructor starts this
        # process; the first real work happens at time 0 via an event,
        # by which point __init__ has finished.
        while True:
            while not self._pending or not self._has_idle_arm():
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
            request = self.scheduler.select(self._pending, self._context())
            if request.is_read and self.cache.lookup_read(
                request.lba, request.size
            ):
                self._pending.remove(request)
                self._cylinder_cache.pop(request.request_id, None)
                request.start_service = self.env.now
                self.env.process(self._run_cache_hit(request))
                continue
            arm, seek, rotation, _head = self.best_arm_for(
                request, self.env.now + self.spec.controller_overhead_ms
            )
            if self._should_wait_for_better_arm(
                request, seek + rotation
            ):
                # A busy assembly would position far faster than any
                # idle one; hold the request until an arm frees rather
                # than burn a long seek — otherwise overlap degenerates
                # into "every request gets whatever arm is left".
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            self._pending.remove(request)
            self._cylinder_cache.pop(request.request_id, None)
            request.start_service = self.env.now
            arm.busy_until = _FAR_FUTURE
            self._preposition(
                arm, self.geometry.to_physical(request.lba).cylinder
            )
            self.env.process(
                self._run_media(request, arm, seek, rotation)
            )

    def _should_wait_for_better_arm(
        self, request: IORequest, idle_cost: float
    ) -> bool:
        now = self.env.now
        if all(arm.is_idle(now) for arm in self.arms):
            return False
        _, seek, rotation, _ = self.best_arm_for(
            request, now, include_busy=True
        )
        best_cost = seek + rotation
        return idle_cost > best_cost + self.spindle.average_latency_ms

    def _has_idle_arm(self) -> bool:
        now = self.env.now
        return any(arm.is_idle(now) for arm in self.arms)

    def _notify_arm_free(self, arm: ArmAssembly) -> None:
        arm.busy_until = self.env.now
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # -- per-request service processes ----------------------------------------
    def _run_cache_hit(self, request: IORequest):
        overhead = self.spec.controller_overhead_ms
        bus_ms = (request.size * 512 / self.spec.bus_bytes_per_s) * 1000.0
        with self.channel.request() as grant:
            yield grant
            yield self.env.timeout(overhead + bus_ms)
        request.cache_hit = True
        request.transfer_time = bus_ms
        self.stats.transfer_ms += overhead + bus_ms
        self.stats.cache_hits += 1
        self._complete(request)

    def _run_media(
        self,
        request: IORequest,
        arm: ArmAssembly,
        seek: float,
        rotation: float,
    ):
        overhead = self.spec.controller_overhead_ms
        address = self.geometry.to_physical(request.lba)
        sector_angle = self.geometry.sector_angle(address)

        yield self.env.timeout(overhead + seek)
        self.stats.transfer_ms += overhead
        self.stats.seek_ms += seek
        self.stats.record_arm_seek(arm.arm_id, seek)
        if seek > 0.0:
            self.stats.nonzero_seeks += 1

        yield self.env.timeout(rotation)
        self.stats.rotational_latency_ms += rotation

        arrived_at_channel = self.env.now
        with self.channel.request() as grant:
            yield grant
            # If the channel was contended, the sector has rotated past;
            # wait for it to come around to this arm's best head again.
            # (No charge when the grant was immediate — the head is
            # still aligned from the rotation wait.)
            if self.env.now > arrived_at_channel:
                realign, _head = arm.best_head_latency(
                    self.spindle.latency_to, self.env.now, sector_angle
                )
                realign *= self.rotation_scale
                if realign > 1e-9:
                    yield self.env.timeout(realign)
                    self.stats.rotational_latency_ms += realign
                    rotation += realign
            transfer = self._transfer_time(request)
            yield self.env.timeout(transfer)
        self.stats.transfer_ms += transfer
        self.stats.sectors_transferred += request.size

        request.seek_time = seek
        request.rotational_latency = rotation
        request.transfer_time = transfer
        request.arm_id = arm.arm_id
        arm.record_service(seek)
        arm.move_to(
            self.geometry.to_physical(request.lba + request.size - 1).cylinder
        )
        self._current_cylinder = arm.cylinder
        self._update_cache(request, address)
        self._complete(request)
        self._notify_arm_free(arm)
