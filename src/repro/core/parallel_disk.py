"""The multi-actuator intra-disk parallel drive — HC-SD-SA(n).

``ParallelDisk`` extends the conventional drive of
:mod:`repro.disk.drive` with the A, S and H dimensions of the DASH
taxonomy while retaining the paper's two conventional restrictions
(§7.2):

1. only a single arm assembly may be in motion at any time, and
2. only a single head may transfer data over the channel.

Requests are therefore still serviced one at a time, but for each
request the SPTF-based arm scheduler chooses *whichever idle assembly
minimises the overall positioning time* — the assemblies sit at
distinct angular mounts and distinct cylinders, so the nearest one wins
on both seek and rotational latency.  This is the mechanism behind the
paper's Figure 5: the rotational-latency PDF tail shortens from a full
revolution toward ``period / n``.

The relaxations of the two restrictions (multiple arms in motion,
multiple channels) live in :mod:`repro.core.extensions`.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional, Tuple

from repro.core.actuator import ArmAssembly
from repro.core.taxonomy import DashConfig
from repro.disk.drive import ConventionalDrive, DriveStats
from repro.disk.geometry import PhysicalAddress
from repro.disk.request import IORequest
from repro.disk.scheduler import QueueScheduler
from repro.disk.specs import DriveSpec
from repro.sim.engine import Environment

__all__ = ["ParallelDisk"]


class ParallelDisk(ConventionalDrive):
    """A drive with ``config.arm_assemblies`` independent actuators.

    Parameters
    ----------
    env, spec, scheduler, seek_scale, rotation_scale, cache_segments:
        As for :class:`~repro.disk.drive.ConventionalDrive`.
    config:
        The DASH configuration.  ``disk_stacks`` must be 1 here — the
        D-dimension is realised by :func:`repro.core.factory.build_dash_drive`
        as an array of stacks.
    """

    def __init__(
        self,
        env: Environment,
        spec: DriveSpec,
        config: Optional[DashConfig] = None,
        scheduler: Optional[QueueScheduler] = None,
        seek_scale: float = 1.0,
        rotation_scale: float = 1.0,
        cache_segments: int = 16,
        label: Optional[str] = None,
        retry_policy=None,
    ):
        config = config or DashConfig(arm_assemblies=spec.actuators)
        if config.disk_stacks != 1:
            raise ValueError(
                "ParallelDisk models a single stack; use build_dash_drive() "
                f"for {config.notation}"
            )
        super().__init__(
            env,
            spec,
            scheduler=scheduler,
            seek_scale=seek_scale,
            rotation_scale=rotation_scale,
            cache_segments=cache_segments,
            label=label or f"{spec.name}-{config.notation}",
            retry_policy=retry_policy,
        )
        self.config = config
        if config.surfaces > self.geometry.surfaces:
            raise ValueError(
                f"{config.notation}: cannot access {config.surfaces} "
                f"surfaces in parallel on a {self.geometry.surfaces}-surface "
                "drive"
            )
        head_offsets = config.head_offset_angles()
        start = self.geometry.cylinders // 2
        self.arms: List[ArmAssembly] = [
            ArmAssembly(
                arm_id=index,
                mount_angle=angle,
                initial_cylinder=start,
                head_offsets=head_offsets,
            )
            for index, angle in enumerate(config.arm_mount_angles())
        ]
        if len(self.arms) != len(self.stats.per_arm_seek_ms):
            # The DASH config may request more (or fewer) assemblies
            # than the spec advertises; re-preallocate so per-arm stats
            # are shaped by the actual arm count.
            self.stats = DriveStats.for_arms(len(self.arms))
        #: Enable firmware-style pre-positioning of idle assemblies
        #: (see :meth:`_preposition`); the knob exists for ablation.
        self.preposition_idle_arms = True
        #: Count of background repositioning moves performed.
        self.repositions = 0

    # -- arm selection ------------------------------------------------------
    @property
    def actuator_count(self) -> int:
        return len(self.arms)

    def best_arm_for(
        self,
        request: IORequest,
        at_time: float,
        include_busy: bool = False,
        address: Optional[PhysicalAddress] = None,
    ) -> Tuple[ArmAssembly, float, float, int]:
        """The (arm, seek, rotation, head) minimising positioning time.

        Considers every arm that is idle at ``at_time``; in the base
        SA(n) drive service is serialised, so all arms are idle at each
        decision point.  With ``include_busy`` the search ignores
        busy/idle state — used by the overlapped extensions to judge
        whether waiting for a busy arm would beat dispatching now.
        ``address`` lets callers pass an already-decoded target.
        """
        if address is None:
            cylinder, sector_angle = self.geometry.decode_target(request.lba)
        else:
            cylinder = address.cylinder
            sector_angle = self.geometry.sector_angle(address)
        return self._best_arm(cylinder, sector_angle, at_time, include_busy)

    def _best_arm(
        self,
        cylinder: int,
        sector_angle: float,
        at_time: float,
        include_busy: bool = False,
    ) -> Tuple[ArmAssembly, float, float, int]:
        """SPTF arm search over an already-decoded target.

        Arms are scanned in ``arm_id`` order with a strict improvement
        test, so ties go to the lowest id — the same total order as the
        documented ``(total, arm_id)`` key.
        """
        seek_time = self.seek_model.seek_time
        spindle = self.spindle
        latency_to = spindle.latency_to
        period = spindle._period_ms
        phase = spindle.phase
        seek_scale = self.seek_scale
        rotation_scale = self.rotation_scale
        best: Optional[Tuple[float, ArmAssembly, float, float, int]] = None
        for arm in self.arms:
            if arm.failed:
                # Deconfigured assemblies never serve again; SPTF
                # degrades transparently to the survivors (and
                # ``is_idle`` alone would not exclude them for the
                # overlapped extensions' ``include_busy`` searches).
                continue
            if not include_busy and at_time < arm.busy_until:
                continue
            seek = seek_time(arm.cylinder, cylinder) * seek_scale
            angles = arm._head_angles
            if len(angles) == 1:
                # Single head per surface (every evaluated design):
                # Spindle.latency_to inlined, operation for operation,
                # saving the best_head_latency and latency_to frames on
                # each arm evaluation.
                platter = (phase + (at_time + seek) / period) % 1.0
                gap = (sector_angle - platter - angles[0]) % 1.0
                if gap >= 1.0:  # float quirk: (-1e-18) % 1.0 == 1.0
                    gap = 0.0
                rotation = gap * period
                head = 0
            else:
                rotation, head = arm.best_head_latency(
                    latency_to, at_time + seek, sector_angle
                )
            rotation *= rotation_scale
            total = seek + rotation
            if best is None or total < best[0]:
                best = (total, arm, seek, rotation, head)
        if best is None:
            raise RuntimeError("no idle arm available")
        _, arm, seek, rotation, head = best
        return arm, seek, rotation, head

    def positioning_estimate(self, request: IORequest) -> float:
        if request.is_read and self.cache.contains(request.lba, request.size):
            return 0.0
        target = self._target_cache.get(request.request_id)
        if target is None:
            target = self.geometry.decode_target(request.lba)
            self._target_cache[request.request_id] = target
        cylinder, sector_angle = target
        _, seek, rotation, _ = self._best_arm(
            cylinder, sector_angle, self.env._now
        )
        return seek + rotation

    def _preposition(self, active_arm: ArmAssembly, target_cylinder: int) -> None:
        """Background repositioning of a stranded idle assembly.

        A far-away assembly can never win the SPTF arm choice: its seek
        penalty exceeds the largest possible rotational gain (one
        revolution).  Drive firmware therefore shuttles idle assemblies
        toward the active region while the servicing arm is stationary
        (rotational-latency and transfer phases) — the servicing arm
        stops moving once its seek ends, so the single-arm-in-motion
        restriction is preserved for *servicing* seeks.

        The move's VCM activity is billed to the seek-mode energy,
        which is why the paper sees the fraction of non-zero-seek
        requests (and seek power) grow with actuator count (§7.2).
        """
        if not self.preposition_idle_arms:
            return
        now = self.env._now
        # First-maximal scan in arm_id order: the same arm max() with an
        # abs-distance key would pick, without the candidate list.
        farthest = None
        farthest_distance = -1
        for arm in self.arms:
            if arm is active_arm or arm.failed or now < arm.busy_until:
                continue
            distance = arm.cylinder - target_cylinder
            if distance < 0:
                distance = -distance
            if distance > farthest_distance:
                farthest_distance = distance
                farthest = arm
        if farthest is None:
            return
        move = (
            self.seek_model.seek_time(farthest.cylinder, target_cylinder)
            * self.seek_scale
        )
        # Only shuttle assemblies whose seek handicap exceeds the
        # typical rotational stake (half a revolution): any farther and
        # the assembly can rarely win the SPTF arm choice.
        if move <= self.spindle.average_latency_ms:
            return
        farthest.busy_until = now + move
        farthest.move_to(target_cylinder)
        farthest.seek_time_ms += move
        farthest.seeks += 1
        self.stats.seek_ms += move
        self.stats.record_arm_seek(farthest.arm_id, move)
        self.repositions += 1
        if self.tracer.enabled:
            self.tracer.span(
                "preposition",
                "seek",
                now,
                move,
                (self.label, f"arm {farthest.arm_id}"),
                args={"to_cylinder": target_cylinder},
            )
            self.tracer.telemetry.counter("arms.repositions").inc()

    # -- service ------------------------------------------------------------
    def _service_media(self, request: IORequest, overhead: float):
        spec = self.spec
        (
            cylinder,
            sector_angle,
            spt,
            track_crossings,
            cylinder_crossings,
            end_cylinder,
            end_sector,
            end_spt,
        ) = self.geometry.service_plan(request.lba, request.size)
        settle = 0.0 if request.is_read else spec.write_settle_ms
        # The head is ready overhead (+ settle) + seek after now;
        # evaluate the rotational gap for that instant so the charged
        # latency matches the platter's true phase.
        arm, seek, rotation, _head = self._best_arm(
            cylinder, sector_angle, self.env._now + overhead + settle
        )
        seek += settle
        if self.tracer.enabled:
            # Annotate the SPTF arm decision: which assembly won, what
            # it cost, and how contested the choice was — the per-arm
            # view behind the paper's Figure 5 latency shortening.
            now = self.env.now
            self.tracer.instant(
                "arm-select",
                now,
                (self.label, f"arm {arm.arm_id}"),
                args={
                    "req": request.request_id,
                    "arm": arm.arm_id,
                    "seek_ms": seek,
                    "rotation_ms": rotation,
                    "idle_arms": sum(
                        1 for a in self.arms if a.is_idle(now)
                    ),
                },
            )
            self.tracer.telemetry.counter(
                f"arms.selected.{arm.arm_id}"
            ).inc()
        self._preposition(arm, cylinder)

        # Seek, rotation (estimated at decision time for the instant the
        # head comes ready) and transfer are all fixed here, so one
        # combined timeout reaches the same completion instant as
        # yielding per phase at a third of the engine-event cost.  With
        # ``m`` surfaces streaming simultaneously (S-dimension) the
        # streaming time divides by ``m`` and intra-cylinder head
        # switches disappear (see :meth:`_transfer_time`).
        m = self.config.surfaces
        # Spindle.transfer_time inlined (``(sectors / spt) * period``):
        # service_plan already validated the request bounds, so the
        # method's argument checks — and its frame — are redundant here.
        if m <= 1:
            transfer = (request.size / spt) * self.spindle._period_ms
            transfer += (
                track_crossings - cylinder_crossings
            ) * spec.head_switch_ms
            transfer += cylinder_crossings * spec.seek_track_to_track_ms
        else:
            transfer = (
                (request.size / spt) * self.spindle._period_ms / m
                + cylinder_crossings * spec.seek_track_to_track_ms
            )
        penalty = (
            self._media_retry_penalty(request) if self._armed_faults else 0.0
        )
        if self.tracer.enabled:
            self._record_phase_spans(
                request,
                self.env.now,
                overhead,
                seek,
                rotation,
                transfer,
                arm.arm_id,
                retry=penalty,
            )
        total = overhead + seek + rotation + transfer + penalty
        # Stamped before the timeout (every phase is fixed here and the
        # request is unobserved while in service) so the sharded kernel
        # can report the completion, fields included, at dispatch.
        request.seek_time = seek
        request.rotational_latency = rotation
        request.transfer_time = transfer
        request.arm_id = arm.arm_id
        if self.dispatch_listener is not None:
            self.dispatch_listener(request, total)
        env = self.env
        pool = env._timeout_pool
        if pool:
            # Inlined Environment.timeout pool path: ``total`` is a sum
            # of non-negative phases, so the negative-delay check can't
            # fire.  One combined service wait per media access makes
            # this the drive's hottest yield.  See engine.timeout for
            # the canonical body.
            wait = pool.pop()
            wait.delay = total
            wait._value = None
            wait._ok = True
            wait.defused = False
            env._eid += 1
            calendar = env._calendar
            if calendar is not None and (
                calendar._cursor > calendar._nbuckets
            ):
                current = calendar._current
                insort(
                    current, (-env._now - total, -1, -env._eid, wait)
                )
                if len(current) > calendar._spill_limit:
                    calendar._rest += len(current)
                    calendar._overflow.extend(current)
                    del current[:]
                    calendar._reseed()
            else:
                env._queue.push(env._now + total, 1, env._eid, wait)
            yield wait
        else:
            yield env.timeout(total)
        # Post-service accounting with stats bound once and the
        # record_arm_seek / record_service / move_to bodies inlined
        # (drives preallocate per_arm_seek_ms at construction, and
        # geometry end cylinders are always non-negative, so the
        # methods' resize/validation branches cannot fire here).
        stats = self.stats
        stats.transfer_ms += overhead
        stats.seek_ms += seek
        stats.per_arm_seek_ms[arm.arm_id] += seek
        if seek > 0.0:
            stats.nonzero_seeks += 1
        stats.rotational_latency_ms += rotation
        if penalty > 0.0:
            stats.rotational_latency_ms += penalty
        stats.transfer_ms += transfer
        stats.sectors_transferred += request.size

        arm.requests_serviced += 1
        arm.seek_time_ms += seek
        if seek > 0.0:
            arm.seeks += 1
        arm.cylinder = end_cylinder
        self._current_cylinder = end_cylinder
        self._update_cache_planned(request, end_sector, end_spt)

    def min_service_ms(self) -> float:
        """Conservative lookahead, tightened for surface parallelism.

        With ``m`` surfaces streaming simultaneously the one-sector
        media floor shrinks to ``period / (max_spt * m)`` (head-switch
        and track-to-track terms only ever add).  Per-shard arm
        scheduling does not weaken the bound: whichever arm the SPTF
        pick selects, its seek and rotation are non-negative.
        """
        bus_ms = (512 / self.spec.bus_bytes_per_s) * 1000.0
        max_spt = max(
            zone.sectors_per_track for zone in self.geometry.zones
        )
        media_ms = self.spindle.period_ms / (
            max_spt * max(1, self.config.surfaces)
        )
        return self.spec.controller_overhead_ms + min(bus_ms, media_ms)

    def _transfer_time(self, request: IORequest) -> float:
        """Transfer time, accelerated by surface-level parallelism.

        With ``m`` surfaces readable simultaneously (S-dimension) the
        streaming time divides by ``m`` and intra-cylinder head
        switches disappear; the paper assumes the data channel has
        sufficient bandwidth for all evaluated designs (§4).
        """
        base = super()._transfer_time(request)
        m = self.config.surfaces
        if m <= 1:
            return base
        spt, track_crossings, cylinder_crossings = (
            self.geometry.transfer_geometry(request.lba, request.size)
        )
        head_switches = track_crossings - cylinder_crossings
        streaming = self.spindle.transfer_time(request.size, spt) / m
        hidden_switches = max(0, head_switches - cylinder_crossings * (m - 1))
        del hidden_switches  # switches inside a cylinder are parallelised
        return (
            streaming
            + cylinder_crossings * self.spec.seek_track_to_track_ms
        )

    # -- graceful degradation (paper §8) --------------------------------------
    @property
    def healthy_arm_count(self) -> int:
        return sum(1 for arm in self.arms if not arm.failed)

    def deconfigure_arm(self, arm_id: int) -> None:
        """Remove a (failing) assembly from service permanently.

        Models the paper's reliability answer (§8): SMART-style sensors
        predict an impending head/assembly failure and firmware
        deconfigures the component, degrading the drive gracefully to
        SA(n-1) behaviour instead of failing outright.  At least one
        healthy assembly must remain.
        """
        matches = [arm for arm in self.arms if arm.arm_id == arm_id]
        if not matches:
            raise ValueError(
                f"no arm with id {arm_id}; have "
                f"{[arm.arm_id for arm in self.arms]}"
            )
        arm = matches[0]
        if arm.failed:
            return
        if self.healthy_arm_count <= 1:
            raise ValueError(
                "cannot deconfigure the last healthy arm assembly"
            )
        arm.failed = True
        if self.tracer.enabled:
            self.tracer.instant(
                "arm-deconfigured",
                self.env.now,
                (self.label, f"arm {arm.arm_id}"),
                args={
                    "arm": arm.arm_id,
                    "healthy_remaining": self.healthy_arm_count,
                },
            )
            self.tracer.telemetry.counter("arms.deconfigured").inc()
            self.tracer.telemetry.gauge("arms.healthy").set(
                self.healthy_arm_count
            )

    # -- diagnostics ----------------------------------------------------------
    def arm_report(self) -> List[dict]:
        """Per-arm utilisation summary (requests, seeks, seek time)."""
        return [
            {
                "arm_id": arm.arm_id,
                "mount_angle": arm.mount_angle,
                "requests": arm.requests_serviced,
                "seeks": arm.seeks,
                "seek_time_ms": arm.seek_time_ms,
                "cylinder": arm.cylinder,
                "failed": arm.failed,
            }
            for arm in self.arms
        ]
