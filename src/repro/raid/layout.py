"""Array address-translation layouts.

A layout maps one *logical* request onto one or more *physical*
slices, each a contiguous run of sectors on one member drive.  Three
layouts cover the paper's experiments:

* :class:`JBODLayout` — route by the request's ``source_disk`` field,
  leaving the address untouched.  This reproduces the original MD
  arrays, where each trace record already names its disk.
* :class:`ConcatLayout` — the paper's MD→HC-SD migration layout
  (§7.1): the single high-capacity drive is "sequentially populated
  with data from each of the drives in MD", so disk ``i``'s address
  space begins after disks ``0..i-1``.
* :class:`Raid0Layout` — classic striping for the synthetic-workload
  arrays of §7.3.
* :class:`Raid5Layout` — left-symmetric rotating parity; writes expand
  into read-modify-write slice sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "ConcatLayout",
    "InterleavedConcatLayout",
    "JBODLayout",
    "Layout",
    "Raid0Layout",
    "Raid1Layout",
    "Raid10Layout",
    "Raid5Layout",
    "Slice",
    "degraded_raid5_map",
]


@dataclass(frozen=True)
class Slice:
    """A contiguous physical run on one member drive.

    ``is_read`` can differ from the logical request for parity
    maintenance (RAID-5 read-modify-write).  ``phase`` orders slices:
    all phase-0 slices must complete before phase-1 slices are issued
    (old-data reads before new-parity writes).
    """

    disk: int
    lba: int
    size: int
    is_read: bool
    phase: int = 0

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ValueError(f"disk must be non-negative, got {self.disk}")
        if self.lba < 0:
            raise ValueError(f"lba must be non-negative, got {self.lba}")
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")


class Layout:
    """Interface: translate a logical request into physical slices."""

    #: Number of member drives the layout spans.
    disk_count: int

    #: True when the layout can issue drive work *in reaction to* drive
    #: completions (multi-phase maps: phase-1 slices wait on phase-0).
    #: The sharded kernel uses this to pick its synchronisation
    #: protocol — feedback-free layouts can run a whole experiment in
    #: one conservative window, feedback layouts need lockstep windows
    #: bounded by the lookahead (see :mod:`repro.sim.sharded`).
    feedback_phases = False

    def capacity_sectors(self) -> int:
        """Logical capacity exposed by the layout."""
        raise NotImplementedError

    def map_request(
        self, lba: int, size: int, is_read: bool, source_disk: int = 0
    ) -> List[Slice]:
        raise NotImplementedError

    def _check(self, lba: int, size: int) -> None:
        if lba < 0 or size <= 0:
            raise ValueError(f"bad logical extent lba={lba} size={size}")
        if lba + size > self.capacity_sectors():
            raise ValueError(
                f"extent [{lba}, {lba + size}) exceeds logical capacity "
                f"{self.capacity_sectors()}"
            )


class JBODLayout(Layout):
    """Route by ``source_disk``; addresses pass through unchanged."""

    def __init__(self, disk_capacities: Sequence[int]):
        if not disk_capacities:
            raise ValueError("need at least one disk")
        self.disk_capacities = list(disk_capacities)
        self.disk_count = len(disk_capacities)

    def capacity_sectors(self) -> int:
        return sum(self.disk_capacities)

    def map_request(
        self, lba: int, size: int, is_read: bool, source_disk: int = 0
    ) -> List[Slice]:
        if not 0 <= source_disk < self.disk_count:
            raise ValueError(
                f"source_disk {source_disk} out of range "
                f"[0, {self.disk_count})"
            )
        if lba + size > self.disk_capacities[source_disk]:
            raise ValueError(
                f"extent [{lba}, {lba + size}) exceeds disk {source_disk} "
                f"capacity {self.disk_capacities[source_disk]}"
            )
        return [Slice(source_disk, lba, size, is_read)]


class ConcatLayout(Layout):
    """Concatenate several source address spaces onto one drive.

    ``map_request`` interprets ``(source_disk, lba)`` exactly as
    :class:`JBODLayout` does, but lands everything on drive 0 at
    ``base[source_disk] + lba`` — the paper's HC-SD data layout.
    """

    def __init__(self, source_capacities: Sequence[int]):
        if not source_capacities:
            raise ValueError("need at least one source disk")
        self.source_capacities = list(source_capacities)
        self.disk_count = 1
        self._bases: List[int] = []
        base = 0
        for capacity in self.source_capacities:
            if capacity <= 0:
                raise ValueError(f"capacity must be positive, got {capacity}")
            self._bases.append(base)
            base += capacity
        self._total = base

    def capacity_sectors(self) -> int:
        return self._total

    def base_of(self, source_disk: int) -> int:
        return self._bases[source_disk]

    def map_request(
        self, lba: int, size: int, is_read: bool, source_disk: int = 0
    ) -> List[Slice]:
        if not 0 <= source_disk < len(self.source_capacities):
            raise ValueError(
                f"source_disk {source_disk} out of range "
                f"[0, {len(self.source_capacities)})"
            )
        if lba + size > self.source_capacities[source_disk]:
            raise ValueError(
                f"extent [{lba}, {lba + size}) exceeds source disk "
                f"{source_disk} capacity {self.source_capacities[source_disk]}"
            )
        return [Slice(0, self._bases[source_disk] + lba, size, is_read)]


class InterleavedConcatLayout(Layout):
    """Interleave several source address spaces onto one drive.

    The paper's HC-SD migration uses sequential concatenation because
    "there is insufficient information available in the I/O traces
    about the specific strategy that was used to distribute the
    application data" (§7.1).  This is the other natural choice: the
    source disks' spaces are striped onto the single drive in
    ``unit``-sector interleave, so each source disk's data spreads
    across the whole surface instead of occupying one contiguous band.
    The data-layout ablation bench compares the two.

    All source capacities must be equal (they are, for the paper's
    arrays).
    """

    def __init__(self, source_capacities: Sequence[int], unit: int = 2048):
        if not source_capacities:
            raise ValueError("need at least one source disk")
        if unit <= 0:
            raise ValueError(f"unit must be positive, got {unit}")
        first = source_capacities[0]
        if any(capacity != first for capacity in source_capacities):
            raise ValueError(
                "interleaved layout requires equal source capacities"
            )
        if first <= 0:
            raise ValueError(f"capacity must be positive, got {first}")
        self.source_capacities = list(source_capacities)
        self.sources = len(source_capacities)
        self.unit = unit
        self.disk_count = 1

    def capacity_sectors(self) -> int:
        return self.sources * self.source_capacities[0]

    def map_request(
        self, lba: int, size: int, is_read: bool, source_disk: int = 0
    ) -> List[Slice]:
        if not 0 <= source_disk < self.sources:
            raise ValueError(
                f"source_disk {source_disk} out of range "
                f"[0, {self.sources})"
            )
        if lba < 0 or size <= 0 or (
            lba + size > self.source_capacities[source_disk]
        ):
            raise ValueError(
                f"extent [{lba}, {lba + size}) invalid for source disk "
                f"{source_disk} (capacity "
                f"{self.source_capacities[source_disk]})"
            )
        slices: List[Slice] = []
        cursor = lba
        remaining = size
        while remaining > 0:
            unit_index = cursor // self.unit
            offset = cursor % self.unit
            run = min(self.unit - offset, remaining)
            physical = (
                unit_index * self.unit * self.sources
                + source_disk * self.unit
                + offset
            )
            slices.append(Slice(0, physical, run, is_read))
            cursor += run
            remaining -= run
        return _coalesce(slices)


class Raid0Layout(Layout):
    """Stripe across ``disk_count`` drives in ``stripe_unit``-sector units."""

    def __init__(
        self, disk_count: int, disk_capacity: int, stripe_unit: int = 128
    ):
        if disk_count <= 0:
            raise ValueError(f"disk_count must be positive, got {disk_count}")
        if disk_capacity <= 0:
            raise ValueError(
                f"disk_capacity must be positive, got {disk_capacity}"
            )
        if stripe_unit <= 0:
            raise ValueError(
                f"stripe_unit must be positive, got {stripe_unit}"
            )
        self.disk_count = disk_count
        self.disk_capacity = disk_capacity
        self.stripe_unit = stripe_unit

    def capacity_sectors(self) -> int:
        return self.disk_count * self.disk_capacity

    def map_request(
        self, lba: int, size: int, is_read: bool, source_disk: int = 0
    ) -> List[Slice]:
        self._check(lba, size)
        slices: List[Slice] = []
        remaining = size
        cursor = lba
        while remaining > 0:
            unit_index = cursor // self.stripe_unit
            offset = cursor % self.stripe_unit
            disk = unit_index % self.disk_count
            row = unit_index // self.disk_count
            run = min(self.stripe_unit - offset, remaining)
            slices.append(
                Slice(disk, row * self.stripe_unit + offset, run, is_read)
            )
            cursor += run
            remaining -= run
        return _coalesce(slices)


class Raid5Layout(Layout):
    """Left-symmetric RAID-5: parity rotates across the members.

    Reads map like RAID-0 over ``disk_count - 1`` data units per row.
    Small writes expand into the classic read-modify-write: phase 0
    reads old data and old parity; phase 1 writes new data and new
    parity.
    """

    feedback_phases = True

    def __init__(
        self, disk_count: int, disk_capacity: int, stripe_unit: int = 128
    ):
        if disk_count < 3:
            raise ValueError(
                f"RAID-5 needs at least 3 disks, got {disk_count}"
            )
        if disk_capacity <= 0:
            raise ValueError(
                f"disk_capacity must be positive, got {disk_capacity}"
            )
        if stripe_unit <= 0:
            raise ValueError(
                f"stripe_unit must be positive, got {stripe_unit}"
            )
        self.disk_count = disk_count
        self.disk_capacity = disk_capacity
        self.stripe_unit = stripe_unit

    @property
    def data_disks(self) -> int:
        return self.disk_count - 1

    def capacity_sectors(self) -> int:
        return self.data_disks * self.disk_capacity

    def _locate(self, unit_index: int) -> tuple:
        """(disk, row, parity_disk) for a logical stripe unit."""
        row = unit_index // self.data_disks
        position = unit_index % self.data_disks
        parity_disk = (self.disk_count - 1 - row) % self.disk_count
        # Left-symmetric: data units start just after the parity disk.
        disk = (parity_disk + 1 + position) % self.disk_count
        return disk, row, parity_disk

    def map_request(
        self, lba: int, size: int, is_read: bool, source_disk: int = 0
    ) -> List[Slice]:
        self._check(lba, size)
        slices: List[Slice] = []
        remaining = size
        cursor = lba
        while remaining > 0:
            unit_index = cursor // self.stripe_unit
            offset = cursor % self.stripe_unit
            disk, row, parity_disk = self._locate(unit_index)
            run = min(self.stripe_unit - offset, remaining)
            physical = row * self.stripe_unit + offset
            if is_read:
                slices.append(Slice(disk, physical, run, True))
            else:
                # Read-modify-write: old data + old parity, then new
                # data + new parity.
                slices.append(Slice(disk, physical, run, True, phase=0))
                slices.append(Slice(parity_disk, physical, run, True, phase=0))
                slices.append(Slice(disk, physical, run, False, phase=1))
                slices.append(
                    Slice(parity_disk, physical, run, False, phase=1)
                )
            cursor += run
            remaining -= run
        return _coalesce(slices)


class Raid1Layout(Layout):
    """Mirroring across ``disk_count`` replicas.

    Writes fan out to every replica; reads round-robin across replicas
    (read balancing), which is how mirrored arrays convert redundancy
    into read throughput.
    """

    def __init__(self, disk_count: int, disk_capacity: int):
        if disk_count < 2:
            raise ValueError(
                f"RAID-1 needs at least 2 disks, got {disk_count}"
            )
        if disk_capacity <= 0:
            raise ValueError(
                f"disk_capacity must be positive, got {disk_capacity}"
            )
        self.disk_count = disk_count
        self.disk_capacity = disk_capacity
        self._next_read_replica = 0

    def capacity_sectors(self) -> int:
        return self.disk_capacity

    def map_request(
        self, lba: int, size: int, is_read: bool, source_disk: int = 0
    ) -> List[Slice]:
        self._check(lba, size)
        if is_read:
            replica = self._next_read_replica
            self._next_read_replica = (replica + 1) % self.disk_count
            return [Slice(replica, lba, size, True)]
        return [
            Slice(disk, lba, size, False) for disk in range(self.disk_count)
        ]


class Raid10Layout(Layout):
    """Striping over mirrored pairs (RAID-1+0).

    ``disk_count`` must be even; disks ``2k`` and ``2k+1`` mirror each
    other and the pairs are striped RAID-0 style.
    """

    def __init__(
        self, disk_count: int, disk_capacity: int, stripe_unit: int = 128
    ):
        if disk_count < 4 or disk_count % 2 != 0:
            raise ValueError(
                f"RAID-10 needs an even disk count >= 4, got {disk_count}"
            )
        self.disk_count = disk_count
        self.disk_capacity = disk_capacity
        self.stripe_unit = stripe_unit
        self._stripe = Raid0Layout(
            disk_count // 2, disk_capacity, stripe_unit
        )
        self._next_read_side = 0

    def capacity_sectors(self) -> int:
        return self._stripe.capacity_sectors()

    def map_request(
        self, lba: int, size: int, is_read: bool, source_disk: int = 0
    ) -> List[Slice]:
        self._check(lba, size)
        pieces = self._stripe.map_request(lba, size, is_read, source_disk)
        slices: List[Slice] = []
        for piece in pieces:
            primary = 2 * piece.disk
            if is_read:
                side = self._next_read_side
                self._next_read_side = 1 - side
                slices.append(
                    Slice(primary + side, piece.lba, piece.size, True)
                )
            else:
                slices.append(
                    Slice(primary, piece.lba, piece.size, False)
                )
                slices.append(
                    Slice(primary + 1, piece.lba, piece.size, False)
                )
        return slices


def degraded_raid5_map(
    layout: "Raid5Layout",
    lba: int,
    size: int,
    is_read: bool,
    failed_disk: int,
) -> List[Slice]:
    """RAID-5 address translation with one failed member.

    * Reads whose data unit lives on the failed disk are served by
      *reconstruction*: read the same row extent from every surviving
      member (data siblings + parity) and XOR — so one logical read
      fans out to ``disk_count - 1`` physical reads.
    * Writes whose data unit lives on the failed disk degrade to a
      *reconstruct-write*: read the row from all survivors except
      parity, then write the new parity (the data itself cannot be
      stored until rebuild).
    * Accesses to healthy disks map normally, except that RMW reads of
      a failed parity disk are skipped (parity is simply lost for that
      row until rebuild) and the parity write is dropped.
    """
    if not 0 <= failed_disk < layout.disk_count:
        raise ValueError(
            f"failed_disk {failed_disk} out of range "
            f"[0, {layout.disk_count})"
        )
    layout._check(lba, size)
    slices: List[Slice] = []
    cursor = lba
    remaining = size
    while remaining > 0:
        unit_index = cursor // layout.stripe_unit
        offset = cursor % layout.stripe_unit
        disk, row, parity_disk = layout._locate(unit_index)
        run = min(layout.stripe_unit - offset, remaining)
        physical = row * layout.stripe_unit + offset
        survivors = [
            member
            for member in range(layout.disk_count)
            if member != failed_disk
        ]
        if is_read:
            if disk == failed_disk:
                slices.extend(
                    Slice(member, physical, run, True)
                    for member in survivors
                )
            else:
                slices.append(Slice(disk, physical, run, True))
        else:
            if disk == failed_disk:
                # Reconstruct-write: read surviving data siblings,
                # write new parity.
                for member in survivors:
                    if member != parity_disk:
                        slices.append(
                            Slice(member, physical, run, True, phase=0)
                        )
                slices.append(
                    Slice(parity_disk, physical, run, False, phase=1)
                )
            elif parity_disk == failed_disk:
                # Parity lost: plain write of the data, no RMW.
                slices.append(Slice(disk, physical, run, False))
            else:
                slices.append(Slice(disk, physical, run, True, phase=0))
                slices.append(
                    Slice(parity_disk, physical, run, True, phase=0)
                )
                slices.append(Slice(disk, physical, run, False, phase=1))
                slices.append(
                    Slice(parity_disk, physical, run, False, phase=1)
                )
        cursor += run
        remaining -= run
    return _coalesce(slices)


def _coalesce(slices: List[Slice]) -> List[Slice]:
    """Merge physically adjacent slices on the same disk/kind/phase."""
    merged: List[Slice] = []
    for piece in slices:
        if merged:
            last = merged[-1]
            if (
                last.disk == piece.disk
                and last.is_read == piece.is_read
                and last.phase == piece.phase
                and last.lba + last.size == piece.lba
            ):
                merged[-1] = Slice(
                    last.disk,
                    last.lba,
                    last.size + piece.size,
                    last.is_read,
                    last.phase,
                )
                continue
        merged.append(piece)
    return merged
