"""The array controller: logical requests in, per-drive requests out.

A :class:`DiskArray` owns a set of member drives and a
:class:`~repro.raid.layout.Layout`.  Each submitted logical request is
translated into physical slices, issued to the member drives (phase by
phase, for RAID-5 read-modify-write), and completed when the last slice
finishes.  The logical request's measurement fields are stamped from
the slice that finished last, so response-time metrics reflect the
critical path.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional, Sequence

from repro.disk.drive import ConventionalDrive
from repro.disk.request import IORequest, release_request
from repro.faults.errors import DataLossError
from repro.faults.policy import RetryPolicy
from repro.obs.tracer import tracer_for
from repro.raid.layout import ConcatLayout, JBODLayout, Layout, Slice
from repro.sim.engine import Environment, Event

__all__ = ["DiskArray"]


class DiskArray:
    """A storage system composed of member drives behind one layout.

    Parameters
    ----------
    env:
        Simulation environment shared with the member drives.
    drives:
        Member drives, in layout order.  Any object with the drive
        interface (``submit``, ``stats``, ``geometry``) works, so
        arrays of :class:`~repro.core.parallel_disk.ParallelDisk` are
        built exactly the same way (§7.3).
    layout:
        Address translation; its ``disk_count`` must match.
    retry_policy:
        Optional :class:`~repro.faults.policy.RetryPolicy`.  When set,
        every logical request runs through a coordinating process that
        resubmits slices whose physical request came back with an
        unrecovered media error (up to ``max_attempts`` submissions,
        with linear backoff) and counts deadline misses against
        ``timeout_ms``.  When ``None`` (the default) the request path
        is exactly the policy-free fast path — bit-identical to the
        pre-robustness controller.
    """

    def __init__(
        self,
        env: Environment,
        drives: Sequence[ConventionalDrive],
        layout: Layout,
        label: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if not drives:
            raise ValueError("array needs at least one drive")
        if layout.disk_count != len(drives):
            raise ValueError(
                f"layout expects {layout.disk_count} drives, got {len(drives)}"
            )
        self.env = env
        self.drives: List[ConventionalDrive] = list(drives)
        self.layout = layout
        self.label = label or f"array[{len(drives)}x{drives[0].label}]"
        self.requests_completed = 0
        #: Observability (resolved like the drives: ``env.tracer`` or
        #: the ambient tracer).  The array records logical-request
        #: envelopes, slice fan-out, degraded mapping and rebuild rows.
        self.tracer = tracer_for(env)
        #: Callbacks invoked with each completed *logical* request.
        self.on_complete: List[Callable[[IORequest], None]] = []
        self._outstanding: Dict[int, Event] = {}
        self._failed_disk: Optional[int] = None
        #: Fraction of a RAID-5 rebuild completed (set by rebuild()).
        self.rebuild_progress: float = 0.0
        self.retry_policy = retry_policy
        self._rebuild_active = False
        #: Degraded-mode accounting: when the current degradation
        #: started (None while healthy) and total degraded residency.
        self.degraded_since: Optional[float] = None
        self.degraded_ms: float = 0.0
        self.rebuild_started_ms: Optional[float] = None
        self.rebuild_finished_ms: Optional[float] = None
        #: Robustness counters (all zero on a fault-free run).
        self.drive_failures = 0
        self.slice_retries = 0
        self.deadline_misses = 0
        self.unrecovered_requests = 0
        self.aborted_requests = 0
        self._external_feedback = False
        #: Pre-resolved single-slice translation for the passthrough
        #: layouts (JBOD routes by source disk unchanged; concatenation
        #: lands ``base[source] + lba`` on drive 0).  ``submit`` uses it
        #: to skip the ``_map``/``map_request``/``Slice`` round trip on
        #: the healthy, policy-free path; anything it cannot validate
        #: falls back to ``_map`` so error behaviour is unchanged.
        #: Exact-type checks: a layout subclass may override mapping.
        self._fast_map: Optional[tuple] = None
        if type(layout) is JBODLayout:
            self._fast_map = (list(layout.disk_capacities), None)
        elif type(layout) is ConcatLayout:
            self._fast_map = (
                list(layout.source_capacities),
                list(layout._bases),
            )

    # -- drive-like interface -------------------------------------------------
    @property
    def disk_count(self) -> int:
        return len(self.drives)

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    @property
    def needs_lockstep(self) -> bool:
        """True when the controller reacts to completions with new work.

        The sharded kernel (:mod:`repro.sim.sharded`) keys its window
        protocol off this: a retry policy resubmits slices after a
        completion reports a media error, and a multi-phase layout
        (RAID-5 read-modify-write, rebuild traffic) issues phase-1
        writes only once phase-0 reads complete.  Either way drive work
        is created *in reaction to* drive completions, so shards must
        advance in bounded lockstep windows.  Feedback-free
        configurations — every single-phase layout without a retry
        policy, including degraded/aborted runs on non-redundant
        layouts — can run each shard to exhaustion in one window.

        External actors that react to simulated time with array-level
        state changes (a fault injector that fails whole drives or
        starts rebuilds) must call :meth:`declare_external_feedback`
        so their reactions also interleave exactly.
        """
        return (
            self.retry_policy is not None
            or self.layout.feedback_phases
            or self._external_feedback
        )

    def declare_external_feedback(self) -> None:
        """Force lockstep windows under the sharded kernel.

        Called by components outside the array — the fault injector,
        for one — whose mid-run reactions (``fail_drive``, ``rebuild``)
        read or abort in-flight completions and therefore must observe
        them in strict global time order.
        """
        self._external_feedback = True

    def capacity_sectors(self) -> int:
        return self.layout.capacity_sectors()

    def submit(self, request: IORequest) -> Event:
        """Issue a logical request; returns its completion event."""
        fast = self._fast_map
        if (
            fast is not None
            and self._failed_disk is None
            and self.retry_policy is None
        ):
            capacities, bases = fast
            source = request.source_disk
            lba = request.lba
            size = request.size
            if 0 <= source < len(capacities) and (
                lba + size <= capacities[source]
            ):
                env = self.env
                completion = Event(env)
                self._outstanding[request.request_id] = completion
                if bases is None:
                    disk = source
                else:
                    disk = 0
                    lba += bases[source]
                physical = request.clone_slice(
                    lba, size, request.is_read, env._now, disk
                )
                self.drives[disk].submit(physical).callbacks.append(
                    lambda event: self._finish_single(
                        request, physical, completion
                    )
                )
                return completion
            # Out-of-range extent: let the layout raise its own error.
        slices = self._map(request)
        # Direct Event construction: one logical completion per submit,
        # so the env.event() factory frame is pure overhead.
        completion = Event(self.env)
        self._outstanding[request.request_id] = completion
        if self.retry_policy is not None:
            # Robust path: a coordinating process that can resubmit
            # slices and account deadline misses.  Never taken unless
            # a policy was configured, so the default request path is
            # byte-for-byte the policy-free controller.
            self.env.process(self._run_retry(request, slices, completion))
        elif len(slices) == 1:
            # Fast path for the overwhelmingly common case (JBOD,
            # concatenation, unstriped RAID-0 accesses): one physical
            # slice needs no coordinating process or AllOf barrier — a
            # completion callback on the drive event finishes the
            # logical request at the same simulated instant.
            piece = slices[0]
            physical = request.clone_slice(
                piece.lba,
                piece.size,
                piece.is_read,
                self.env._now,
                piece.disk,
            )
            self.drives[piece.disk].submit(physical).callbacks.append(
                lambda event: self._finish_single(
                    request, physical, completion
                )
            )
        else:
            self.env.process(self._run(request, slices, completion))
        return completion

    def _finish_single(
        self,
        request: IORequest,
        physical: IORequest,
        completion: Event,
    ) -> None:
        """Complete a one-slice logical request from its physical twin."""
        if completion._ok is not None:  # ``triggered`` sans property frame
            # The logical request was already failed (member loss on a
            # non-redundant layout) while the physical slice was still
            # in flight; the late slice completion is a no-op.
            return
        request.completion_time = self.env._now
        if request.start_service is None:
            request.start_service = request.arrival_time
        request.seek_time = physical.seek_time
        request.rotational_latency = physical.rotational_latency
        request.transfer_time = physical.transfer_time
        request.cache_hit = physical.cache_hit
        request.arm_id = physical.arm_id
        request.media_error = physical.media_error
        request.retries += physical.retries
        # The slice's measurements are copied out and the drive has
        # dropped it from every structure; recycle the shell so the
        # next clone_slice reuses it instead of allocating.
        release_request(physical)
        self.requests_completed += 1
        self._outstanding.pop(request.request_id, None)
        if self.tracer.enabled:
            self._record_logical_span(request, slices=1, phases=1)
        # Event.succeed inlined (the ``_ok`` guard above already
        # established the event is untriggered); see engine.Event for
        # the canonical body, including the calendar push.
        completion._ok = True
        completion._value = request
        env = self.env
        env._eid += 1
        calendar = env._calendar
        if calendar is not None and calendar._cursor > calendar._nbuckets:
            current = calendar._current
            insort(current, (-env._now, -1, -env._eid, completion))
            if len(current) > calendar._spill_limit:
                calendar._rest += len(current)
                calendar._overflow.extend(current)
                del current[:]
                calendar._reseed()
        else:
            env._queue.push(env._now, 1, env._eid, completion)
        for callback in self.on_complete:
            callback(request)

    def _record_logical_span(
        self, request: IORequest, slices: int, phases: int
    ) -> None:
        """Envelope span for one completed logical request."""
        self.tracer.span(
            "request",
            "array",
            request.arrival_time,
            self.env.now - request.arrival_time,
            (self.label, "requests"),
            args={
                "req": request.request_id,
                "rw": "R" if request.is_read else "W",
                "slices": slices,
                "phases": phases,
                "degraded": self._failed_disk is not None,
            },
        )

    def _map(self, request: IORequest) -> List[Slice]:
        if self._failed_disk is not None:
            from repro.raid.layout import Raid5Layout, degraded_raid5_map

            if isinstance(self.layout, Raid5Layout):
                slices = degraded_raid5_map(
                    self.layout,
                    request.lba,
                    request.size,
                    request.is_read,
                    self._failed_disk,
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "degraded-map",
                        self.env.now,
                        (self.label, "requests"),
                        args={
                            "req": request.request_id,
                            "failed_disk": self._failed_disk,
                            "slices": len(slices),
                        },
                    )
                    self.tracer.telemetry.counter(
                        "array.degraded_requests"
                    ).inc()
                return slices
            raise RuntimeError(
                f"{self.label}: drive {self._failed_disk} failed and the "
                f"layout {type(self.layout).__name__} has no redundancy"
            )
        return self.layout.map_request(
            request.lba, request.size, request.is_read, request.source_disk
        )

    # -- degraded mode and rebuild (RAID-5) --------------------------------
    @property
    def failed_disk(self) -> Optional[int]:
        return self._failed_disk

    def fail_drive(self, index: int) -> None:
        """Mark one member failed; subsequent I/O runs degraded.

        Only redundant layouts (RAID-5) can continue; a second failure
        is unrecoverable and rejected.
        """
        if not 0 <= index < len(self.drives):
            raise ValueError(
                f"index {index} out of range [0, {len(self.drives)})"
            )
        if self._failed_disk is not None:
            raise RuntimeError(
                "array already degraded: a second failure loses data"
            )
        self._failed_disk = index
        self.drive_failures += 1
        self.degraded_since = self.env.now
        if self.tracer.enabled:
            self.tracer.instant(
                "drive-failure",
                self.env.now,
                (self.label, "faults"),
                args={"drive": index, "outstanding": len(self._outstanding)},
            )
            self.tracer.telemetry.counter("array.drive_failures").inc()
        from repro.raid.layout import Raid5Layout

        if not isinstance(self.layout, Raid5Layout):
            self._abort_outstanding(index)

    def _abort_outstanding(self, index: int) -> None:
        """Deterministically fail every in-flight logical request.

        Without redundancy the data on the failed member is gone *now*;
        waiting for later submits to trip over ``_map`` would leave the
        in-flight requests hanging forever (their drive events resolve,
        but the data they carry is unrecoverable).  Each completion
        event fails with :class:`DataLossError` at the failure instant;
        the events are marked defused so fire-and-forget submitters
        don't crash the engine, while processes waiting on them get the
        exception thrown in as usual.
        """
        aborted = [
            (request_id, event)
            for request_id, event in self._outstanding.items()
            if not event.triggered
        ]
        self._outstanding.clear()
        for request_id, completion in aborted:
            completion.fail(DataLossError(
                f"{self.label}: drive {index} failed with no redundancy "
                f"(request {request_id} lost)"
            ))
            completion.defused = True
        self.aborted_requests += len(aborted)
        if self.tracer.enabled and aborted:
            self.tracer.telemetry.counter(
                "array.aborted_requests"
            ).inc(len(aborted))

    def degraded_time_ms(self, now: Optional[float] = None) -> float:
        """Total degraded-mode residency up to ``now`` (default: current
        simulated time), including an open degradation."""
        total = self.degraded_ms
        if self.degraded_since is not None:
            at = self.env.now if now is None else now
            total += max(0.0, at - self.degraded_since)
        return total

    @property
    def rebuild_window_ms(self) -> Optional[float]:
        """Duration of the last completed rebuild, if any."""
        if self.rebuild_started_ms is None or self.rebuild_finished_ms is None:
            return None
        return self.rebuild_finished_ms - self.rebuild_started_ms

    def rebuild(self, replacement: ConventionalDrive):
        """Rebuild the failed member onto ``replacement``.

        Returns the simulation process; yield it (or run the
        environment) to completion.  The rebuild streams row by row:
        read the row extent from every survivor, reconstruct, write to
        the replacement.  On completion the replacement takes the
        failed member's slot and the array leaves degraded mode.
        """
        from repro.raid.layout import Raid5Layout

        if self._failed_disk is None:
            raise RuntimeError("no failed drive to rebuild")
        if not isinstance(self.layout, Raid5Layout):
            raise RuntimeError("rebuild requires a RAID-5 layout")
        if self._rebuild_active:
            raise RuntimeError(
                f"{self.label}: rebuild already in progress "
                f"(progress {self.rebuild_progress:.0%})"
            )
        self._rebuild_active = True
        self.rebuild_started_ms = self.env.now
        self.rebuild_finished_ms = None
        if self.tracer.enabled:
            self.tracer.instant(
                "rebuild-start",
                self.env.now,
                (self.label, "rebuild"),
                args={"failed_disk": self._failed_disk},
            )
            self.tracer.telemetry.counter("rebuild.started").inc()
        return self.env.process(self._rebuild_wrapper(replacement))

    def _rebuild_wrapper(self, replacement: ConventionalDrive):
        # try/finally so an interrupted or crashed rebuild releases the
        # guard instead of wedging the array in "rebuild in progress".
        try:
            yield from self._rebuild_process(replacement)
        finally:
            self._rebuild_active = False

    def _rebuild_process(self, replacement: ConventionalDrive):
        layout = self.layout
        failed = self._failed_disk
        unit = layout.stripe_unit
        rows = layout.disk_capacity // unit
        self.rebuild_progress = 0.0
        tracer = self.tracer
        for row in range(rows):
            row_start = self.env.now
            physical = row * unit
            reads = []
            for member, drive in enumerate(self.drives):
                if member == failed:
                    continue
                reads.append(
                    drive.submit(
                        IORequest(
                            lba=physical,
                            size=unit,
                            is_read=True,
                            arrival_time=self.env.now,
                        )
                    )
                )
            yield self.env.all_of(reads)
            reconstruct_done = self.env.now
            write = replacement.submit(
                IORequest(
                    lba=physical,
                    size=unit,
                    is_read=False,
                    arrival_time=self.env.now,
                )
            )
            yield write
            self.rebuild_progress = (row + 1) / rows
            if tracer.enabled:
                track = (self.label, "rebuild")
                tracer.span(
                    "reconstruct",
                    "rebuild",
                    row_start,
                    reconstruct_done - row_start,
                    track,
                    args={"row": row},
                )
                tracer.span(
                    "rebuild-write",
                    "rebuild",
                    reconstruct_done,
                    self.env.now - reconstruct_done,
                    track,
                    args={"row": row, "progress": self.rebuild_progress},
                )
                tracer.telemetry.counter("rebuild.rows").inc()
                tracer.telemetry.gauge("rebuild.progress").set(
                    self.rebuild_progress
                )
        self.drives[failed] = replacement
        self._failed_disk = None
        self.rebuild_finished_ms = self.env.now
        if self.degraded_since is not None:
            self.degraded_ms += self.env.now - self.degraded_since
            self.degraded_since = None
        if tracer.enabled:
            tracer.instant(
                "rebuild-complete",
                self.env.now,
                (self.label, "rebuild"),
                args={
                    "rows": rows,
                    "window_ms": self.rebuild_window_ms,
                },
            )
            tracer.telemetry.gauge("array.degraded_ms").set(self.degraded_ms)

    def _run(self, request: IORequest, slices: List[Slice], completion: Event):
        phases = sorted({piece.phase for piece in slices})
        last_done: Optional[IORequest] = None
        for phase in phases:
            events = []
            for piece in slices:
                if piece.phase != phase:
                    continue
                physical = request.clone_slice(
                    piece.lba,
                    piece.size,
                    piece.is_read,
                    self.env.now,
                    piece.disk,
                )
                events.append(self.drives[piece.disk].submit(physical))
            if events:
                result = yield self.env.all_of(events)
                finished = [result[event] for event in result.events]
                last_done = max(
                    finished, key=lambda r: r.completion_time
                )
        if completion.triggered:
            # Aborted mid-flight by a member failure on a
            # non-redundant layout; nothing left to complete.
            return
        request.completion_time = self.env.now
        if request.start_service is None:
            request.start_service = request.arrival_time
        if last_done is not None:
            request.seek_time = last_done.seek_time
            request.rotational_latency = last_done.rotational_latency
            request.transfer_time = last_done.transfer_time
            request.cache_hit = last_done.cache_hit
            request.arm_id = last_done.arm_id
            request.media_error = last_done.media_error
            request.retries += last_done.retries
        self.requests_completed += 1
        self._outstanding.pop(request.request_id, None)
        if self.tracer.enabled:
            self._record_logical_span(
                request, slices=len(slices), phases=len(phases)
            )
        completion.succeed(request)
        for callback in self.on_complete:
            callback(request)

    # -- retry-policy request path ------------------------------------------
    def _run_retry(
        self, request: IORequest, slices: List[Slice], completion: Event
    ):
        """Coordinating process used when a :class:`RetryPolicy` is set.

        Identical phase structure to :meth:`_run`, but each slice runs
        through :meth:`_slice_attempts`, which resubmits on unrecovered
        media errors and accounts per-attempt deadline misses.
        """
        phases = sorted({piece.phase for piece in slices})
        last_done: Optional[IORequest] = None
        any_media_error = False
        for phase in phases:
            attempts = [
                self.env.process(self._slice_attempts(request, piece))
                for piece in slices
                if piece.phase == phase
            ]
            if attempts:
                result = yield self.env.all_of(attempts)
                finished = [result[event] for event in result.events]
                any_media_error = any_media_error or any(
                    r.media_error for r in finished
                )
                last_done = max(
                    finished, key=lambda r: r.completion_time
                )
        if completion.triggered:
            return
        request.completion_time = self.env.now
        if request.start_service is None:
            request.start_service = request.arrival_time
        if last_done is not None:
            request.seek_time = last_done.seek_time
            request.rotational_latency = last_done.rotational_latency
            request.transfer_time = last_done.transfer_time
            request.cache_hit = last_done.cache_hit
            request.arm_id = last_done.arm_id
        if any_media_error:
            request.media_error = True
            self.unrecovered_requests += 1
            if self.tracer.enabled:
                self.tracer.telemetry.counter(
                    "array.unrecovered_requests"
                ).inc()
        self.requests_completed += 1
        self._outstanding.pop(request.request_id, None)
        if self.tracer.enabled:
            self._record_logical_span(
                request, slices=len(slices), phases=len(phases)
            )
        completion.succeed(request)
        for callback in self.on_complete:
            callback(request)

    def _slice_attempts(self, request: IORequest, piece: Slice):
        """Issue one slice, retrying unrecovered media errors.

        Returns the physical request of the final attempt.  A media
        access cannot be cancelled mid-revolution, so a deadline miss
        is *recorded* (firmware-command-timeout style) while the slice
        is still awaited — response times stay physical and the miss
        count feeds the reliability report.
        """
        policy = self.retry_policy
        attempt = 1
        while True:
            physical = request.clone(
                lba=piece.lba,
                size=piece.size,
                is_read=piece.is_read,
                arrival_time=self.env.now,
                source_disk=piece.disk,
            )
            event = self.drives[piece.disk].submit(physical)
            if policy.timeout_ms is not None:
                deadline = self.env.timeout(policy.timeout_ms)
                outcome = yield self.env.any_of([event, deadline])
                if event not in outcome:
                    self.deadline_misses += 1
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "deadline-miss",
                            self.env.now,
                            (self.label, "faults"),
                            args={
                                "req": request.request_id,
                                "disk": piece.disk,
                                "attempt": attempt,
                                "timeout_ms": policy.timeout_ms,
                            },
                        )
                        self.tracer.telemetry.counter(
                            "array.deadline_misses"
                        ).inc()
                    yield event
            else:
                yield event
            request.retries += physical.retries
            if not physical.media_error or attempt >= policy.max_attempts:
                return physical
            attempt += 1
            self.slice_retries += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "slice-retry",
                    self.env.now,
                    (self.label, "faults"),
                    args={
                        "req": request.request_id,
                        "disk": piece.disk,
                        "attempt": attempt,
                    },
                )
                self.tracer.telemetry.counter("array.slice_retries").inc()
            if policy.backoff_ms > 0.0:
                yield self.env.timeout(policy.backoff_ms * (attempt - 1))

    # -- aggregate statistics ---------------------------------------------------
    def total_sectors_transferred(self) -> int:
        return sum(drive.stats.sectors_transferred for drive in self.drives)

    def total_busy_ms(self) -> float:
        return sum(drive.stats.busy_ms for drive in self.drives)

    def stats_by_drive(self) -> List[dict]:
        return [
            {
                "label": drive.label,
                "requests": drive.stats.requests_completed,
                "seek_ms": drive.stats.seek_ms,
                "rotational_ms": drive.stats.rotational_latency_ms,
                "transfer_ms": drive.stats.transfer_ms,
                "cache_hits": drive.stats.cache_hits,
            }
            for drive in self.drives
        ]
