"""The array controller: logical requests in, per-drive requests out.

A :class:`DiskArray` owns a set of member drives and a
:class:`~repro.raid.layout.Layout`.  Each submitted logical request is
translated into physical slices, issued to the member drives (phase by
phase, for RAID-5 read-modify-write), and completed when the last slice
finishes.  The logical request's measurement fields are stamped from
the slice that finished last, so response-time metrics reflect the
critical path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.disk.drive import ConventionalDrive
from repro.disk.request import IORequest
from repro.obs.tracer import tracer_for
from repro.raid.layout import Layout, Slice
from repro.sim.engine import Environment, Event

__all__ = ["DiskArray"]


class DiskArray:
    """A storage system composed of member drives behind one layout.

    Parameters
    ----------
    env:
        Simulation environment shared with the member drives.
    drives:
        Member drives, in layout order.  Any object with the drive
        interface (``submit``, ``stats``, ``geometry``) works, so
        arrays of :class:`~repro.core.parallel_disk.ParallelDisk` are
        built exactly the same way (§7.3).
    layout:
        Address translation; its ``disk_count`` must match.
    """

    def __init__(
        self,
        env: Environment,
        drives: Sequence[ConventionalDrive],
        layout: Layout,
        label: Optional[str] = None,
    ):
        if not drives:
            raise ValueError("array needs at least one drive")
        if layout.disk_count != len(drives):
            raise ValueError(
                f"layout expects {layout.disk_count} drives, got {len(drives)}"
            )
        self.env = env
        self.drives: List[ConventionalDrive] = list(drives)
        self.layout = layout
        self.label = label or f"array[{len(drives)}x{drives[0].label}]"
        self.requests_completed = 0
        #: Observability (resolved like the drives: ``env.tracer`` or
        #: the ambient tracer).  The array records logical-request
        #: envelopes, slice fan-out, degraded mapping and rebuild rows.
        self.tracer = tracer_for(env)
        #: Callbacks invoked with each completed *logical* request.
        self.on_complete: List[Callable[[IORequest], None]] = []
        self._outstanding: Dict[int, Event] = {}
        self._failed_disk: Optional[int] = None
        #: Fraction of a RAID-5 rebuild completed (set by rebuild()).
        self.rebuild_progress: float = 0.0

    # -- drive-like interface -------------------------------------------------
    @property
    def disk_count(self) -> int:
        return len(self.drives)

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def capacity_sectors(self) -> int:
        return self.layout.capacity_sectors()

    def submit(self, request: IORequest) -> Event:
        """Issue a logical request; returns its completion event."""
        slices = self._map(request)
        completion = self.env.event()
        self._outstanding[request.request_id] = completion
        if len(slices) == 1:
            # Fast path for the overwhelmingly common case (JBOD,
            # concatenation, unstriped RAID-0 accesses): one physical
            # slice needs no coordinating process or AllOf barrier — a
            # completion callback on the drive event finishes the
            # logical request at the same simulated instant.
            piece = slices[0]
            physical = request.clone(
                lba=piece.lba,
                size=piece.size,
                is_read=piece.is_read,
                arrival_time=self.env.now,
                source_disk=piece.disk,
            )
            self.drives[piece.disk].submit(physical).callbacks.append(
                lambda event: self._finish_single(
                    request, physical, completion
                )
            )
        else:
            self.env.process(self._run(request, slices, completion))
        return completion

    def _finish_single(
        self,
        request: IORequest,
        physical: IORequest,
        completion: Event,
    ) -> None:
        """Complete a one-slice logical request from its physical twin."""
        request.completion_time = self.env.now
        if request.start_service is None:
            request.start_service = request.arrival_time
        request.seek_time = physical.seek_time
        request.rotational_latency = physical.rotational_latency
        request.transfer_time = physical.transfer_time
        request.cache_hit = physical.cache_hit
        request.arm_id = physical.arm_id
        self.requests_completed += 1
        self._outstanding.pop(request.request_id, None)
        if self.tracer.enabled:
            self._record_logical_span(request, slices=1, phases=1)
        completion.succeed(request)
        for callback in self.on_complete:
            callback(request)

    def _record_logical_span(
        self, request: IORequest, slices: int, phases: int
    ) -> None:
        """Envelope span for one completed logical request."""
        self.tracer.span(
            "request",
            "array",
            request.arrival_time,
            self.env.now - request.arrival_time,
            (self.label, "requests"),
            args={
                "req": request.request_id,
                "rw": "R" if request.is_read else "W",
                "slices": slices,
                "phases": phases,
                "degraded": self._failed_disk is not None,
            },
        )

    def _map(self, request: IORequest) -> List[Slice]:
        if self._failed_disk is not None:
            from repro.raid.layout import Raid5Layout, degraded_raid5_map

            if isinstance(self.layout, Raid5Layout):
                slices = degraded_raid5_map(
                    self.layout,
                    request.lba,
                    request.size,
                    request.is_read,
                    self._failed_disk,
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "degraded-map",
                        self.env.now,
                        (self.label, "requests"),
                        args={
                            "req": request.request_id,
                            "failed_disk": self._failed_disk,
                            "slices": len(slices),
                        },
                    )
                    self.tracer.telemetry.counter(
                        "array.degraded_requests"
                    ).inc()
                return slices
            raise RuntimeError(
                f"{self.label}: drive {self._failed_disk} failed and the "
                f"layout {type(self.layout).__name__} has no redundancy"
            )
        return self.layout.map_request(
            request.lba, request.size, request.is_read, request.source_disk
        )

    # -- degraded mode and rebuild (RAID-5) --------------------------------
    @property
    def failed_disk(self) -> Optional[int]:
        return self._failed_disk

    def fail_drive(self, index: int) -> None:
        """Mark one member failed; subsequent I/O runs degraded.

        Only redundant layouts (RAID-5) can continue; a second failure
        is unrecoverable and rejected.
        """
        if not 0 <= index < len(self.drives):
            raise ValueError(
                f"index {index} out of range [0, {len(self.drives)})"
            )
        if self._failed_disk is not None:
            raise RuntimeError(
                "array already degraded: a second failure loses data"
            )
        self._failed_disk = index

    def rebuild(self, replacement: ConventionalDrive):
        """Rebuild the failed member onto ``replacement``.

        Returns the simulation process; yield it (or run the
        environment) to completion.  The rebuild streams row by row:
        read the row extent from every survivor, reconstruct, write to
        the replacement.  On completion the replacement takes the
        failed member's slot and the array leaves degraded mode.
        """
        from repro.raid.layout import Raid5Layout

        if self._failed_disk is None:
            raise RuntimeError("no failed drive to rebuild")
        if not isinstance(self.layout, Raid5Layout):
            raise RuntimeError("rebuild requires a RAID-5 layout")
        return self.env.process(self._rebuild_process(replacement))

    def _rebuild_process(self, replacement: ConventionalDrive):
        layout = self.layout
        failed = self._failed_disk
        unit = layout.stripe_unit
        rows = layout.disk_capacity // unit
        self.rebuild_progress = 0.0
        tracer = self.tracer
        for row in range(rows):
            row_start = self.env.now
            physical = row * unit
            reads = []
            for member, drive in enumerate(self.drives):
                if member == failed:
                    continue
                reads.append(
                    drive.submit(
                        IORequest(
                            lba=physical,
                            size=unit,
                            is_read=True,
                            arrival_time=self.env.now,
                        )
                    )
                )
            yield self.env.all_of(reads)
            reconstruct_done = self.env.now
            write = replacement.submit(
                IORequest(
                    lba=physical,
                    size=unit,
                    is_read=False,
                    arrival_time=self.env.now,
                )
            )
            yield write
            self.rebuild_progress = (row + 1) / rows
            if tracer.enabled:
                track = (self.label, "rebuild")
                tracer.span(
                    "reconstruct",
                    "rebuild",
                    row_start,
                    reconstruct_done - row_start,
                    track,
                    args={"row": row},
                )
                tracer.span(
                    "rebuild-write",
                    "rebuild",
                    reconstruct_done,
                    self.env.now - reconstruct_done,
                    track,
                    args={"row": row, "progress": self.rebuild_progress},
                )
                tracer.telemetry.counter("rebuild.rows").inc()
                tracer.telemetry.gauge("rebuild.progress").set(
                    self.rebuild_progress
                )
        self.drives[failed] = replacement
        self._failed_disk = None

    def _run(self, request: IORequest, slices: List[Slice], completion: Event):
        phases = sorted({piece.phase for piece in slices})
        last_done: Optional[IORequest] = None
        for phase in phases:
            events = []
            for piece in slices:
                if piece.phase != phase:
                    continue
                physical = request.clone(
                    lba=piece.lba,
                    size=piece.size,
                    is_read=piece.is_read,
                    arrival_time=self.env.now,
                    source_disk=piece.disk,
                )
                events.append(self.drives[piece.disk].submit(physical))
            if events:
                result = yield self.env.all_of(events)
                finished = [result[event] for event in result.events]
                last_done = max(
                    finished, key=lambda r: r.completion_time
                )
        request.completion_time = self.env.now
        if request.start_service is None:
            request.start_service = request.arrival_time
        if last_done is not None:
            request.seek_time = last_done.seek_time
            request.rotational_latency = last_done.rotational_latency
            request.transfer_time = last_done.transfer_time
            request.cache_hit = last_done.cache_hit
            request.arm_id = last_done.arm_id
        self.requests_completed += 1
        self._outstanding.pop(request.request_id, None)
        if self.tracer.enabled:
            self._record_logical_span(
                request, slices=len(slices), phases=len(phases)
            )
        completion.succeed(request)
        for callback in self.on_complete:
            callback(request)

    # -- aggregate statistics ---------------------------------------------------
    def total_sectors_transferred(self) -> int:
        return sum(drive.stats.sectors_transferred for drive in self.drives)

    def total_busy_ms(self) -> float:
        return sum(drive.stats.busy_ms for drive in self.drives)

    def stats_by_drive(self) -> List[dict]:
        return [
            {
                "label": drive.label,
                "requests": drive.stats.requests_completed,
                "seek_ms": drive.stats.seek_ms,
                "rotational_ms": drive.stats.rotational_latency_ms,
                "transfer_ms": drive.stats.transfer_ms,
                "cache_hits": drive.stats.cache_hits,
            }
            for drive in self.drives
        ]
