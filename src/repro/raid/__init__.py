"""RAID / multi-disk array substrate.

Provides the storage-system layer above individual drives:

* :mod:`repro.raid.layout` — address-translation layouts: JBOD routing
  by source disk (the MD arrays), sequential concatenation (the paper's
  MD→HC-SD data layout, §7.1), and RAID-0 striping (the synthetic-array
  study, §7.3).  RAID-5 with rotating parity is included for
  completeness.
* :mod:`repro.raid.array` — the array controller that fans a logical
  request out to per-drive physical requests and completes it when all
  of them finish.
"""

from repro.raid.layout import (
    ConcatLayout,
    InterleavedConcatLayout,
    JBODLayout,
    Layout,
    Raid0Layout,
    Raid1Layout,
    Raid10Layout,
    Raid5Layout,
    Slice,
    degraded_raid5_map,
)
from repro.raid.array import DiskArray
from repro.raid.maid import MaidArray

__all__ = [
    "ConcatLayout",
    "DiskArray",
    "InterleavedConcatLayout",
    "JBODLayout",
    "Layout",
    "MaidArray",
    "Raid0Layout",
    "Raid1Layout",
    "Raid10Layout",
    "Raid5Layout",
    "Slice",
    "degraded_raid5_map",
]
