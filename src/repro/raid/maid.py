"""MAID: massive arrays of idle disks (Colarelli & Grunwald, SC '02).

The third related-work energy approach the paper cites (§5): for
archival arrays, keep most members spun down and pay a spin-up delay
on access.  MAID trades latency for power on cold data — the opposite
end of the spectrum from intra-disk parallelism, which keeps one hot
drive fast.

:class:`MaidArray` wraps member drives with per-drive spin state:

* a member idle longer than ``spin_down_idle_ms`` spins down
  (``standby_watts`` instead of full idle power);
* a request to a spun-down member stalls for ``spin_up_ms`` while the
  spindle comes back up;
* per-drive spun-down residency feeds :meth:`average_power_watts`.

The model deliberately omits MAID's optional cache drives: the
comparison of interest here is spin-down policy vs intra-disk
parallelism on the same member set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.disk.drive import ConventionalDrive
from repro.disk.request import IORequest
from repro.power.accounting import drive_power
from repro.raid.array import DiskArray
from repro.raid.layout import Layout
from repro.sim.engine import Environment, Event

__all__ = ["MaidArray"]


class _SpinState:
    """Spin bookkeeping for one member drive."""

    __slots__ = (
        "spun_down",
        "last_activity",
        "spun_down_ms",
        "down_since",
        "spin_ups",
        "ready_event",
    )

    def __init__(self):
        self.spun_down = False
        self.last_activity = 0.0
        self.spun_down_ms = 0.0
        self.down_since = 0.0
        self.spin_ups = 0
        self.ready_event: Optional[Event] = None


class MaidArray(DiskArray):
    """A disk array with MAID-style per-member spin-down.

    Parameters
    ----------
    spin_down_idle_ms:
        Idle time after which a member spins down.
    spin_up_ms:
        Delay a request pays when it finds its member spun down.
    standby_watts:
        Power drawn by a spun-down member (electronics only).
    """

    def __init__(
        self,
        env: Environment,
        drives: Sequence[ConventionalDrive],
        layout: Layout,
        spin_down_idle_ms: float = 2000.0,
        spin_up_ms: float = 6000.0,
        standby_watts: float = 1.0,
        label: Optional[str] = None,
    ):
        if spin_down_idle_ms <= 0:
            raise ValueError("spin_down_idle_ms must be positive")
        if spin_up_ms < 0:
            raise ValueError("spin_up_ms must be non-negative")
        if standby_watts < 0:
            raise ValueError("standby_watts must be non-negative")
        super().__init__(env, drives, layout, label=label or "maid")
        self.spin_down_idle_ms = spin_down_idle_ms
        self.spin_up_ms = spin_up_ms
        self.standby_watts = standby_watts
        self._spin: Dict[int, _SpinState] = {
            index: _SpinState() for index in range(len(drives))
        }
        env.process(self._spin_controller())
        self._controller_wakeup: Optional[Event] = None

    # -- spin management -----------------------------------------------------
    def spun_down_members(self) -> List[int]:
        return [
            index
            for index, state in self._spin.items()
            if state.spun_down
        ]

    def total_spin_ups(self) -> int:
        return sum(state.spin_ups for state in self._spin.values())

    def _spin_controller(self):
        """Spin idle members down; parks when everything is down."""
        while True:
            now = self.env.now
            all_down = True
            for index, state in self._spin.items():
                if state.spun_down:
                    continue
                if state.ready_event is not None:
                    # A wake is in flight; never yank it back down.
                    all_down = False
                    continue
                drive = self.drives[index]
                idle_for = now - max(
                    state.last_activity, 0.0
                )
                if drive.outstanding == 0 and (
                    idle_for >= self.spin_down_idle_ms
                ):
                    state.spun_down = True
                    state.down_since = now
                else:
                    all_down = False
            if all_down and self.outstanding == 0:
                self._controller_wakeup = self.env.event()
                yield self._controller_wakeup
                self._controller_wakeup = None
            else:
                yield self.env.timeout(self.spin_down_idle_ms / 4.0)

    def _wake_member(self, index: int):
        """Spin a member up; concurrent wakers share one spin-up."""
        state = self._spin[index]
        if not state.spun_down:
            return
        if state.ready_event is None:
            state.ready_event = self.env.event()
            yield self.env.timeout(self.spin_up_ms)
            state.spun_down_ms += self.env.now - state.down_since
            state.spun_down = False
            state.spin_ups += 1
            # Stamp activity now: the spin controller may tick at this
            # exact instant and must not see a stale idle time.
            state.last_activity = self.env.now
            ready, state.ready_event = state.ready_event, None
            ready.succeed()
        else:
            yield state.ready_event

    def submit(self, request: IORequest) -> Event:
        if self._controller_wakeup is not None and (
            not self._controller_wakeup.triggered
        ):
            self._controller_wakeup.succeed()
        slices = self._map(request)
        completion = self.env.event()
        self._outstanding[request.request_id] = completion
        self.env.process(self._run_with_spinup(request, slices, completion))
        return completion

    def _run_with_spinup(self, request, slices, completion):
        # Wake every member this request touches, in parallel.
        members = sorted({piece.disk for piece in slices})
        wakes = [
            self.env.process(self._wake_member(index))
            for index in members
            if self._spin[index].spun_down
            or self._spin[index].ready_event is not None
        ]
        if wakes:
            yield self.env.all_of(wakes)
        for index in members:
            self._spin[index].last_activity = self.env.now
        yield from self._run(request, slices, completion)
        for index in members:
            self._spin[index].last_activity = self.env.now

    # -- power ---------------------------------------------------------------
    def average_power_watts(self, elapsed_ms: Optional[float] = None) -> float:
        """Residency-weighted array power, counting standby savings."""
        elapsed = elapsed_ms if elapsed_ms is not None else self.env.now
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed}")
        total = 0.0
        for index, drive in enumerate(self.drives):
            state = self._spin[index]
            down_ms = state.spun_down_ms
            if state.spun_down:
                down_ms += elapsed - state.down_since
            down_ms = min(down_ms, elapsed)
            spinning_ms = elapsed - down_ms
            spinning_power = drive_power(drive, elapsed).total_watts
            total += (
                spinning_power * (spinning_ms / elapsed)
                + self.standby_watts * (down_ms / elapsed)
            )
        return total
