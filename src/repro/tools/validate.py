"""Analytic cross-validation: the simulator vs M/G/1 queueing theory.

A single FCFS drive fed Poisson arrivals is approximately an M/G/1
queue (approximately, because successive service times are weakly
correlated through the head position).  The Pollaczek–Khinchine
formula then predicts the mean response time from the arrival rate and
the first two moments of the service time:

    E[R] = E[S] + λ·E[S²] / (2·(1 − ρ)),   ρ = λ·E[S]

:func:`validate_against_mg1` measures the service moments at very
light load, predicts the loaded response time, simulates it, and
reports both — the package's sanity check that its queueing behaviour
is trustworthy, used by the test suite with a tolerance band.

:func:`validate_fault_plan_file` is the input-side check: it
schema-validates a fault-plan JSON file (``repro faults --validate``
and the CI smoke job call it) without running any simulation.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.disk.drive import ConventionalDrive
from repro.disk.request import IORequest
from repro.disk.scheduler import FCFSScheduler
from repro.disk.specs import DriveSpec
from repro.sim.engine import Environment

__all__ = [
    "Mg1Validation",
    "mg1_mean_response_ms",
    "validate_against_mg1",
    "validate_chaos_plan_file",
    "validate_fault_plan_file",
]


def validate_fault_plan_file(path: str) -> List[str]:
    """Schema-check a fault-plan JSON file; returns problem strings.

    An empty list means the file parses and every event passes
    :func:`repro.faults.plan.validate_fault_plan`.  I/O and JSON
    errors are reported as problems rather than raised, so callers
    can present every failure mode uniformly.
    """
    from repro.faults.plan import validate_fault_plan

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        return [f"{path}: {error}"]
    except json.JSONDecodeError as error:
        return [f"{path}: invalid JSON: {error}"]
    return validate_fault_plan(payload)


def validate_chaos_plan_file(path: str) -> List[str]:
    """Schema-check a chaos-plan JSON file; returns problem strings.

    The serve-stack counterpart of :func:`validate_fault_plan_file`
    (``repro chaos --validate`` calls it): an empty list means the
    file parses and passes
    :func:`repro.chaos.plan.validate_chaos_plan`.
    """
    from repro.chaos.plan import validate_chaos_plan

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        return [f"{path}: {error}"]
    except json.JSONDecodeError as error:
        return [f"{path}: invalid JSON: {error}"]
    return validate_chaos_plan(payload)


def mg1_mean_response_ms(
    arrival_rate_per_ms: float,
    service_mean_ms: float,
    service_second_moment: float,
) -> float:
    """Pollaczek–Khinchine mean response time.

    Raises ``ValueError`` when the queue is unstable (ρ ≥ 1).
    """
    if arrival_rate_per_ms <= 0:
        raise ValueError(
            f"arrival rate must be positive, got {arrival_rate_per_ms}"
        )
    if service_mean_ms <= 0:
        raise ValueError(
            f"service mean must be positive, got {service_mean_ms}"
        )
    utilisation = arrival_rate_per_ms * service_mean_ms
    if utilisation >= 1.0:
        raise ValueError(
            f"unstable queue: utilisation {utilisation:.3f} >= 1"
        )
    waiting = (
        arrival_rate_per_ms
        * service_second_moment
        / (2.0 * (1.0 - utilisation))
    )
    return service_mean_ms + waiting


@dataclass
class Mg1Validation:
    """Predicted vs simulated mean response for one operating point."""

    interarrival_ms: float
    service_mean_ms: float
    service_second_moment: float
    utilisation: float
    predicted_mean_ms: float
    simulated_mean_ms: float

    @property
    def relative_error(self) -> float:
        return (
            abs(self.simulated_mean_ms - self.predicted_mean_ms)
            / self.predicted_mean_ms
        )


def _random_requests(
    drive: ConventionalDrive,
    count: int,
    interarrival_ms: float,
    rng: random.Random,
):
    limit = drive.geometry.total_sectors - 16
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(1.0 / interarrival_ms)
        yield IORequest(
            lba=rng.randrange(limit),
            size=8,
            is_read=False,
            arrival_time=clock,
        )


def _run(
    spec: DriveSpec, count: int, interarrival_ms: float, seed: int
):
    env = Environment()
    drive = ConventionalDrive(env, spec, scheduler=FCFSScheduler())
    done = []
    drive.on_complete.append(done.append)
    rng = random.Random(seed)
    requests = list(
        _random_requests(drive, count, interarrival_ms, rng)
    )

    def producer():
        for request in requests:
            delay = request.arrival_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            drive.submit(request)

    env.process(producer())
    env.run()
    return done


def validate_against_mg1(
    spec: DriveSpec,
    interarrival_ms: float,
    requests: int = 3000,
    calibration_requests: int = 1500,
    seed: int = 7,
) -> Mg1Validation:
    """Measure service moments, predict via P-K, simulate, compare.

    The calibration run uses arrivals ~50× slower than the target so
    every request is served in isolation (pure service time, no
    queueing).
    """
    calibration = _run(
        spec, calibration_requests, interarrival_ms * 50.0, seed
    )
    services = [request.service_time for request in calibration]
    mean = sum(services) / len(services)
    second = sum(s * s for s in services) / len(services)

    predicted = mg1_mean_response_ms(
        1.0 / interarrival_ms, mean, second
    )
    loaded = _run(spec, requests, interarrival_ms, seed + 1)
    simulated = sum(r.response_time for r in loaded) / len(loaded)
    return Mg1Validation(
        interarrival_ms=interarrival_ms,
        service_mean_ms=mean,
        service_second_moment=second,
        utilisation=mean / interarrival_ms,
        predicted_mean_ms=predicted,
        simulated_mean_ms=simulated,
    )
