"""Black-box drive characterisation (in the spirit of DIXtrac/Skippy).

Real disk-modelling projects extract drive parameters by issuing
carefully crafted request patterns and timing the responses.  This
module does the same against any simulated drive's ``submit``
interface — it never reads the drive's spec fields, only its geometry
for logical→physical addressing (which real tools obtain through SCSI
address-translation commands).

The extraction recipes:

* **Rotation period** — write the same sector back to back; each
  service after the first must wait almost exactly one revolution, so
  the period is the service-time gap.
* **Seek curve** — for each probe distance, position the head with a
  write at a base cylinder, then write at base+distance several times
  with fresh rotational phases; the *minimum* observed service time,
  less the known overheads, isolates the seek (rotational latency's
  minimum over trials approaches zero).
* **Zone bandwidth** — stream large sequential reads at several radial
  positions; media rate reveals each zone's sectors-per-track.

Tests verify the estimates land within tight tolerances of the spec
that generated the drive — closing the loop between the model and the
measurement methodology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.disk.drive import ConventionalDrive
from repro.disk.geometry import PhysicalAddress
from repro.disk.request import IORequest
from repro.disk.scheduler import FCFSScheduler
from repro.disk.specs import DriveSpec
from repro.sim.engine import Environment

__all__ = [
    "CharacterizationReport",
    "characterize_drive",
    "estimate_rotation_period_ms",
    "estimate_seek_curve",
    "estimate_zone_bandwidth",
]


@dataclass
class CharacterizationReport:
    """Everything the probes recovered about a drive."""

    rotation_period_ms: float
    rpm_estimate: float
    seek_curve: Dict[int, float]
    zone_bandwidth_mb_s: Dict[float, float]

    def summary(self) -> str:
        lines = [
            f"rotation period : {self.rotation_period_ms:.3f} ms "
            f"(~{self.rpm_estimate:.0f} RPM)",
            "seek curve      : "
            + ", ".join(
                f"d={distance}:{time:.2f}ms"
                for distance, time in sorted(self.seek_curve.items())
            ),
            "zone bandwidth  : "
            + ", ".join(
                f"{position:.0%}:{rate:.1f}MB/s"
                for position, rate in sorted(
                    self.zone_bandwidth_mb_s.items()
                )
            ),
        ]
        return "\n".join(lines)


def _fresh_drive(spec: DriveSpec) -> ConventionalDrive:
    env = Environment()
    return ConventionalDrive(env, spec, scheduler=FCFSScheduler())


def _timed_write(
    drive: ConventionalDrive, lba: int, size: int = 1
) -> float:
    """Submit one write and return its service time."""
    env = drive.env
    request = IORequest(
        lba=lba, size=size, is_read=False, arrival_time=env.now
    )
    drive.submit(request)
    env.run()
    return request.service_time


def estimate_rotation_period_ms(
    drive: ConventionalDrive, probes: int = 8
) -> float:
    """Recover the rotation period from same-sector write timing.

    After a write completes the head sits just past the sector, so an
    immediate rewrite waits (period − transfer − overhead).  Averaging
    several probes cancels the simulator's discrete-event jitter.
    """
    if probes < 2:
        raise ValueError(f"need at least 2 probes, got {probes}")
    lba = drive.geometry.total_sectors // 2
    _timed_write(drive, lba)  # position the head; random phase
    gaps = [_timed_write(drive, lba) for _ in range(probes)]
    mean_service = sum(gaps) / len(gaps)
    # service = overhead + 0 seek + (period - transfer - overhead
    #           rotation consumed) + transfer  ≈ period exactly.
    return mean_service


def estimate_seek_curve(
    drive: ConventionalDrive,
    distances: Sequence[int],
    trials: int = 12,
    seed: int = 20080621,
) -> Dict[int, float]:
    """Recover seek time per cylinder distance from timed probes.

    For each distance the probe alternates base → target writes; the
    minimum service time over the trials isolates the seek because the
    rotational-latency component's minimum approaches zero.  Target
    sectors are drawn at random — a fixed stride can alias with the
    platter's rotation lattice and never sample a small gap.  The
    residual bias is about ``period / (trials + 1)``.
    """
    if trials < 3:
        raise ValueError(f"need at least 3 trials, got {trials}")
    rng = random.Random(seed)
    geometry = drive.geometry
    overhead = _estimate_overhead(drive)
    curve: Dict[int, float] = {}
    base_cylinder = geometry.cylinders // 4
    for distance in distances:
        if distance <= 0:
            raise ValueError(f"distances must be positive, got {distance}")
        target_cylinder = base_cylinder + distance
        if target_cylinder >= geometry.cylinders:
            raise ValueError(
                f"distance {distance} exceeds the stroke from the probe "
                f"base (have {geometry.cylinders} cylinders)"
            )
        zone = geometry.zone_of_cylinder(base_cylinder)
        target_zone = geometry.zone_of_cylinder(target_cylinder)
        best = float("inf")
        for _ in range(trials):
            # Reposition at base; randomise sectors to randomise the
            # rotational phase of both writes.
            sector = rng.randrange(zone.sectors_per_track)
            _timed_write(
                drive,
                geometry.to_lba(
                    PhysicalAddress(base_cylinder, 0, sector)
                ),
            )
            target_sector = rng.randrange(target_zone.sectors_per_track)
            service = _timed_write(
                drive,
                geometry.to_lba(
                    PhysicalAddress(target_cylinder, 0, target_sector)
                ),
            )
            best = min(best, service)
        transfer = _single_sector_transfer_ms(drive, target_cylinder)
        curve[distance] = max(0.0, best - overhead - transfer)
    return curve


def estimate_zone_bandwidth(
    drive: ConventionalDrive,
    positions: Sequence[float] = (0.05, 0.5, 0.95),
    stream_sectors: int = 2048,
) -> Dict[float, float]:
    """Sequential media bandwidth (MB/s) at fractional radial positions."""
    rates: Dict[float, float] = {}
    total = drive.geometry.total_sectors
    for position in positions:
        if not 0.0 <= position < 1.0:
            raise ValueError(
                f"positions must be in [0, 1), got {position}"
            )
        lba = min(
            int(total * position), total - stream_sectors - 1
        )
        env = drive.env
        request = IORequest(
            lba=lba,
            size=stream_sectors,
            is_read=True,
            arrival_time=env.now,
        )
        drive.submit(request)
        env.run()
        rates[position] = (
            stream_sectors * 512 / (request.transfer_time / 1000.0)
        ) / 1_000_000
    return rates


def _estimate_overhead(drive: ConventionalDrive) -> float:
    """Per-request overhead from cache-hit timing (no mechanics)."""
    env = drive.env
    lba = 0
    warm = IORequest(lba=lba, size=1, is_read=True, arrival_time=env.now)
    drive.submit(warm)
    env.run()
    hit = IORequest(lba=lba, size=1, is_read=True, arrival_time=env.now)
    drive.submit(hit)
    env.run()
    if not hit.cache_hit:
        return 0.0
    return hit.service_time - hit.transfer_time


def _single_sector_transfer_ms(
    drive: ConventionalDrive, cylinder: int
) -> float:
    zone = drive.geometry.zone_of_cylinder(cylinder)
    return drive.spindle.transfer_time(1, zone.sectors_per_track)


def characterize_drive(
    spec: DriveSpec,
    seek_distances: Optional[Sequence[int]] = None,
) -> CharacterizationReport:
    """Run the full probe suite against a fresh drive built from ``spec``.

    A fresh drive (and environment) is used per probe family so the
    measurements do not interfere.
    """
    period = estimate_rotation_period_ms(_fresh_drive(spec))
    probe_drive = _fresh_drive(spec)
    if seek_distances is None:
        cylinders = probe_drive.geometry.cylinders
        seek_distances = [
            max(1, cylinders // 512),
            max(2, cylinders // 64),
            max(4, cylinders // 8),
            max(8, cylinders // 2),
        ]
    curve = estimate_seek_curve(probe_drive, seek_distances)
    bandwidth = estimate_zone_bandwidth(_fresh_drive(spec))
    return CharacterizationReport(
        rotation_period_ms=period,
        rpm_estimate=60000.0 / period,
        seek_curve=curve,
        zone_bandwidth_mb_s=bandwidth,
    )
