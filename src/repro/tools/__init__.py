"""Utility tooling around the simulator.

* :mod:`repro.tools.characterize` — DIXtrac-style black-box drive
  characterisation: recover a drive's rotation period, seek curve and
  zone bandwidth profile purely from timed I/O against its ``submit``
  interface.
* :mod:`repro.tools.validate` — analytic cross-checks of the simulator
  against M/G/1 queueing predictions.
* :mod:`repro.tools.bench` — the reproducible benchmark harness behind
  ``python -m repro bench``.
"""

from repro.tools.bench import format_bench, run_bench, write_bench
from repro.tools.characterize import (
    CharacterizationReport,
    characterize_drive,
    estimate_rotation_period_ms,
    estimate_seek_curve,
    estimate_zone_bandwidth,
)
from repro.tools.validate import (
    mg1_mean_response_ms,
    validate_against_mg1,
    validate_chaos_plan_file,
    validate_fault_plan_file,
)

__all__ = [
    "CharacterizationReport",
    "characterize_drive",
    "estimate_rotation_period_ms",
    "estimate_seek_curve",
    "estimate_zone_bandwidth",
    "format_bench",
    "mg1_mean_response_ms",
    "run_bench",
    "validate_against_mg1",
    "validate_chaos_plan_file",
    "validate_fault_plan_file",
    "write_bench",
]
