"""Reproducible benchmark harness for the simulator hot path.

``python -m repro bench`` times a fixed-seed reference workload — the
Figure 2 limit study (MD and HC-SD runs for every commercial workload)
— at one worker and at the requested worker count, and writes a
``BENCH_<date>.json`` snapshot with wall-clock, engine events/second
and the parallel speedup.  The workload is fully deterministic, so two
snapshots from the same machine and interpreter are directly
comparable, and the recorded figure digest doubles as a regression
check: serial and parallel runs must produce byte-identical figures.

The JSON schema (``repro-bench/6``)::

    {
      "schema": "repro-bench/6",
      "date": "2026-08-06",
      "python": "3.11.x ...",
      "cpu_count": 8,
      "requests": 6000,
      "repeats": 3,
      "workloads": ["financial", "websearch", "tpcc", "tpch"],
      "events": 123456,            # engine events per full pass
      "figures_sha256": "...",     # digest of the per-run figures
      "figures_identical": true,   # serial == parallel, bit for bit
      "workload_results": [        # serial pass, per workload
        {"workload": "financial", "events": ..., "wall_s": ...,
         "events_per_s": ...},
        ...
      ],
      "kernel": {                  # pure-engine microbenchmark
        "processes": 50, "timeouts": 2000, "events": ...,
        "wall_s": ..., "events_per_s": ...
      },
      "scheduler": {               # calendar vs heap head-to-head
        "processes": 50, "timeouts": 2000, "events": ...,
        "calendar": {"wall_s": ..., "events_per_s": ...},
        "heap": {"wall_s": ..., "events_per_s": ...},
        "calendar_speedup_vs_heap": ...   # heap wall / calendar wall
      },
      "results": [
        {"workers": 1, "wall_s": ..., "events_per_s": ...,
         "speedup_vs_serial": 1.0},
        {"workers": 4, "wall_s": ..., "events_per_s": ...,
         "speedup_vs_serial": ...}
      ],
      "shard_scaling": {           # sharded-kernel scaling curve
        "disks": 16, "interarrival_ms": 4.0, "requests": ...,
        "events": ...,             # serial engine events for the cell
        "figures_sha256": "...",   # digest of the serial cell figures
        "figures_identical": true, # every shard count reproduced it
        "results": [
          {"shards": 1, "wall_s": ..., "events_per_s": ...,
           "speedup_vs_serial": 1.0},
          {"shards": 2, "skipped": true, "reason": "...",
           "figures_identical": true},
          ...
        ]
      },
      "metrics_overhead": {       # live-metrics cost (non-gating)
        "workload": "websearch", "requests": ...,
        "events": ...,
        "off_events_per_s": ..., "on_events_per_s": ...,
        "overhead_fraction": ...,  # 1 - on/off (negative = noise)
        "figures_identical": true  # metered figures == unmetered
      }
    }

Schema history: v3 added the per-workload serial breakdown and the
engine-kernel microbenchmark (migrated v1/v2 snapshots carry an empty
``workload_results`` and a ``null`` kernel — the data cannot be
reconstructed from older runs).  v4 added the sharded-kernel scaling
curve — one 16-drive RAID-0 cell run at 1/2/4 engine shards — with
the same host-honesty rule as the worker sweep: shard counts above
``cpu_count`` (or on hosts without ``fork``) are never *timed*, but
every shard count that can run at all is still *executed* once so its
figure digest is checked against the serial cell (bit-identity is
host-independent; wall-clocks are not).  Migrated v1/v2/v3 snapshots
carry a ``null`` ``shard_scaling``.  v5 added the ``metrics_overhead``
cell — one serial workload pass timed with the live-metrics registry
off and on (:mod:`repro.obs.metrics`), recording the throughput cost
of metering and checking the metered figures are bit-identical.  The
cell is informational, never a gate: ``--check`` ignores it, because
the overhead of a few counter increments is far below shared-runner
noise.  Migrated v1-v4 snapshots carry a ``null`` ``metrics_overhead``.
v6 added the ``scheduler`` cell: the engine-kernel microbenchmark run
once under each pending-event scheduler kind (the default calendar
queue and the ``ENGINE_QUEUE=heap`` binary-heap fallback), recording
both throughputs and the calendar-over-heap speedup.  Both runs must
schedule the identical event count — the scheduler changes wall-clock,
never the event stream.  The cell is informational (non-gating), since
the ratio is host-dependent; migrated v1-v5 snapshots carry a ``null``
``scheduler``.

Worker counts above ``cpu_count`` are never timed: on an oversubscribed
host a "parallel" pass measures scheduler contention, not speedup (a
1-core machine once recorded workers=4 at 0.754× and made the executor
look like a slowdown).  The sweep caps the parallel configuration at
``cpu_count`` and appends a ``{"workers": N, "skipped": true, ...}``
entry documenting the request (schema bump 1 → 2).

Wall-clock per configuration is the *minimum* over ``repeats`` timed
passes — the standard estimator for the noise floor of a deterministic
workload.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.configs import (
    build_hcsd_system,
    build_md_system,
    build_raid0_system,
)
from repro.experiments.executor import Job, resolve_workers, sweep
from repro.experiments.runner import run_trace
from repro.metrics.report import format_table
from repro.sim.engine import Environment
from repro.sim.sharded import sharding_available
from repro.workloads.commercial import COMMERCIAL_WORKLOADS
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "format_bench",
    "load_bench",
    "migrate_bench",
    "run_bench",
    "run_kernel_bench",
    "run_metrics_overhead_bench",
    "run_scheduler_bench",
    "run_shard_bench",
    "validate_bench",
    "write_bench",
]

BENCH_SCHEMA = "repro-bench/6"
BENCH_SCHEMA_V5 = "repro-bench/5"
BENCH_SCHEMA_V4 = "repro-bench/4"
BENCH_SCHEMA_V3 = "repro-bench/3"
BENCH_SCHEMA_V2 = "repro-bench/2"
BENCH_SCHEMA_V1 = "repro-bench/1"

#: Keys every valid snapshot (any schema version) must carry.
REQUIRED_KEYS = (
    "schema",
    "date",
    "python",
    "platform",
    "cpu_count",
    "requests",
    "repeats",
    "workloads",
    "events",
    "figures_sha256",
    "figures_identical",
    "results",
)


def _bench_job(workload_name: str, requests: int) -> Dict:
    """One limit-study workload pass, instrumented for the bench.

    Returns the engine event count and a figure tuple (mean, p90,
    total power for MD and HC-SD) — everything the harness needs to
    compute events/second and to verify serial/parallel identity.
    """
    start = time.perf_counter()
    workload = COMMERCIAL_WORKLOADS[workload_name]
    trace = workload.generate(requests)
    env = Environment()
    md = run_trace(env, build_md_system(env, workload), trace)
    events = env.total_events
    env = Environment()
    hcsd = run_trace(env, build_hcsd_system(env, workload), trace)
    events += env.total_events
    return {
        "workload": workload_name,
        "events": events,
        "wall_s": time.perf_counter() - start,
        "figures": (
            md.mean_response_ms,
            md.percentile(90),
            md.power.total_watts,
            hcsd.mean_response_ms,
            hcsd.percentile(90),
            hcsd.power.total_watts,
        ),
    }


def _jobs(workloads: Sequence[str], requests: int) -> List[Job]:
    return [
        Job(_bench_job, (name, requests), key=name) for name in workloads
    ]


def _figures_digest(outcomes: List[Dict]) -> str:
    payload = json.dumps(
        [[outcome["workload"], outcome["figures"]] for outcome in outcomes],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def _timed_pass(
    workloads: Sequence[str], requests: int, workers: int
) -> Tuple[float, List[Dict]]:
    start = time.perf_counter()
    outcomes = sweep(_jobs(workloads, requests), n_workers=workers)
    return time.perf_counter() - start, outcomes


#: Kernel-microbenchmark shape: enough concurrent timeout cycles to
#: exercise the pooled-timeout direct-dispatch fast path without any
#: disk model in the loop.
KERNEL_PROCESSES = 50
KERNEL_TIMEOUTS = 2000


def _kernel_pass(
    processes: int, timeouts: int, queue: Optional[str] = None
) -> int:
    """One pure-engine pass; returns the events scheduled.

    Each process cycles through ``timeouts`` awaited timeouts at a
    process-specific delay, so every firing takes the single-waiter
    direct-dispatch path and recycles its Timeout through the pool —
    the simulation-kernel hot loop with nothing else attached.
    ``queue`` pins the pending-event scheduler kind (``"calendar"`` /
    ``"heap"``); ``None`` uses the process default.
    """
    env = Environment(queue=queue)

    def cycle(delay: float):
        timeout = env.timeout
        for _ in range(timeouts):
            yield timeout(delay)

    for index in range(processes):
        env.process(cycle(0.5 + 0.25 * index))
    env.run()
    return env.total_events


def run_kernel_bench(
    processes: int = KERNEL_PROCESSES,
    timeouts: int = KERNEL_TIMEOUTS,
    repeats: int = 3,
    queue: Optional[str] = None,
) -> Dict:
    """Time the engine-only microbenchmark (best of ``repeats``).

    ``queue`` pins the scheduler kind for the timed environments; the
    default ``None`` keeps the process-wide default (calendar unless
    ``ENGINE_QUEUE`` overrides it).
    """
    if processes < 1 or timeouts < 1:
        raise ValueError(
            f"processes and timeouts must be >= 1, got "
            f"{processes}/{timeouts}"
        )
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    wall = float("inf")
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        events = _kernel_pass(processes, timeouts, queue)
        wall = min(wall, time.perf_counter() - start)
    return {
        "processes": processes,
        "timeouts": timeouts,
        "events": events,
        "wall_s": round(wall, 6),
        "events_per_s": round(events / wall, 1),
    }


def run_scheduler_bench(
    processes: int = KERNEL_PROCESSES,
    timeouts: int = KERNEL_TIMEOUTS,
    repeats: int = 3,
) -> Dict:
    """Time the kernel microbenchmark under both scheduler kinds.

    Runs the identical engine-only workload once under the calendar
    queue and once under the binary-heap fallback
    (``ENGINE_QUEUE=heap``), so the snapshot records the actual
    scheduler speedup on the recording host rather than leaving it to
    be inferred from two differently-shaped cells.  The two runs must
    schedule the same event count — a scheduler may only change
    wall-clock, never the event stream — and the cell is informational
    (non-gating) because the ratio is host-dependent.
    """
    calendar = run_kernel_bench(processes, timeouts, repeats, "calendar")
    heap = run_kernel_bench(processes, timeouts, repeats, "heap")
    if calendar["events"] != heap["events"]:
        raise RuntimeError(
            "scheduler bench event counts diverged: calendar="
            f"{calendar['events']} heap={heap['events']}"
        )
    return {
        "processes": processes,
        "timeouts": timeouts,
        "events": calendar["events"],
        "calendar": {
            "wall_s": calendar["wall_s"],
            "events_per_s": calendar["events_per_s"],
        },
        "heap": {
            "wall_s": heap["wall_s"],
            "events_per_s": heap["events_per_s"],
        },
        "calendar_speedup_vs_heap": round(
            heap["wall_s"] / calendar["wall_s"], 3
        ),
    }


#: Shard-scaling cell shape: the busiest Figure 8 array size — a
#: 16-drive RAID-0 under a 4 ms open arrival stream — which is the
#: configuration the sharded kernel exists for (16 drive groups to
#: partition, a deep controller queue to overlap).
SHARD_COUNTS = (1, 2, 4)
SHARD_DISKS = 16
SHARD_INTERARRIVAL_MS = 4.0
SHARD_REQUESTS = 2000


def _shard_pass(requests: int, shards: int) -> Tuple[int, List]:
    """Run the shard-scaling cell once; returns (events, figures).

    The figures tuple deliberately covers every figure family a study
    derives from a run — mean, p90, total power and the full
    response-time CDF — so digest equality means the sharded kernel
    reproduced the *publication output*, not just a summary statistic.
    """
    env = Environment()
    system = build_raid0_system(env, SHARD_DISKS)
    workload = SyntheticWorkload(
        capacity_sectors=system.capacity_sectors(),
        mean_interarrival_ms=SHARD_INTERARRIVAL_MS,
        footprint_fraction=0.02,
        seed=99,
    )
    trace = workload.generate(requests)
    run = run_trace(env, system, trace, shards=shards)
    figures = [
        run.mean_response_ms,
        run.percentile(90),
        run.power.total_watts,
        list(run.response_cdf()),
    ]
    return env.total_events, figures


def _shard_digest(figures: List) -> str:
    payload = json.dumps(figures, sort_keys=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def run_shard_bench(
    requests: int = SHARD_REQUESTS,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    repeats: int = 3,
) -> Dict:
    """Time the sharded-kernel scaling curve; returns the v4 section.

    ``shards=1`` (the serial fast path) is always timed, best of
    ``repeats``.  Higher shard counts follow the host-honesty rule of
    the worker sweep: a count above ``cpu_count`` is *executed* once —
    its figure digest against the serial run is the correctness check,
    and that holds on any host — but its wall-clock is recorded as a
    skipped entry, because forked shards time-slicing one core measure
    scheduler contention, not the kernel.  Hosts without the ``fork``
    start method skip the sharded runs entirely.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    counts = list(shard_counts)
    if not counts or counts[0] != 1:
        counts = [1] + [count for count in counts if count != 1]
    cpu = os.cpu_count() or 1

    serial_wall = float("inf")
    events = 0
    serial_figures: Optional[List] = None
    for _ in range(repeats):
        start = time.perf_counter()
        events, serial_figures = _shard_pass(requests, 1)
        serial_wall = min(serial_wall, time.perf_counter() - start)
    digest = _shard_digest(serial_figures)

    identical = True
    results: List[Dict] = [
        {
            "shards": 1,
            "wall_s": round(serial_wall, 6),
            "events_per_s": round(events / serial_wall, 1),
            "speedup_vs_serial": 1.0,
        }
    ]
    for count in counts[1:]:
        if not sharding_available():
            results.append(
                {
                    "shards": count,
                    "skipped": True,
                    "reason": "fork start method unavailable",
                }
            )
            continue
        if count > cpu:
            _, figures = _shard_pass(requests, count)
            matches = _shard_digest(figures) == digest
            identical = identical and matches
            results.append(
                {
                    "shards": count,
                    "skipped": True,
                    "reason": f"exceeds cpu_count={cpu}",
                    "figures_identical": matches,
                }
            )
            continue
        wall = float("inf")
        matches = True
        for _ in range(repeats):
            start = time.perf_counter()
            _, figures = _shard_pass(requests, count)
            wall = min(wall, time.perf_counter() - start)
            matches = matches and _shard_digest(figures) == digest
        identical = identical and matches
        results.append(
            {
                "shards": count,
                "wall_s": round(wall, 6),
                "events_per_s": round(events / wall, 1),
                "speedup_vs_serial": round(serial_wall / wall, 3),
                "figures_identical": matches,
            }
        )

    return {
        "disks": SHARD_DISKS,
        "interarrival_ms": SHARD_INTERARRIVAL_MS,
        "requests": requests,
        "events": events,
        "figures_sha256": digest,
        "figures_identical": identical,
        "results": results,
    }


#: Metrics-overhead cell shape: one serial limit-study workload is
#: plenty to surface a hot-path regression, and keeps a smoke-sized
#: bench smoke sized.
METRICS_OVERHEAD_WORKLOAD = "websearch"
METRICS_OVERHEAD_REQUESTS = 2000


def run_metrics_overhead_bench(
    requests: int = METRICS_OVERHEAD_REQUESTS,
    workload: str = METRICS_OVERHEAD_WORKLOAD,
    repeats: int = 3,
) -> Dict:
    """Time one serial workload pass with live metrics off, then on.

    The "on" pass runs under an ambient
    :class:`~repro.obs.metrics.MetricsRegistry` — exactly what
    ``--metrics PATH`` installs — so the recorded overhead is what a
    metered production run pays.  Figures from both passes are
    digest-compared: metering must never perturb simulated time.  The
    cell is informational (non-gating); ``overhead_fraction`` is
    ``1 - on/off`` events/second and can go negative in timing noise.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if workload not in COMMERCIAL_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; choose from "
            f"{sorted(COMMERCIAL_WORKLOADS)}"
        )
    from repro.obs.metrics import MetricsRegistry, metrics_session

    off_wall = float("inf")
    off_outcome: Dict = {}
    for _ in range(repeats):
        outcome = _bench_job(workload, requests)
        off_wall = min(off_wall, outcome["wall_s"])
        off_outcome = outcome
    on_wall = float("inf")
    on_outcome: Dict = {}
    for _ in range(repeats):
        with metrics_session(MetricsRegistry()):
            outcome = _bench_job(workload, requests)
        on_wall = min(on_wall, outcome["wall_s"])
        on_outcome = outcome
    events = off_outcome["events"]
    off_rate = events / off_wall
    on_rate = events / on_wall
    return {
        "workload": workload,
        "requests": requests,
        "events": events,
        "off_events_per_s": round(off_rate, 1),
        "on_events_per_s": round(on_rate, 1),
        "overhead_fraction": round(1.0 - on_rate / off_rate, 4),
        "figures_identical": (
            off_outcome["figures"] == on_outcome["figures"]
        ),
    }


def run_bench(
    requests: int = 6000,
    workers: int = 1,
    repeats: int = 3,
    workloads: Optional[Sequence[str]] = None,
) -> Dict:
    """Time the reference workload; returns the ``repro-bench/6`` dict.

    ``workers`` adds a second timed configuration beyond the serial
    baseline (pass 1, the default, to time only the baseline); the
    parallel pass's figures are checked against the serial pass's.
    Counts above the host's ``cpu_count`` are not timed — an
    oversubscribed pool measures contention, not parallelism — and are
    recorded as skipped entries instead.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    selected = list(workloads or COMMERCIAL_WORKLOADS)
    unknown = [name for name in selected if name not in COMMERCIAL_WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workloads {unknown}; choose from "
            f"{sorted(COMMERCIAL_WORKLOADS)}"
        )
    cpu = os.cpu_count() or 1
    worker_counts = [1]
    skipped = []
    resolved = resolve_workers(workers)
    if resolved > cpu:
        skipped.append(
            {
                "workers": resolved,
                "skipped": True,
                "reason": f"exceeds cpu_count={cpu}",
                "timed_as": cpu if cpu > 1 else 1,
            }
        )
        resolved = cpu
    if resolved > 1:
        worker_counts.append(resolved)

    results = []
    serial_digest: Optional[str] = None
    serial_wall: Optional[float] = None
    events = 0
    figures_identical = True
    workload_walls: Dict[str, float] = {}
    workload_events: Dict[str, int] = {}
    for count in worker_counts:
        wall = float("inf")
        outcomes: List[Dict] = []
        for _ in range(repeats):
            elapsed, outcomes = _timed_pass(selected, requests, count)
            wall = min(wall, elapsed)
            if count == 1:
                # Per-workload breakdown: each job times itself, so
                # the serial pass yields a noise-floor (min over
                # repeats) estimate per workload.
                for outcome in outcomes:
                    name = outcome["workload"]
                    job_wall = outcome["wall_s"]
                    if (
                        name not in workload_walls
                        or job_wall < workload_walls[name]
                    ):
                        workload_walls[name] = job_wall
                    workload_events[name] = outcome["events"]
        events = sum(outcome["events"] for outcome in outcomes)
        digest = _figures_digest(outcomes)
        if serial_digest is None:
            serial_digest = digest
            serial_wall = wall
        elif digest != serial_digest:
            figures_identical = False
        results.append(
            {
                "workers": count,
                "wall_s": round(wall, 6),
                "events_per_s": round(events / wall, 1),
                "speedup_vs_serial": round(serial_wall / wall, 3),
            }
        )
    results.extend(skipped)

    workload_results = [
        {
            "workload": name,
            "events": workload_events[name],
            "wall_s": round(workload_walls[name], 6),
            "events_per_s": round(
                workload_events[name] / workload_walls[name], 1
            ),
        }
        for name in selected
        if name in workload_walls
    ]

    return {
        "schema": BENCH_SCHEMA,
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "requests": requests,
        "repeats": repeats,
        "workloads": selected,
        "events": events,
        "figures_sha256": serial_digest,
        "figures_identical": figures_identical,
        "workload_results": workload_results,
        "kernel": run_kernel_bench(repeats=repeats),
        "scheduler": run_scheduler_bench(repeats=repeats),
        "results": results,
        # The scaling cell tracks the caller's request budget (capped
        # at its reference size) so a smoke-sized bench stays smoke
        # sized while the committed baseline records the full curve.
        "shard_scaling": run_shard_bench(
            requests=min(requests, SHARD_REQUESTS), repeats=repeats
        ),
        # Same budget rule for the metrics-overhead cell, and it
        # prefers a workload the caller actually selected.
        "metrics_overhead": run_metrics_overhead_bench(
            requests=min(requests, METRICS_OVERHEAD_REQUESTS),
            workload=(
                METRICS_OVERHEAD_WORKLOAD
                if METRICS_OVERHEAD_WORKLOAD in selected
                else selected[0]
            ),
            repeats=repeats,
        ),
    }


def format_bench(result: Dict) -> str:
    timed = [
        entry for entry in result["results"] if not entry.get("skipped")
    ]
    skipped = [
        entry for entry in result["results"] if entry.get("skipped")
    ]
    rows = [
        (
            entry["workers"],
            entry["wall_s"],
            entry["events_per_s"],
            entry["speedup_vs_serial"],
        )
        for entry in timed
    ]
    table = format_table(
        ["workers", "wall_s", "events_per_s", "speedup"],
        rows,
        title=(
            f"Benchmark: {result['requests']} requests x "
            f"{len(result['workloads'])} workloads (MD + HC-SD), "
            f"best of {result['repeats']}"
        ),
        float_format="{:.3f}",
    )
    footer = (
        f"engine events per pass: {result['events']}; "
        f"cpu_count: {result['cpu_count']}; "
        f"figures identical across worker counts: "
        f"{result['figures_identical']}"
    )
    lines = [table, footer]
    per_workload = result.get("workload_results") or []
    if per_workload:
        workload_table = format_table(
            ["workload", "events", "wall_s", "events_per_s"],
            [
                (
                    entry["workload"],
                    entry["events"],
                    entry["wall_s"],
                    entry["events_per_s"],
                )
                for entry in per_workload
            ],
            title="Serial pass by workload (best of repeats)",
            float_format="{:.3f}",
        )
        lines.append(workload_table)
    kernel = result.get("kernel")
    if kernel:
        lines.append(
            f"kernel microbench: {kernel['events']} events in "
            f"{kernel['wall_s']:.3f}s = {kernel['events_per_s']:.0f} "
            f"events/s ({kernel['processes']} processes x "
            f"{kernel['timeouts']} timeouts)"
        )
    scheduler = result.get("scheduler")
    if scheduler:
        lines.append(
            "scheduler microbench (non-gating): calendar "
            f"{scheduler['calendar']['events_per_s']:.0f} events/s vs "
            f"heap {scheduler['heap']['events_per_s']:.0f} = "
            f"{scheduler['calendar_speedup_vs_heap']:.2f}x "
            f"({scheduler['events']} events per pass)"
        )
    shard_scaling = result.get("shard_scaling")
    if shard_scaling:
        shard_rows = [
            (
                entry["shards"],
                entry["wall_s"],
                entry["events_per_s"],
                entry["speedup_vs_serial"],
            )
            for entry in shard_scaling["results"]
            if not entry.get("skipped")
        ]
        lines.append(
            format_table(
                ["shards", "wall_s", "events_per_s", "speedup"],
                shard_rows,
                title=(
                    f"Sharded kernel: {shard_scaling['disks']}-drive "
                    f"RAID-0, {shard_scaling['requests']} requests, "
                    f"{shard_scaling['interarrival_ms']:g} ms arrivals"
                ),
                float_format="{:.3f}",
            )
        )
        lines.append(
            "sharded figures identical to serial: "
            f"{shard_scaling['figures_identical']}"
        )
        lines.extend(
            f"skipped shards={entry['shards']}: {entry['reason']}"
            + (
                " (figures verified identical)"
                if entry.get("figures_identical")
                else ""
            )
            for entry in shard_scaling["results"]
            if entry.get("skipped")
        )
    overhead = result.get("metrics_overhead")
    if overhead:
        lines.append(
            f"metrics overhead ({overhead['workload']}, "
            f"{overhead['requests']} requests, non-gating): "
            f"{overhead['off_events_per_s']:.0f} events/s off, "
            f"{overhead['on_events_per_s']:.0f} on = "
            f"{overhead['overhead_fraction'] * 100:.1f}% cost; "
            f"metered figures identical: "
            f"{overhead['figures_identical']}"
        )
    lines.extend(
        f"skipped workers={entry['workers']}: {entry['reason']}"
        for entry in skipped
    )
    return "\n".join(lines)


def validate_bench(snapshot: Dict, source: str = "snapshot") -> None:
    """Structural validation of a bench snapshot; raises ``ValueError``.

    Accepts every supported schema version — use :func:`migrate_bench`
    (or :func:`load_bench`, which validates *and* migrates) to
    normalise an older snapshot to the current schema.
    """
    if not isinstance(snapshot, dict):
        raise ValueError(f"{source}: not a JSON object")
    schema = snapshot.get("schema")
    if schema is None:
        raise ValueError(f"{source}: missing 'schema' field")
    supported = (
        BENCH_SCHEMA,
        BENCH_SCHEMA_V5,
        BENCH_SCHEMA_V4,
        BENCH_SCHEMA_V3,
        BENCH_SCHEMA_V2,
        BENCH_SCHEMA_V1,
    )
    if schema not in supported:
        raise ValueError(
            f"{source}: unsupported schema {schema!r} (expected one "
            f"of {', '.join(supported)})"
        )
    missing = [key for key in REQUIRED_KEYS if key not in snapshot]
    if schema in (
        BENCH_SCHEMA,
        BENCH_SCHEMA_V5,
        BENCH_SCHEMA_V4,
        BENCH_SCHEMA_V3,
    ):
        missing.extend(
            key
            for key in ("workload_results", "kernel")
            if key not in snapshot
        )
    if (
        schema in (BENCH_SCHEMA, BENCH_SCHEMA_V5, BENCH_SCHEMA_V4)
        and "shard_scaling" not in snapshot
    ):
        missing.append("shard_scaling")
    if (
        schema in (BENCH_SCHEMA, BENCH_SCHEMA_V5)
        and "metrics_overhead" not in snapshot
    ):
        missing.append("metrics_overhead")
    if schema == BENCH_SCHEMA and "scheduler" not in snapshot:
        missing.append("scheduler")
    if missing:
        raise ValueError(f"{source}: missing keys {missing}")
    if not isinstance(snapshot["results"], list) or not snapshot["results"]:
        raise ValueError(f"{source}: 'results' must be a non-empty list")
    for index, entry in enumerate(snapshot["results"]):
        if "workers" not in entry:
            raise ValueError(
                f"{source}: results[{index}] missing 'workers'"
            )
        if not entry.get("skipped") and "events_per_s" not in entry:
            raise ValueError(
                f"{source}: results[{index}] missing 'events_per_s'"
            )


def migrate_bench(snapshot: Dict) -> Dict:
    """Normalise a snapshot to the current ``repro-bench/6`` schema.

    Migrations chain version by version:

    * **v1 → v2** — the worker cap: v1 happily *timed* worker counts
      above ``cpu_count`` (measuring scheduler contention, not
      parallelism), where v2 records them as skipped entries.
      Migration demotes any oversubscribed timed entry to a skipped
      one — its wall-clock is untrustworthy.
    * **v2 → v3** — the per-workload serial breakdown and the kernel
      microbenchmark.  Neither can be reconstructed from an older
      run, so migrated snapshots carry an empty ``workload_results``
      list and a ``None`` kernel; consumers treat both as "not
      recorded".
    * **v3 → v4** — the sharded-kernel scaling curve.  Older runs
      never executed the sharded kernel, so migrated snapshots carry
      a ``None`` ``shard_scaling``.
    * **v4 → v5** — the metrics-overhead cell.  Older runs never
      timed the live-metrics registry, so migrated snapshots carry a
      ``None`` ``metrics_overhead``.
    * **v5 → v6** — the scheduler head-to-head cell.  Older runs only
      timed the kernel under one scheduler kind, so migrated snapshots
      carry a ``None`` ``scheduler``.

    The result is stamped with the schema it now satisfies plus the
    schema it ``migrated_from``.  Current-schema snapshots are
    returned as (copies of) themselves.
    """
    validate_bench(snapshot)
    migrated = dict(snapshot)
    original = migrated["schema"]
    if original == BENCH_SCHEMA:
        return migrated
    if migrated["schema"] == BENCH_SCHEMA_V1:
        cpu = migrated.get("cpu_count") or 1
        results = []
        for entry in migrated["results"]:
            if not entry.get("skipped") and entry["workers"] > cpu:
                results.append(
                    {
                        "workers": entry["workers"],
                        "skipped": True,
                        "reason": (
                            f"exceeds cpu_count={cpu} (untrusted v1 "
                            "timing dropped on migration)"
                        ),
                        "timed_as": cpu if cpu > 1 else 1,
                    }
                )
            else:
                results.append(dict(entry))
        migrated["results"] = results
        migrated["schema"] = BENCH_SCHEMA_V2
    if migrated["schema"] == BENCH_SCHEMA_V2:
        migrated["workload_results"] = []
        migrated["kernel"] = None
        migrated["schema"] = BENCH_SCHEMA_V3
    if migrated["schema"] == BENCH_SCHEMA_V3:
        migrated["shard_scaling"] = None
        migrated["schema"] = BENCH_SCHEMA_V4
    if migrated["schema"] == BENCH_SCHEMA_V4:
        migrated["metrics_overhead"] = None
        migrated["schema"] = BENCH_SCHEMA_V5
    if migrated["schema"] == BENCH_SCHEMA_V5:
        migrated["scheduler"] = None
        migrated["schema"] = BENCH_SCHEMA
    migrated["migrated_from"] = original
    return migrated


def load_bench(path: str) -> Dict:
    """Read, validate and migrate a bench snapshot from ``path``.

    Unknown or missing schemas raise ``ValueError`` (no more silently
    comparing incompatible snapshots); v1-v5 snapshots come back
    migrated to ``repro-bench/6``.
    """
    with open(path, encoding="utf-8") as handle:
        try:
            snapshot = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON: {error}") from None
    validate_bench(snapshot, source=path)
    return migrate_bench(snapshot)


def write_bench(result: Dict, path: Optional[str] = None) -> str:
    """Write the snapshot; returns the path written."""
    if path is None:
        stamp = result["date"].replace("-", "")
        path = f"BENCH_{stamp}.json"
    with open(path, "w", encoding="ascii") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
