"""Benchmark regression gate: compare a run against a baseline snapshot.

``python -m repro bench --check BASELINE.json`` runs the reference
benchmark and calls :func:`compare_bench` to validate the fresh result
against the committed snapshot.  Three classes of check:

* **Correctness (hard).**  Both snapshots must validate against the
  bench schema, the current run's serial and parallel figures must be
  bit-identical (``figures_identical``), the sharded kernel must have
  reproduced the serial cell bit-for-bit
  (``shard_scaling.figures_identical``), and — when the two snapshots
  ran the same workloads at the same request count — the figure
  digests must match exactly.  The simulation is deterministic across
  machines and Python versions, so a digest mismatch means the
  *simulator's output changed*, which is precisely what the gate
  exists to catch.
* **Throughput (tolerance-gated).**  Serial events/second may drift
  with hardware and interpreter; the gate fails only when the current
  run falls below ``tolerance`` × baseline (default 0.5).  Pass
  ``tolerance=0`` to report the delta without gating on it.  A
  baseline recorded with a different ``cpu_count`` belongs to a
  different host class — its wall-clocks (and which worker counts
  were timed at all) are not a yardstick here — so the throughput
  gate auto-disables with a note while the correctness gates above
  continue to apply in full.
* **Context (informational).**  Request counts, workload sets and
  host differences are reported as notes so a CI log explains *why*
  a digest comparison was or wasn't performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.tools.bench import migrate_bench

__all__ = ["CheckResult", "compare_bench", "format_check"]

#: Default minimum acceptable fraction of baseline serial throughput.
DEFAULT_TOLERANCE = 0.5


@dataclass
class CheckResult:
    """Outcome of one baseline comparison."""

    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: current serial events/s over baseline serial events/s (None
    #: when either side has no serial entry).
    throughput_ratio: Optional[float] = None
    digest_checked: bool = False

    @property
    def ok(self) -> bool:
        return not self.problems


def _serial_events_per_s(snapshot: Dict) -> Optional[float]:
    for entry in snapshot.get("results", []):
        if entry.get("skipped"):
            continue
        if entry.get("workers") == 1:
            return entry.get("events_per_s")
    return None


def compare_bench(
    baseline: Dict,
    current: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> CheckResult:
    """Compare ``current`` against ``baseline``; see module docstring.

    Both snapshots are validated (and the baseline migrated) on entry,
    so a stale v1 baseline is compared on v2 terms rather than
    rejected or silently mis-read.
    """
    result = CheckResult()
    try:
        baseline = migrate_bench(baseline)
    except ValueError as error:
        result.problems.append(f"baseline invalid: {error}")
        return result
    try:
        current = migrate_bench(current)
    except ValueError as error:
        result.problems.append(f"current run invalid: {error}")
        return result

    if not current.get("figures_identical", False):
        result.problems.append(
            "current run: serial and parallel figures differ "
            "(figures_identical is false) — determinism broken"
        )

    current_shards = current.get("shard_scaling")
    if current_shards and not current_shards.get(
        "figures_identical", False
    ):
        result.problems.append(
            "current run: sharded-kernel figures differ from serial "
            "(shard_scaling.figures_identical is false) — the "
            "conservative parallel kernel broke bit-identity"
        )
    baseline_shards = baseline.get("shard_scaling")
    if (
        current_shards
        and baseline_shards
        and baseline_shards["requests"] == current_shards["requests"]
        and baseline_shards["disks"] == current_shards["disks"]
    ):
        if (
            baseline_shards["figures_sha256"]
            != current_shards["figures_sha256"]
        ):
            result.problems.append(
                "shard-scaling cell digest mismatch: baseline "
                f"{baseline_shards['figures_sha256'][:12]}… vs current "
                f"{current_shards['figures_sha256'][:12]}… — RAID cell "
                "output changed"
            )
    elif current_shards and not baseline_shards:
        result.notes.append(
            "shard-scaling digest not compared: baseline predates "
            "repro-bench/4"
        )

    comparable = (
        baseline["requests"] == current["requests"]
        and baseline["workloads"] == current["workloads"]
    )
    if comparable:
        result.digest_checked = True
        if baseline["figures_sha256"] != current["figures_sha256"]:
            result.problems.append(
                "figure digest mismatch: baseline "
                f"{baseline['figures_sha256'][:12]}… vs current "
                f"{current['figures_sha256'][:12]}… — simulation "
                "output changed"
            )
        if baseline["events"] != current["events"]:
            result.problems.append(
                f"engine event count changed: baseline "
                f"{baseline['events']} vs current {current['events']}"
            )
    else:
        result.notes.append(
            "digest not compared: baseline ran "
            f"{baseline['requests']} requests over "
            f"{baseline['workloads']}, current ran "
            f"{current['requests']} over {current['workloads']}"
        )

    base_cpu = baseline.get("cpu_count")
    this_cpu = current.get("cpu_count")
    cpu_comparable = base_cpu == this_cpu
    if not cpu_comparable:
        # A baseline recorded on a different host class is not a
        # throughput yardstick: its wall-clocks (and which worker
        # counts were even timed vs skipped) reflect that machine.
        # The correctness gates (digest, event count) are host
        # independent and still apply in full; only the throughput
        # gate is disabled, and the mismatch is surfaced as a note so
        # a CI log on new hardware explains why no wall-clock verdict
        # was rendered instead of failing the whole check.
        result.notes.append(
            f"cpu_count differs (baseline {base_cpu}, current "
            f"{this_cpu}); throughput gate disabled for this "
            "comparison — re-record the baseline on this host to "
            "re-arm it"
        )

    base_rate = _serial_events_per_s(baseline)
    this_rate = _serial_events_per_s(current)
    if base_rate and this_rate:
        ratio = this_rate / base_rate
        result.throughput_ratio = ratio
        result.notes.append(
            f"serial throughput: {this_rate:.0f} events/s vs baseline "
            f"{base_rate:.0f} ({ratio:.2f}x)"
        )
        if cpu_comparable and tolerance > 0 and ratio < tolerance:
            result.problems.append(
                f"serial throughput regressed to {ratio:.2f}x of "
                f"baseline (floor {tolerance:.2f}x): "
                f"{this_rate:.0f} vs {base_rate:.0f} events/s"
            )
    else:
        result.notes.append(
            "serial throughput not compared (missing workers=1 entry)"
        )

    base_kernel = baseline.get("kernel")
    this_kernel = current.get("kernel")
    if base_kernel and this_kernel:
        kernel_ratio = (
            this_kernel["events_per_s"] / base_kernel["events_per_s"]
        )
        result.notes.append(
            f"kernel microbench: {this_kernel['events_per_s']:.0f} "
            f"events/s vs baseline {base_kernel['events_per_s']:.0f} "
            f"({kernel_ratio:.2f}x, informational)"
        )

    if baseline.get("platform") != current.get("platform"):
        result.notes.append(
            f"platform differs: baseline {baseline.get('platform')!r}, "
            f"current {current.get('platform')!r}"
        )
    if baseline.get("migrated_from"):
        result.notes.append(
            f"baseline migrated from {baseline['migrated_from']}"
        )
    return result


def format_check(result: CheckResult) -> str:
    """Human-readable verdict for CI logs."""
    lines = []
    if result.ok:
        digest = (
            "figure digest identical"
            if result.digest_checked
            else "digest comparison skipped"
        )
        lines.append(f"bench check PASSED ({digest})")
    else:
        lines.append("bench check FAILED")
        lines.extend(f"  problem: {item}" for item in result.problems)
    lines.extend(f"  note: {item}" for item in result.notes)
    return "\n".join(lines)
