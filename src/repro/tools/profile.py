"""``python -m repro profile``: cProfile the simulator hot path.

Profiles either the reference benchmark workload (``--target bench``,
the default — one serial limit-study pass per selected workload) or
the pure-engine kernel microbenchmark (``--target kernel``), then
prints the top-N entries.  The default ordering is cumulative time,
which surfaces the call-tree roots worth optimising; ``--sort
tottime`` surfaces the leaf functions the interpreter actually spends
its time in.

``--json`` emits the same entries as machine-readable JSON, so a CI
step (or a notebook) can diff successive profiles without scraping
pstats' text layout.  For the kernel target, ``--shards N`` times the
microbenchmark one shard partition at a time and reports a row per
shard (``kernel_shards`` in the JSON); ``--shards 1`` is the classic
single-kernel microbenchmark, bit-for-bit.

``--compare BASELINE.json`` switches to delta mode: instead of
profiling, it re-times every comparable cell of a committed bench
snapshot — each per-workload serial pass, the engine-kernel
microbenchmark and (for v6 baselines) both scheduler kinds — and
reports current events/second against the baseline's, cell by cell.
That answers "*where* did the throughput move?" after an engine
change, which the bench's single aggregate number cannot.  Older
baselines are migrated on load; cells the baseline never recorded are
skipped.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "format_compare",
    "format_profile",
    "run_compare",
    "run_profile",
]

#: Sort keys accepted by ``--sort`` (a curated subset of pstats').
SORT_KEYS = ("cumulative", "tottime", "ncalls")

TARGETS = ("bench", "kernel")


def _profile_bench(
    requests: int, workloads: Optional[Sequence[str]]
) -> cProfile.Profile:
    from repro.tools.bench import _bench_job
    from repro.workloads.commercial import COMMERCIAL_WORKLOADS

    selected = list(workloads or COMMERCIAL_WORKLOADS)
    unknown = [
        name for name in selected if name not in COMMERCIAL_WORKLOADS
    ]
    if unknown:
        raise ValueError(
            f"unknown workloads {unknown}; choose from "
            f"{sorted(COMMERCIAL_WORKLOADS)}"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    for name in selected:
        _bench_job(name, requests)
    profiler.disable()
    return profiler


def _profile_kernel(
    shards: int = 1,
) -> Tuple[cProfile.Profile, List[Dict]]:
    """Profile the engine kernel, one pass per shard partition.

    The kernel workload is partitioned the way the sharded engine
    partitions drives: striped, so ``shards`` kernels each run their
    share of the ``KERNEL_PROCESSES`` timeout cycles on a private
    environment.  Each shard's pass is timed individually and returned
    as a row.  With ``shards=1`` the single row *is* the classic
    kernel microbenchmark — same call, same event count — so existing
    profile consumers see unchanged numbers.
    """
    from repro.tools.bench import (
        KERNEL_PROCESSES,
        KERNEL_TIMEOUTS,
        _kernel_pass,
    )

    rows: List[Dict] = []
    profiler = cProfile.Profile()
    profiler.enable()
    for shard in range(shards):
        processes = len(range(shard, KERNEL_PROCESSES, shards))
        start = time.perf_counter()
        events = _kernel_pass(processes, KERNEL_TIMEOUTS)
        wall = time.perf_counter() - start
        rows.append(
            {
                "shard": shard,
                "processes": processes,
                "timeouts": KERNEL_TIMEOUTS,
                "events": events,
                "wall_s": round(wall, 6),
                "events_per_s": round(events / wall, 1),
            }
        )
    profiler.disable()
    return profiler, rows


def run_profile(
    target: str = "bench",
    requests: int = 2000,
    workloads: Optional[Sequence[str]] = None,
    top: int = 25,
    sort: str = "cumulative",
    shards: int = 1,
) -> Dict:
    """Profile ``target`` and return the top-``top`` entries.

    Returns ``{"target", "requests", "total_time_s", "total_calls",
    "sort", "entries", "shards", "kernel_shards"}`` where each entry
    carries the function's location, call counts and timings — plain
    data, JSON-ready.  For the kernel target, ``kernel_shards`` holds
    one timed microbenchmark row per shard partition (``shards=1``
    reproduces the classic single-kernel row exactly); the bench
    target reports ``kernel_shards: None``.
    """
    if target not in TARGETS:
        raise ValueError(
            f"unknown profile target {target!r}; choose from {TARGETS}"
        )
    if sort not in SORT_KEYS:
        raise ValueError(
            f"unknown sort key {sort!r}; choose from {SORT_KEYS}"
        )
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    kernel_shards: Optional[List[Dict]] = None
    if target == "bench":
        profiler = _profile_bench(requests, workloads)
    else:
        profiler, kernel_shards = _profile_kernel(shards)

    stats = pstats.Stats(profiler, stream=io.StringIO())
    total_calls = stats.total_calls
    total_time = stats.total_tt

    entries: List[Dict] = []
    for (filename, line, name), (
        primitive_calls,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():
        entries.append(
            {
                "function": name,
                "file": filename,
                "line": line,
                "ncalls": ncalls,
                "primitive_calls": primitive_calls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    sort_field = {
        "cumulative": "cumtime_s",
        "tottime": "tottime_s",
        "ncalls": "ncalls",
    }[sort]
    entries.sort(key=lambda entry: entry[sort_field], reverse=True)

    return {
        "target": target,
        "requests": requests if target == "bench" else None,
        "sort": sort,
        "shards": shards if target == "kernel" else None,
        "kernel_shards": kernel_shards,
        "total_calls": total_calls,
        "total_time_s": round(total_time, 6),
        "entries": entries[:top],
    }


def run_compare(baseline_path: str, repeats: int = 1) -> Dict:
    """Re-time a bench snapshot's cells and report per-cell deltas.

    Loads (and, for older schemas, migrates) the baseline snapshot,
    then re-runs every cell it recorded a throughput for — one serial
    pass per workload at the baseline's request count, the kernel
    microbenchmark at the baseline's shape, and both scheduler kinds
    when the baseline carries the v6 cell.  Each fresh wall-clock is
    the best of ``repeats`` passes.  Deltas are informational: the
    caller decides what counts as a regression (host noise on shared
    machines easily reaches several percent).
    """
    from repro.tools.bench import (
        _bench_job,
        load_bench,
        run_kernel_bench,
        run_scheduler_bench,
    )

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    baseline = load_bench(baseline_path)
    requests = baseline["requests"]
    cells: List[Dict] = []

    def add_cell(name: str, base_rate: float, rate: float) -> None:
        cells.append(
            {
                "cell": name,
                "baseline_events_per_s": base_rate,
                "current_events_per_s": rate,
                "delta_fraction": (
                    round(rate / base_rate - 1.0, 4) if base_rate else None
                ),
            }
        )

    for entry in baseline.get("workload_results") or []:
        name = entry["workload"]
        wall = float("inf")
        events = 0
        for _ in range(repeats):
            outcome = _bench_job(name, requests)
            wall = min(wall, outcome["wall_s"])
            events = outcome["events"]
        add_cell(
            f"workload:{name}",
            entry["events_per_s"],
            round(events / wall, 1),
        )

    kernel = baseline.get("kernel")
    if kernel:
        fresh = run_kernel_bench(
            kernel["processes"], kernel["timeouts"], repeats
        )
        add_cell("kernel", kernel["events_per_s"], fresh["events_per_s"])

    scheduler = baseline.get("scheduler")
    if scheduler:
        fresh = run_scheduler_bench(
            scheduler["processes"], scheduler["timeouts"], repeats
        )
        for kind in ("calendar", "heap"):
            add_cell(
                f"scheduler:{kind}",
                scheduler[kind]["events_per_s"],
                fresh[kind]["events_per_s"],
            )

    return {
        "baseline_path": baseline_path,
        "baseline_date": baseline.get("date"),
        "baseline_schema": baseline.get("migrated_from", baseline["schema"]),
        "requests": requests,
        "repeats": repeats,
        "cells": cells,
    }


def format_compare(result: Dict) -> str:
    """Plain-text table of a :func:`run_compare` result."""
    from repro.metrics.report import format_table

    rows = [
        (
            entry["cell"],
            entry["baseline_events_per_s"],
            entry["current_events_per_s"],
            (
                f"{entry['delta_fraction'] * 100:+.1f}%"
                if entry["delta_fraction"] is not None
                else "n/a"
            ),
        )
        for entry in result["cells"]
    ]
    table = format_table(
        ["cell", "baseline_ev_s", "current_ev_s", "delta"],
        rows,
        title=(
            f"Per-cell events/s vs {result['baseline_path']} "
            f"({result['baseline_date']}, {result['requests']} "
            f"requests, best of {result['repeats']})"
        ),
        float_format="{:.1f}",
    )
    footer = (
        "deltas are informational: wall-clocks are host-dependent, "
        "only the bench digest gates"
    )
    if not result["cells"]:
        footer = (
            "baseline recorded no comparable cells (pre-v3 snapshot?)"
        )
    return "\n".join([table, footer])


def format_profile(result: Dict) -> str:
    """Plain-text table of a :func:`run_profile` result."""
    from repro.metrics.report import format_table

    rows = []
    for entry in result["entries"]:
        location = entry["file"]
        if entry["line"]:
            location = f"{location}:{entry['line']}"
        rows.append(
            (
                entry["function"],
                entry["ncalls"],
                entry["tottime_s"],
                entry["cumtime_s"],
                location,
            )
        )
    scope = (
        f"{result['requests']} requests/workload"
        if result["target"] == "bench"
        else "engine kernel"
    )
    table = format_table(
        ["function", "ncalls", "tottime_s", "cumtime_s", "where"],
        rows,
        title=(
            f"Profile: {result['target']} ({scope}), top "
            f"{len(result['entries'])} by {result['sort']}"
        ),
        float_format="{:.4f}",
    )
    footer = (
        f"total: {result['total_calls']} calls in "
        f"{result['total_time_s']:.3f}s"
    )
    lines = [table, footer]
    for row in result.get("kernel_shards") or []:
        lines.append(
            f"shard {row['shard']}: {row['events']} events in "
            f"{row['wall_s']:.3f}s = {row['events_per_s']:.0f} "
            f"events/s ({row['processes']} processes x "
            f"{row['timeouts']} timeouts)"
        )
    return "\n".join(lines)
