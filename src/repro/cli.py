"""Command-line interface: regenerate paper artifacts and run sweeps.

Usage (``python -m repro <command> ...``)::

    python -m repro list                      # available artifacts
    python -m repro table1
    python -m repro fig5 --requests 6000
    python -m repro all --requests 2000
    python -m repro workloads                 # trace-model summaries
    python -m repro simulate --workload websearch --actuators 4
    python -m repro fig5 --workers 4          # fan runs out over processes
    python -m repro bench                     # write BENCH_<date>.json
    python -m repro bench --check BENCH_X.json   # regression gate
    python -m repro profile --top 10          # cProfile the bench pass
    python -m repro profile --target kernel --json   # engine microbench
    python -m repro profile --compare BENCH_X.json   # per-cell deltas
    python -m repro trace limit_study --out trace.json   # Perfetto trace
    python -m repro fig5 --trace fig5.json    # trace any command's runs
    python -m repro report limit_study --html report.html   # analytics
    python -m repro report --from-trace trace.json          # post hoc
    python -m repro trace convert in.spc out.trace.gz --sort
    python -m repro trace stat out.trace.gz   # streaming profile
    python -m repro serve --queue q --workers 4 --drain
    python -m repro submit --queue q --workload websearch
    python -m repro status --queue q          # or: status --queue q ID
    python -m repro status --queue q --metrics   # + merged worker metrics
    python -m repro result --queue q ID -o payload.json
    python -m repro serve --queue q --drain --metrics m.prom
    python -m repro metrics --queue q         # merged Prometheus snapshot
    python -m repro metrics --queue q --watch # live terminal dashboard
    python -m repro fig5 --metrics fig5.prom  # meter any command's runs
    python -m repro chaos --seed 0            # seeded chaos campaign
    python -m repro chaos --scenarios kill,torn-write --report out.json
    python -m repro chaos --validate plan.json   # schema-check a plan

Every command prints the same plain-text tables the benchmark harness
asserts against.  ``--trace PATH`` records a request-lifecycle trace of
the command (Chrome trace-event JSON, loadable in ui.perfetto.dev)
without changing any figure; the dedicated ``trace`` subcommand runs a
named experiment with richer per-arm instrumentation, and ``report``
turns a traced run (or a previously exported trace) into utilization,
queue-depth and bottleneck-attribution analytics.  ``--metrics PATH``
works the same way for live operational metrics: the command runs under
an ambient :class:`~repro.obs.metrics.MetricsRegistry` and writes a
Prometheus text exposition (or a JSONL snapshot for a ``.jsonl`` path)
on exit, again without changing any figure; the ``metrics`` subcommand
reads the merged per-worker snapshots of a serve queue, one-shot or as
a ``--watch`` dashboard.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

__all__ = ["main"]

#: The reference benchmark scale (the paper's 6000-request limit study);
#: ``bench --check`` uses it to detect an un-overridden ``--requests``.
_BENCH_DEFAULT_REQUESTS = 6000


def _table1(args) -> None:
    from repro.experiments.technology import format_table1

    print(format_table1())


def _table2(args) -> None:
    from repro.experiments.technology import format_table2

    print(format_table2())


def _fig2(args) -> None:
    from repro.experiments.limit_study import (
        format_figure2,
        run_limit_study,
    )
    from repro.metrics.cdf import RESPONSE_TIME_EDGES_MS
    from repro.metrics.plot import ascii_chart

    results = run_limit_study(
        requests=args.requests, n_workers=args.workers,
        shards=args.shards,
    )
    print(format_figure2(results))
    labels = [f"{edge:g}" for edge in RESPONSE_TIME_EDGES_MS] + ["200+"]
    for name, result in results.items():
        print()
        print(
            ascii_chart(
                labels,
                [
                    ("MD", result.md.response_cdf()),
                    ("HC-SD", result.hcsd.response_cdf()),
                ],
                title=f"Figure 2 [{name}] (chart)",
            )
        )


def _fig3(args) -> None:
    from repro.experiments.limit_study import (
        format_figure3,
        run_limit_study,
    )

    print(
        format_figure3(
            run_limit_study(
                requests=args.requests, n_workers=args.workers,
                shards=args.shards,
            )
        )
    )


def _fig4(args) -> None:
    from repro.experiments.bottleneck import (
        format_figure4,
        run_bottleneck_study,
    )

    print(
        format_figure4(
            run_bottleneck_study(
                requests=args.requests, n_workers=args.workers
            )
        )
    )


def _fig5(args) -> None:
    from repro.experiments.parallel_study import (
        format_figure5_cdf,
        format_figure5_pdf,
        run_parallel_study,
    )

    from repro.metrics.cdf import RESPONSE_TIME_EDGES_MS
    from repro.metrics.plot import ascii_chart

    results = run_parallel_study(
        requests=args.requests, n_workers=args.workers
    )
    print(format_figure5_cdf(results))
    print()
    print(format_figure5_pdf(results))
    labels = [f"{edge:g}" for edge in RESPONSE_TIME_EDGES_MS] + ["200+"]
    for name, result in results.items():
        series = [
            (result.label(n), run.response_cdf())
            for n, run in sorted(result.by_actuators.items())
        ]
        series.append(("MD", result.md.response_cdf()))
        print()
        print(
            ascii_chart(
                labels, series, title=f"Figure 5 [{name}] (chart)"
            )
        )


def _fig6(args) -> None:
    from repro.experiments.rpm_study import format_figure6, run_rpm_study

    print(
        format_figure6(
            run_rpm_study(
                requests=args.requests, n_workers=args.workers,
                shards=args.shards,
            )
        )
    )


def _fig7(args) -> None:
    from repro.experiments.rpm_study import format_figure7, run_rpm_study

    print(
        format_figure7(
            run_rpm_study(
                requests=args.requests, n_workers=args.workers,
                shards=args.shards,
            )
        )
    )


def _fig8(args) -> None:
    from repro.experiments.raid_study import (
        format_figure8_performance,
        format_figure8_power,
        run_raid_study,
    )

    result = run_raid_study(
        requests=args.requests, n_workers=args.workers,
        shards=args.shards,
    )
    print(format_figure8_performance(result))
    print()
    print(format_figure8_power(result))


def _fig9(args) -> None:
    from repro.experiments.cost_study import (
        format_figure9b,
        format_table9a,
    )

    print(format_table9a())
    print()
    print(format_figure9b())


ARTIFACTS: Dict[str, Callable] = {
    "table1": _table1,
    "table2": _table2,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
}


def _all(args) -> None:
    for name, runner in ARTIFACTS.items():
        print("=" * 72)
        print(name)
        print("=" * 72)
        runner(args)
        print()


def _list(args) -> None:
    print("artifacts:", ", ".join(ARTIFACTS))
    print(
        "other commands: all, results, report, scorecard, faults, "
        "chaos, workloads, simulate, bench, trace, serve, submit, "
        "status, result, metrics, list"
    )


def _results(args) -> None:
    """Write a self-contained markdown results report."""
    import contextlib
    import io

    sections = []
    for name, runner in ARTIFACTS.items():
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            runner(args)
        sections.append((name, buffer.getvalue().rstrip()))

    lines = [
        "# Reproduction results",
        "",
        "Regenerated tables and figures of *Intra-Disk Parallelism: An "
        "Idea Whose Time Has Come* (ISCA 2008).",
        "",
        f"Scale: {args.requests} requests per simulation run.",
        "",
    ]
    for name, body in sections:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
        lines.append("")
    text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text)} bytes)")
    else:
        print(text)


def _workloads(args) -> None:
    from repro.workloads.analysis import profile_trace
    from repro.workloads.commercial import COMMERCIAL_WORKLOADS

    for workload in COMMERCIAL_WORKLOADS.values():
        trace = workload.generate(args.requests)
        profile = profile_trace(trace)
        print("\n".join(profile.summary_lines()))
        print()


def _scorecard(args) -> None:
    from repro.experiments.scorecard import (
        format_scorecard,
        run_scorecard,
    )

    print(
        format_scorecard(
            run_scorecard(requests=args.requests, n_workers=args.workers)
        )
    )


def _faults(args) -> None:
    """Fault injection and the reliability study (§8 of the paper)."""
    from repro.experiments.reliability_study import (
        default_fault_plan,
        format_mttdl_table,
        format_reliability_cdfs,
        format_reliability_summary,
        run_reliability_study,
    )
    from repro.faults.plan import load_fault_plan, write_fault_plan

    if args.validate:
        from repro.tools.validate import validate_fault_plan_file

        problems = validate_fault_plan_file(args.validate)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            raise SystemExit(1)
        print(f"{args.validate}: valid fault plan")
        return

    plan = None
    if args.plan:
        try:
            plan = load_fault_plan(args.plan)
        except (OSError, ValueError) as error:
            raise SystemExit(f"faults --plan: {error}")
    if args.emit_plan:
        horizon_ms = args.requests * 4.0
        emitted = plan if plan is not None else default_fault_plan(
            args.fault_seed, horizon_ms
        )
        write_fault_plan(emitted, args.emit_plan)
        print(f"wrote {args.emit_plan} ({len(emitted)} events)")

    result = run_reliability_study(
        requests=args.requests,
        fault_seed=args.fault_seed,
        plan=plan,
        n_workers=args.workers,
        shards=args.shards,
    )
    print(format_reliability_summary(result))
    print()
    print(format_reliability_cdfs(result))
    print()
    print(format_mttdl_table(result))


def _chaos(args) -> None:
    """Seeded chaos campaign against a live serve queue (and the
    plan plumbing mirroring ``repro faults``)."""
    import json
    import tempfile

    from repro.chaos import (
        ChaosPlan,
        load_chaos_plan,
        resolve_scenarios,
        run_campaign,
        write_chaos_plan,
    )

    if args.validate:
        from repro.tools.validate import validate_chaos_plan_file

        problems = validate_chaos_plan_file(args.validate)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            raise SystemExit(1)
        print(f"{args.validate}: valid chaos plan")
        return

    scenarios = (
        args.scenarios.split(",") if args.scenarios else None
    )
    try:
        kinds = resolve_scenarios(scenarios)
        plan = None
        if args.plan:
            plan = load_chaos_plan(args.plan)
        if args.emit_plan:
            emitted = plan if plan is not None else ChaosPlan.generate(
                args.seed, scenarios=kinds, workers=args.workers,
                lease_s=args.lease_timeout,
            )
            write_chaos_plan(emitted, args.emit_plan)
            print(f"wrote {args.emit_plan} ({len(emitted)} events)")
            plan = emitted
    except (OSError, ValueError) as error:
        raise SystemExit(f"chaos: {error}")

    queue_dir = args.queue or tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        campaign = run_campaign(
            queue_dir,
            seed=args.seed,
            scenarios=kinds,
            plan=plan,
            jobs=args.jobs,
            workers=args.workers,
            requests=args.requests,
            lease_s=args.lease_timeout,
            max_attempts=args.max_attempts,
            max_restarts=args.max_restarts,
            recovery_timeout_s=args.recovery_timeout,
            durable=args.fsync,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"chaos: {error}")
    report = campaign.to_dict()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.report}")
    counters = report["counters"]
    print(
        f"chaos: seed={report['seed']} queue={queue_dir} "
        f"plan={counters['plan_events']} events, "
        f"{counters['applied_events']} applied"
    )
    print(
        f"chaos: {counters['submitted']} submitted "
        f"(+{counters['resubmitted']} recovery resubmits), "
        f"{counters['chaos_restarts']} worker restart(s), "
        f"{counters['recovery_rounds']} recovery round(s), "
        f"{counters['quarantined_records']} record(s) + "
        f"{counters['quarantined_cache_payloads']} cache payload(s) "
        f"quarantined"
    )
    for name, held in report["invariants"].items():
        print(f"invariant {name}: {'OK' if held else 'VIOLATED'}")
    if not campaign.ok:
        for violation in campaign.violations:
            print(f"VIOLATION: {violation}")
        raise SystemExit(1)


def _bench(args) -> None:
    from repro.tools.bench import (
        format_bench,
        load_bench,
        run_bench,
        write_bench,
    )

    baseline = None
    if args.check:
        try:
            baseline = load_bench(args.check)
        except (OSError, ValueError) as error:
            raise SystemExit(f"bench --check: {error}")
        # Time the same configuration the baseline did, so the figure
        # digests are comparable; explicit flags still win.
        if args.requests == _BENCH_DEFAULT_REQUESTS:
            args.requests = baseline["requests"]
        if args.workloads is None:
            args.workloads = baseline["workloads"]
    try:
        result = run_bench(
            requests=args.requests,
            workers=args.workers,
            repeats=args.repeats,
            workloads=args.workloads,
        )
    except ValueError as error:
        raise SystemExit(f"bench: {error}")
    print(format_bench(result))
    if baseline is not None:
        from repro.tools.regress import compare_bench, format_check

        check = compare_bench(
            baseline, result, tolerance=args.tolerance
        )
        print(format_check(check))
        if args.output:
            print(f"wrote {write_bench(result, args.output)}")
        if not check.ok:
            raise SystemExit(1)
    else:
        print(f"wrote {write_bench(result, args.output)}")


def _profile(args) -> None:
    from repro.tools.profile import (
        format_compare,
        format_profile,
        run_compare,
        run_profile,
    )

    if args.compare:
        try:
            result = run_compare(args.compare, repeats=args.repeats)
        except (OSError, ValueError) as error:
            raise SystemExit(f"profile --compare: {error}")
        if args.json:
            import json

            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print(format_compare(result))
        return
    try:
        result = run_profile(
            target=args.target,
            requests=args.requests,
            workloads=args.workloads,
            top=args.top,
            sort=args.sort,
            shards=args.shards,
        )
    except ValueError as error:
        raise SystemExit(f"profile: {error}")
    if args.json:
        import json

        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(format_profile(result))


def _report_analysis(args) -> None:
    """Trace analytics: utilization, queueing, bottleneck attribution."""
    from repro.obs.analysis import analyze
    from repro.obs.report import render_text, write_html_report

    if bool(args.experiment) == bool(args.from_trace):
        raise SystemExit(
            "report: give an experiment to trace OR --from-trace PATH"
        )
    if args.from_trace:
        from repro.obs.export import read_chrome_trace

        try:
            tracer = read_chrome_trace(args.from_trace)
        except (OSError, ValueError) as error:
            raise SystemExit(f"report: {error}")
        title = f"Trace analysis: {args.from_trace}"
        # Exported timestamps round-trip through µs floats; allow the
        # last-bit wobble instead of failing the exactness check.
        tolerance = 1e-6
    else:
        from repro.obs.run import TRACEABLE_EXPERIMENTS, trace_experiment

        if args.experiment not in TRACEABLE_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {args.experiment!r}; choose from "
                f"{', '.join(sorted(TRACEABLE_EXPERIMENTS))}"
            )
        run = trace_experiment(
            args.experiment,
            requests=args.requests,
            n_workers=args.workers,
            actuators=args.actuators,
        )
        tracer = run.tracer
        title = f"Trace analysis: {args.experiment} ({args.requests} requests)"
        tolerance = 0.0
    analysis = analyze(tracer)
    if args.scope:
        analysis = analysis.filter(args.scope)
        title += f" [scope {args.scope}]"
    text = render_text(analysis, title=title, tolerance_ms=tolerance)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.html:
        path = write_html_report(
            analysis, args.html, title=title, tolerance_ms=tolerance
        )
        print(f"wrote {path}")
    failed = [
        report
        for report in analysis.reconcile(tolerance_ms=tolerance)
        if not report.ok
    ]
    if failed:
        for report in failed:
            print(f"reconciliation FAILED: {report.summary()}")
        raise SystemExit(1)


def _trace_convert(args) -> None:
    """``repro trace convert SRC DST``: trace-format interop."""
    from repro.workloads.formats import convert_trace

    if len(args.paths) != 2:
        raise SystemExit("trace convert: usage: trace convert SRC DST")
    src, dst = args.paths
    try:
        summary = convert_trace(
            src,
            dst,
            in_format=args.in_format,
            out_format=args.out_format,
            sort=args.sort,
            limit=args.limit,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"trace convert: {error}")
    skipped = summary["skipped"]
    extras = f", skipped {skipped}" if skipped else ""
    print(
        f"wrote {summary['dst']} ({summary['requests']} requests, "
        f"{summary['in_format']} -> {summary['out_format']}"
        f"{', sorted' if summary['sorted'] else ''}{extras})"
    )


def _trace_stat(args) -> None:
    """``repro trace stat PATH``: streaming trace profile."""
    import json

    from repro.workloads.formats import stat_trace

    if len(args.paths) != 1:
        raise SystemExit("trace stat: usage: trace stat PATH")
    try:
        summary = stat_trace(args.paths[0], args.in_format)
    except (OSError, ValueError) as error:
        raise SystemExit(f"trace stat: {error}")
    print(json.dumps(summary, indent=2, sort_keys=True))
    if not summary["monotone"]:
        print(
            "warning: arrivals are not monotone; convert with --sort "
            "before replay",
            file=sys.stderr,
        )


def _trace(args) -> None:
    from repro.obs.export import write_chrome_trace, write_span_jsonl
    from repro.obs.run import TRACEABLE_EXPERIMENTS, trace_experiment

    if args.experiment == "convert":
        _trace_convert(args)
        return
    if args.experiment == "stat":
        _trace_stat(args)
        return
    if args.paths:
        raise SystemExit(
            "trace: extra path arguments only apply to "
            "'trace convert'/'trace stat'"
        )
    if args.experiment not in TRACEABLE_EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{', '.join(sorted(TRACEABLE_EXPERIMENTS))}, or the "
            "trace-file tools: convert, stat"
        )
    run = trace_experiment(
        args.experiment,
        requests=args.requests,
        n_workers=args.workers,
        actuators=args.actuators,
    )
    tracer = run.tracer
    for line in run.summary:
        print(line)
    categories = ", ".join(
        f"{cat}={count}"
        for cat, count in sorted(tracer.spans_by_category().items())
    )
    print(f"spans: {len(tracer.spans)} ({categories})")
    if tracer.dropped_spans:
        print(f"dropped spans (max_spans cap): {tracer.dropped_spans}")
    print(f"figures sha256: {run.figures_sha256}")
    if args.format == "jsonl":
        path = write_span_jsonl(tracer, args.out)
    else:
        path = write_chrome_trace(tracer, args.out)
    print(f"wrote {path}")


def _spec_from_args(args) -> "JobSpec":
    from repro.serve.jobs import JobSpec

    return JobSpec(
        workload=args.workload,
        trace_path=args.trace_file,
        trace_format=args.in_format,
        system=args.system,
        requests=args.requests,
        actuators=args.actuators,
        rpm=args.rpm,
        seed=args.seed,
        disks=args.disks,
        chunk_requests=args.chunk_requests,
    )


def _serve(args) -> None:
    from repro.serve.service import serve

    try:
        codes = serve(
            args.queue,
            workers=args.workers,
            poll_interval_s=args.poll_interval,
            drain=args.drain,
            max_jobs=args.max_jobs,
            lease_s=args.lease_timeout,
            max_attempts=args.max_attempts,
            max_restarts=args.max_restarts,
            durable=args.fsync,
        )
    except ValueError as error:
        raise SystemExit(f"serve: {error}")
    print(f"serve: {len(codes)} worker(s) exited {codes}")
    if any(codes):
        raise SystemExit(1)


def _submit(args) -> None:
    import json

    from repro.serve.service import submit

    try:
        record = submit(
            args.queue,
            _spec_from_args(args),
            retries=args.retries,
            deadline_s=args.deadline,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"submit: {error}")
    print(json.dumps(record, indent=2, sort_keys=True))


def _status(args) -> None:
    import json

    from repro.serve.service import status

    try:
        summary = status(
            args.queue,
            args.job_id,
            metrics=args.metrics,
            retries=args.retries,
            deadline_s=args.deadline,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"status: {error}")
    print(json.dumps(summary, indent=2, sort_keys=True))


def _result(args) -> None:
    import json

    from repro.serve.service import result

    try:
        record, payload = result(
            args.queue,
            args.job_id,
            retries=args.retries,
            deadline_s=args.deadline,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"result: {error}")
    if payload is None:
        state = record.get("state")
        outcome = record.get("outcome") or {}
        detail = outcome.get("error", "no payload yet")
        raise SystemExit(
            f"result: job {args.job_id} is {state}: {detail}"
        )
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(payload)
        print(f"wrote {args.output} ({len(payload)} bytes)")
    else:
        print(json.dumps(json.loads(payload), indent=2, sort_keys=True))


def _metrics(args) -> None:
    """``repro metrics --queue Q``: merged worker-metrics snapshot."""
    import json
    import time

    from repro.obs.dashboard import format_dashboard, watch_metrics
    from repro.obs.metrics import render_prometheus, write_prometheus
    from repro.serve.service import merged_queue_metrics

    if args.watch:
        try:
            frames = watch_metrics(
                args.queue,
                interval_s=args.interval,
                iterations=args.iterations,
            )
        except (OSError, ValueError) as error:
            raise SystemExit(f"metrics: {error}")
        print(f"metrics: watched {frames} frame(s)")
        return
    try:
        registry, workers = merged_queue_metrics(args.queue)
    except (OSError, ValueError) as error:
        raise SystemExit(f"metrics: {error}")
    if args.format == "prom":
        text = render_prometheus(registry)
    elif args.format == "json":
        text = (
            json.dumps(registry.snapshot(), indent=2, sort_keys=True)
            + "\n"
        )
    else:
        text = (
            format_dashboard(
                registry,
                workers=workers,
                title=f"queue {args.queue}",
                now=time.time(),
            )
            + "\n"
        )
    if args.output:
        if args.format == "prom":
            write_prometheus(registry, args.output)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
        print(
            f"wrote {args.output} ({registry.sample_count()} series)"
        )
    else:
        print(text, end="")


def _simulate(args) -> None:
    from repro.experiments.configs import (
        build_hcsd_system,
        build_md_system,
    )
    from repro.experiments.runner import run_trace
    from repro.metrics.report import format_table
    from repro.sim.engine import Environment
    from repro.workloads.commercial import COMMERCIAL_WORKLOADS

    try:
        workload = COMMERCIAL_WORKLOADS[args.workload]
    except KeyError:
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from "
            f"{sorted(COMMERCIAL_WORKLOADS)}"
        )
    trace = workload.generate(args.requests)
    rows = []
    if args.md:
        env = Environment()
        result = run_trace(env, build_md_system(env, workload), trace,
                           shards=args.shards)
        rows.append(
            ("MD", result.mean_response_ms, result.percentile(90),
             result.power.total_watts)
        )
    env = Environment()
    system = build_hcsd_system(
        env, workload, actuators=args.actuators, rpm=args.rpm
    )
    result = run_trace(env, system, trace, shards=args.shards)
    rows.append(
        (
            system.label,
            result.mean_response_ms,
            result.percentile(90),
            result.power.total_watts,
        )
    )
    print(
        format_table(
            ["system", "mean_ms", "p90_ms", "power_W"],
            rows,
            title=f"{workload.name}: {args.requests} requests",
            float_format="{:.2f}",
        )
    )


def _add_retry_flags(command) -> None:
    command.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "retry transient queue errors this many times with "
            "deterministic-jitter exponential backoff (default 0)"
        ),
    )
    command.add_argument(
        "--deadline",
        type=float,
        default=None,
        help=(
            "wall-clock budget in seconds for the call including "
            "retries (default: none)"
        ),
    )


def _add_metrics_flag(command) -> None:
    command.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "collect live operational metrics for this command and "
            "write them to PATH on exit (Prometheus text exposition; "
            "a .jsonl suffix appends one JSON snapshot line instead); "
            "figures are unchanged"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Intra-Disk Parallelism' (ISCA 2008): "
            "regenerate paper artifacts and run custom simulations."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, handler: Callable, help_text: str):
        command = sub.add_parser(name, help=help_text)
        command.set_defaults(handler=handler)
        command.add_argument(
            "--requests",
            type=int,
            default=4000,
            help="requests per simulation run (default 4000)",
        )
        command.add_argument(
            "--workers",
            type=int,
            default=1,
            help=(
                "worker processes for independent runs (default 1 = "
                "in-process; 0 = all cores); results are identical for "
                "any worker count"
            ),
        )
        command.add_argument(
            "--shards",
            type=int,
            default=1,
            help=(
                "engine shards per simulation (default 1 = serial "
                "kernel); > 1 partitions each run's drives across "
                "forked event-loop shards, composing with --workers; "
                "figures are bit-identical for any shard count (see "
                "docs/parallelism.md)"
            ),
        )
        command.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help=(
                "record a request-lifecycle trace of this command and "
                "write Chrome trace-event JSON to PATH (open in "
                "ui.perfetto.dev); figures are unchanged"
            ),
        )
        _add_metrics_flag(command)
        return command

    for name in ARTIFACTS:
        add(name, ARTIFACTS[name], f"regenerate paper artifact {name}")
    add("all", _all, "regenerate every table and figure")
    results = add(
        "results", _results, "write a markdown report of every artifact"
    )
    results.add_argument(
        "-o",
        "--output",
        default=None,
        help="output file (default: stdout)",
    )
    add("workloads", _workloads, "summarise the trace models")
    bench = add(
        "bench",
        _bench,
        "benchmark the simulator on a fixed-seed workload",
    )
    bench.add_argument(
        "-o",
        "--output",
        default=None,
        help="output JSON path (default: BENCH_<date>.json in cwd)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per configuration (default 3)",
    )
    bench.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help=(
            "compare against a baseline BENCH_*.json snapshot "
            "(validating schema, figure digest and throughput) and "
            "exit non-zero on regression; the run adopts the "
            "baseline's request count unless --requests is given"
        ),
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help=(
            "minimum acceptable fraction of baseline serial "
            "events/sec for --check (default 0.5; 0 disables the "
            "throughput gate)"
        ),
    )
    bench.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        default=None,
        help=(
            "subset of commercial workloads to time (default: all); "
            "--check adopts the baseline's workload set unless given"
        ),
    )
    # The reference benchmark workload is the 6000-request limit study.
    bench.set_defaults(requests=_BENCH_DEFAULT_REQUESTS)
    profile = add(
        "profile",
        _profile,
        "cProfile the simulator hot path (bench pass or engine kernel)",
    )
    profile.add_argument(
        "--target",
        choices=["bench", "kernel"],
        default="bench",
        help=(
            "what to profile: one serial bench pass per workload, or "
            "the pure-engine kernel microbenchmark (default bench)"
        ),
    )
    profile.add_argument(
        "--top",
        type=int,
        default=25,
        help="entries to report (default 25)",
    )
    profile.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "ncalls"],
        default="cumulative",
        help="ranking key (default cumulative)",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the profile as JSON instead of a table",
    )
    profile.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        default=None,
        help="subset of commercial workloads to profile (default: all)",
    )
    profile.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help=(
            "delta mode: re-time every cell of a bench snapshot "
            "(per-workload serial passes, kernel, scheduler kinds) "
            "and report current vs baseline events/s instead of "
            "profiling"
        ),
    )
    profile.add_argument(
        "--repeats",
        type=int,
        default=1,
        help=(
            "timed passes per cell in --compare mode, best-of "
            "(default 1)"
        ),
    )
    # A profiled pass is ~4x slower than a timed one; default smaller.
    profile.set_defaults(requests=2000)
    add(
        "scorecard",
        _scorecard,
        "evaluate DESIGN.md's success criteria in one pass",
    )
    faults = add(
        "faults",
        _faults,
        "replay a seeded fault plan: degraded CDFs + MTTDL table",
    )
    faults.add_argument(
        "--plan",
        metavar="PATH",
        default=None,
        help=(
            "replay this fault-plan JSON instead of the default "
            "seeded plan"
        ),
    )
    faults.add_argument(
        "--emit-plan",
        metavar="PATH",
        default=None,
        help="write the plan the study replays to PATH, then run",
    )
    faults.add_argument(
        "--fault-seed",
        type=int,
        default=101,
        help="seed for the generated fault plan (default 101)",
    )
    faults.add_argument(
        "--validate",
        metavar="PATH",
        default=None,
        help=(
            "schema-check a fault-plan JSON and exit (non-zero if "
            "invalid); no simulation runs"
        ),
    )
    # The reliability cells run with an aggressive retry policy and a
    # structural failure mid-run; 2000 requests keeps the study quick.
    faults.set_defaults(requests=2000)

    chaos = sub.add_parser(
        "chaos",
        help=(
            "run a seeded, invariant-checked chaos campaign against "
            "the serve stack (worker kills, torn writes, ENOSPC, "
            "clock skew, hangs)"
        ),
    )
    chaos.set_defaults(handler=_chaos)
    chaos.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help=(
            "queue directory to campaign against (default: a fresh "
            "temporary directory; never point this at a production "
            "queue)"
        ),
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="chaos-plan and job-spec seed (default 0)",
    )
    chaos.add_argument(
        "--scenarios",
        metavar="KINDS",
        default=None,
        help=(
            "comma-separated fault kinds: kill, torn-write, enospc, "
            "clock-skew, hang (default: all)"
        ),
    )
    chaos.add_argument(
        "--plan",
        metavar="PATH",
        default=None,
        help="replay this chaos-plan JSON instead of generating one",
    )
    chaos.add_argument(
        "--emit-plan",
        metavar="PATH",
        default=None,
        help="write the plan the campaign replays to PATH, then run",
    )
    chaos.add_argument(
        "--validate",
        metavar="PATH",
        default=None,
        help=(
            "schema-check a chaos-plan JSON and exit (non-zero if "
            "invalid); no campaign runs"
        ),
    )
    chaos.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the JSON campaign report (plan, applied events, "
        "invariants, counters) to PATH",
    )
    chaos.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="unique job specs to submit (default 4)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=2,
        help="serve worker processes (default 2)",
    )
    chaos.add_argument(
        "--requests",
        type=int,
        default=150,
        help="requests per job spec (default 150; campaigns exercise "
        "the queue, not the simulator)",
    )
    chaos.add_argument(
        "--lease-timeout",
        type=float,
        default=2.0,
        help="claim lease in seconds (default 2; short so hang/skew "
        "faults force requeues within the campaign)",
    )
    chaos.add_argument(
        "--max-attempts",
        type=int,
        default=8,
        help="requeue attempts before a job is failed (default 8)",
    )
    chaos.add_argument(
        "--max-restarts",
        type=int,
        default=6,
        help="supervisor restarts of crashed workers (default 6)",
    )
    chaos.add_argument(
        "--recovery-timeout",
        type=float,
        default=120.0,
        help="recovery-phase wall-clock budget in seconds (default "
        "120; exceeding it is an invariant violation)",
    )
    chaos.add_argument(
        "--fsync",
        action="store_true",
        help="run the queue with durable (fsynced) writes; off by "
        "default to keep campaigns fast",
    )
    _add_metrics_flag(chaos)

    listing = sub.add_parser("list", help="list available artifacts")
    listing.set_defaults(handler=_list)

    trace = sub.add_parser(
        "trace",
        help=(
            "run an experiment with request-lifecycle tracing and "
            "export the trace"
        ),
    )
    trace.set_defaults(handler=_trace)
    trace.add_argument(
        "experiment",
        help=(
            "experiment to trace: limit_study | parallel_study | "
            "bottleneck | rpm_study | rebuild"
        ),
    )
    trace.add_argument(
        "-o",
        "--out",
        default="trace.json",
        help="output path (default trace.json)",
    )
    trace.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help=(
            "chrome = trace-event JSON for Perfetto (default); "
            "jsonl = one span per line"
        ),
    )
    trace.add_argument(
        "--requests",
        type=int,
        default=1000,
        help="requests per traced run (default 1000)",
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes (default 1; 0 = all cores); worker "
            "traces are merged, figures identical for any count"
        ),
    )
    trace.add_argument(
        "--actuators",
        type=int,
        default=4,
        help=(
            "arm count of the supplementary HC-SD-SA(n) runs "
            "(limit_study) and RAID members (rebuild); default 4"
        ),
    )
    trace.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "for 'trace convert SRC DST' / 'trace stat PATH': the "
            "trace files to convert or profile"
        ),
    )
    trace.add_argument(
        "--in-format",
        choices=("disksim", "spc1", "blktrace"),
        default=None,
        help=(
            "input trace format for convert/stat (default: detect "
            "from the file suffix)"
        ),
    )
    trace.add_argument(
        "--out-format",
        choices=("disksim", "spc1"),
        default=None,
        help=(
            "output format for convert (default: detect from the "
            "destination suffix; blktrace is read-only)"
        ),
    )
    trace.add_argument(
        "--sort",
        action="store_true",
        help=(
            "sort converted requests by arrival time (materializes "
            "the trace in memory; required before replaying a "
            "non-monotone trace)"
        ),
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=None,
        help="convert at most this many requests",
    )
    _add_metrics_flag(trace)

    report = sub.add_parser(
        "report",
        help=(
            "trace analytics: per-arm utilization, queue depth, "
            "phase breakdowns and bottleneck attribution, as text "
            "and/or self-contained HTML"
        ),
    )
    report.set_defaults(handler=_report_analysis)
    report.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help=(
            "experiment to trace and analyse: limit_study | "
            "parallel_study | bottleneck | rpm_study | rebuild "
            "(omit with --from-trace)"
        ),
    )
    report.add_argument(
        "--from-trace",
        metavar="PATH",
        default=None,
        help=(
            "analyse a previously exported Chrome trace-event JSON "
            "instead of running an experiment"
        ),
    )
    report.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the plain-text report here (default: stdout)",
    )
    report.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="also write a self-contained HTML report to PATH",
    )
    report.add_argument(
        "--scope",
        default=None,
        help=(
            "restrict the analysis to run scopes with this process "
            "prefix (e.g. 'HC-SD' or 'MD-websearch')"
        ),
    )
    report.add_argument(
        "--requests",
        type=int,
        default=1000,
        help="requests per traced run (default 1000)",
    )
    report.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the traced run (default 1)",
    )
    report.add_argument(
        "--actuators",
        type=int,
        default=4,
        help=(
            "arm count of the supplementary HC-SD-SA(n) runs "
            "(limit_study) and RAID members (rebuild); default 4"
        ),
    )
    _add_metrics_flag(report)

    def add_queue(command):
        command.add_argument(
            "--queue",
            metavar="DIR",
            default="queue",
            help="job-queue directory (default ./queue)",
        )

    serve = sub.add_parser(
        "serve",
        help=(
            "run N worker processes over a persistent on-disk job "
            "queue (crash-safe claims, content-addressed result cache)"
        ),
    )
    serve.set_defaults(handler=_serve)
    add_queue(serve)
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes (default 2; 1 runs in-process)",
    )
    serve.add_argument(
        "--drain",
        action="store_true",
        help="exit when the queue is empty instead of polling forever",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="jobs per worker before it exits (default: unlimited)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="idle polling interval in seconds (default 0.2)",
    )
    serve.add_argument(
        "--lease-timeout",
        type=float,
        default=3600.0,
        help=(
            "seconds before a claimed job from a crashed worker is "
            "requeued (default 3600)"
        ),
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="requeue attempts before a job is failed (default 3)",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        help=(
            "restart a crashed (nonzero-exit) worker up to this many "
            "times across the pool (default 0; gracefully drained "
            "workers are never restarted)"
        ),
    )
    serve.add_argument(
        "--no-fsync",
        dest="fsync",
        action="store_false",
        default=True,
        help=(
            "skip fsync on queue record writes (faster, but records "
            "may be lost or torn on power failure; fine for "
            "scratch/test queues)"
        ),
    )
    _add_metrics_flag(serve)

    submit = sub.add_parser(
        "submit",
        help=(
            "submit a simulation job to a queue directory; duplicate "
            "(config, trace, code) submissions hit the result cache"
        ),
    )
    submit.set_defaults(handler=_submit)
    add_queue(submit)
    submit.add_argument(
        "--workload",
        default=None,
        help=(
            "generated workload to replay: financial | websearch | "
            "tpcc | tpch (mutually exclusive with --trace-file)"
        ),
    )
    submit.add_argument(
        "--trace-file",
        metavar="PATH",
        default=None,
        help=(
            "replay this trace file (disksim/spc1/blktrace, "
            "optionally .gz) via the streaming pipeline"
        ),
    )
    submit.add_argument(
        "--in-format",
        choices=("disksim", "spc1", "blktrace"),
        default=None,
        help="trace-file format (default: detect from suffix)",
    )
    submit.add_argument(
        "--system",
        choices=("hcsd", "md"),
        default="hcsd",
        help="system to simulate (default hcsd)",
    )
    submit.add_argument(
        "--requests",
        type=int,
        default=4000,
        help=(
            "requests for --workload jobs, or a replay limit for "
            "--trace-file jobs (default 4000)"
        ),
    )
    submit.add_argument(
        "--actuators", type=int, default=1, help="arm assemblies (1-4)"
    )
    submit.add_argument(
        "--rpm", type=float, default=None, help="override spindle RPM"
    )
    submit.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload generator seed override",
    )
    submit.add_argument(
        "--disks",
        type=int,
        default=1,
        help=(
            "drives the replayed trace addresses are wrapped onto "
            "(trace-file jobs; default 1)"
        ),
    )
    submit.add_argument(
        "--chunk-requests",
        type=int,
        default=65536,
        help=(
            "streamed replay chunk size (execution knob; excluded "
            "from the cache key; default 65536)"
        ),
    )
    _add_retry_flags(submit)
    _add_metrics_flag(submit)

    status_cmd = sub.add_parser(
        "status",
        help="queue counts, or one job's record with a job id",
    )
    status_cmd.set_defaults(handler=_status)
    add_queue(status_cmd)
    status_cmd.add_argument(
        "job_id",
        nargs="?",
        default=None,
        help="job id to inspect (default: whole-queue summary)",
    )
    status_cmd.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "include the merged worker-metrics snapshot and worker "
            "heartbeats in the summary"
        ),
    )
    _add_retry_flags(status_cmd)

    result_cmd = sub.add_parser(
        "result",
        help="fetch a finished job's canonical result payload",
    )
    result_cmd.set_defaults(handler=_result)
    add_queue(result_cmd)
    result_cmd.add_argument("job_id", help="job id to fetch")
    result_cmd.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the payload bytes here (default: pretty-print)",
    )
    _add_retry_flags(result_cmd)

    metrics_cmd = sub.add_parser(
        "metrics",
        help=(
            "merged live-metrics snapshot of a serve queue: one-shot "
            "table/Prometheus/JSON, or a --watch terminal dashboard"
        ),
    )
    metrics_cmd.set_defaults(handler=_metrics)
    add_queue(metrics_cmd)
    metrics_cmd.add_argument(
        "--watch",
        action="store_true",
        help=(
            "poll the queue's worker snapshots and redraw a terminal "
            "dashboard until interrupted"
        ),
    )
    metrics_cmd.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="--watch refresh interval in seconds (default 2)",
    )
    metrics_cmd.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="--watch frame count (default: until interrupted)",
    )
    metrics_cmd.add_argument(
        "--format",
        choices=("table", "prom", "json"),
        default="table",
        help=(
            "one-shot output: human table (default), Prometheus text "
            "exposition, or the JSON snapshot"
        ),
    )
    metrics_cmd.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the snapshot here instead of stdout",
    )

    simulate = add("simulate", _simulate, "run one custom configuration")
    simulate.add_argument(
        "--workload",
        default="websearch",
        help="financial | websearch | tpcc | tpch",
    )
    simulate.add_argument(
        "--actuators", type=int, default=1, help="arm assemblies (1-4)"
    )
    simulate.add_argument(
        "--rpm", type=float, default=None, help="override spindle RPM"
    )
    simulate.add_argument(
        "--md",
        action="store_true",
        help="also simulate the original multi-disk array",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if isinstance(metrics_path, bool):
        # ``status --metrics`` is a boolean summary toggle handled by
        # its own handler, not an ambient recording session.
        metrics_path = None

    def invoke() -> None:
        if metrics_path:
            import time

            from repro.obs.metrics import (
                append_snapshot_jsonl,
                metrics_session,
                write_prometheus,
            )

            with metrics_session() as registry:
                args.handler(args)
            if str(metrics_path).endswith(".jsonl"):
                append_snapshot_jsonl(
                    registry,
                    metrics_path,
                    now=time.time(),
                    meta={"command": args.command},
                )
            else:
                write_prometheus(registry, metrics_path)
            print(
                f"wrote {metrics_path} "
                f"({registry.sample_count()} series)"
            )
        else:
            args.handler(args)

    if trace_path:
        from repro.obs.export import write_chrome_trace
        from repro.obs.tracer import tracing

        with tracing() as tracer:
            invoke()
        write_chrome_trace(tracer, trace_path)
        print(f"wrote {trace_path} ({len(tracer.spans)} spans)")
    else:
        invoke()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
