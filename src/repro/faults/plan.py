"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent`
instants.  Plans come from two sources, freely mixed:

- *scheduled*: events written out explicitly (tests, regression
  scenarios, hand-built what-ifs);
- *generated*: :meth:`FaultPlan.generate` draws exponential
  inter-arrival times from a private ``random.Random(seed)`` with a
  fixed draw order, so a given ``(seed, rates, horizon)`` always
  yields the same event list — on every platform, in every worker
  process.

Plans serialise to a small JSON document (``{"version": 1, "events":
[...]}``) so they can be checked into CI, attached to bug reports, and
schema-validated by ``repro.tools.validate``.  The simulation side
never draws randomness: the *plan* is the randomness, fixed before the
run starts, which is what makes fault runs replayable bit for bit.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "load_fault_plan",
    "validate_fault_plan",
    "write_fault_plan",
]

#: The recognised fault kinds, in the canonical generation order.
#:
#: - ``transient``: a media error recoverable by retry revolutions.
#: - ``latent``: a latent sector error; severity (``attempts``) is
#:   sized to exceed any sane retry budget, so the access surfaces as
#:   unrecovered and the robustness above the drive must cope.
#: - ``arm_failure``: an actuator assembly is deconfigured
#:   (:meth:`ParallelDisk.deconfigure_arm`); SPTF degrades to the
#:   survivors.
#: - ``drive_failure``: a member drive fails
#:   (:meth:`DiskArray.fail_drive`); redundant layouts enter degraded
#:   mode, non-redundant layouts abort outstanding requests.
#: - ``spare_arrival``: a hot spare becomes available; if the array is
#:   degraded, rebuild starts immediately.
FAULT_KINDS = (
    "transient",
    "latent",
    "arm_failure",
    "drive_failure",
    "spare_arrival",
)

#: Severity assigned to generated latent sector errors: enough failed
#: attempts that no per-revolution retry budget recovers the access.
LATENT_ATTEMPTS = 64


@dataclass(frozen=True)
class FaultEvent:
    """One fault instant in simulated time.

    ``drive`` indexes the target system's member list; ``arm`` is only
    meaningful for ``arm_failure``; ``lba``/``attempts`` only for the
    media-error kinds (``attempts`` is the number of failed read
    attempts the error costs before the retry budget is consulted).
    """

    time_ms: float
    kind: str
    drive: int = 0
    arm: Optional[int] = None
    lba: Optional[int] = None
    attempts: int = 1

    def __post_init__(self) -> None:
        problems = _validate_event(self.to_dict(), index=None)
        if problems:
            raise ValueError("; ".join(problems))

    def to_dict(self) -> Dict:
        payload: Dict = {"time_ms": self.time_ms, "kind": self.kind,
                         "drive": self.drive}
        if self.arm is not None:
            payload["arm"] = self.arm
        if self.lba is not None:
            payload["lba"] = self.lba
        if self.attempts != 1:
            payload["attempts"] = self.attempts
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultEvent":
        return cls(
            time_ms=float(payload["time_ms"]),
            kind=payload["kind"],
            drive=int(payload.get("drive", 0)),
            arm=payload.get("arm"),
            lba=payload.get("lba"),
            attempts=int(payload.get("attempts", 1)),
        )


def _validate_event(payload, index: Optional[int]) -> List[str]:
    where = "event" if index is None else f"events[{index}]"
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"{where}: expected an object, got {type(payload).__name__}"]
    kind = payload.get("kind")
    if kind not in FAULT_KINDS:
        problems.append(
            f"{where}: kind {kind!r} not one of {list(FAULT_KINDS)}"
        )
    time_ms = payload.get("time_ms")
    if not isinstance(time_ms, (int, float)) or isinstance(time_ms, bool):
        problems.append(f"{where}: time_ms must be a number")
    elif not math.isfinite(time_ms) or time_ms < 0.0:
        problems.append(
            f"{where}: time_ms must be finite and >= 0, got {time_ms}"
        )
    drive = payload.get("drive", 0)
    if not isinstance(drive, int) or isinstance(drive, bool) or drive < 0:
        problems.append(f"{where}: drive must be an int >= 0, got {drive!r}")
    arm = payload.get("arm")
    if arm is not None and (
        not isinstance(arm, int) or isinstance(arm, bool) or arm < 0
    ):
        problems.append(f"{where}: arm must be an int >= 0 or null")
    if kind == "arm_failure" and arm is None:
        problems.append(f"{where}: arm_failure requires an arm index")
    lba = payload.get("lba")
    if lba is not None and (
        not isinstance(lba, int) or isinstance(lba, bool) or lba < 0
    ):
        problems.append(f"{where}: lba must be an int >= 0 or null")
    attempts = payload.get("attempts", 1)
    if (
        not isinstance(attempts, int)
        or isinstance(attempts, bool)
        or attempts < 1
    ):
        problems.append(
            f"{where}: attempts must be an int >= 1, got {attempts!r}"
        )
    unknown = set(payload) - {
        "time_ms", "kind", "drive", "arm", "lba", "attempts"
    }
    if unknown:
        problems.append(f"{where}: unknown fields {sorted(unknown)}")
    return problems


def validate_fault_plan(payload) -> List[str]:
    """Schema-check a fault-plan document; returns a problem list.

    An empty list means the payload is a valid plan.  Used by
    ``repro.tools.validate`` and the ``--validate`` CLI path.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"plan: expected an object, got {type(payload).__name__}"]
    version = payload.get("version")
    if version != 1:
        problems.append(f"plan: version must be 1, got {version!r}")
    events = payload.get("events")
    if not isinstance(events, list):
        problems.append("plan: events must be a list")
        return problems
    for index, event in enumerate(events):
        problems.extend(_validate_event(event, index))
    seed = payload.get("seed")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool)):
        problems.append(f"plan: seed must be an int or null, got {seed!r}")
    unknown = set(payload) - {"version", "events", "seed"}
    if unknown:
        problems.append(f"plan: unknown fields {sorted(unknown)}")
    return problems


class FaultPlan:
    """An ordered, replayable list of fault events.

    Events are stored sorted by ``(time_ms, original position)`` so
    replay order is total and independent of how the plan was
    assembled.  ``seed`` is metadata recording how a generated plan
    was drawn; it does not affect replay.
    """

    def __init__(self, events: Optional[List[FaultEvent]] = None,
                 seed: Optional[int] = None):
        events = list(events or [])
        indexed = sorted(
            enumerate(events), key=lambda pair: (pair[1].time_ms, pair[0])
        )
        self.events: List[FaultEvent] = [event for _, event in indexed]
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.events == other.events

    def counts_by_kind(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in FAULT_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The no-fault plan: replaying it changes nothing."""
        return cls([])

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_ms: float,
        drives: int = 1,
        arms_per_drive: int = 1,
        capacity_sectors: Optional[int] = None,
        transient_mtbf_ms: Optional[float] = None,
        latent_mtbf_ms: Optional[float] = None,
        arm_mtbf_ms: Optional[float] = None,
        drive_mtbf_ms: Optional[float] = None,
        spare_delay_ms: float = 0.0,
        max_error_attempts: int = 2,
    ) -> "FaultPlan":
        """Draw a stochastic plan with a fixed, documented draw order.

        For each enabled kind (an ``*_mtbf_ms`` of ``None`` disables
        it), exponential inter-arrival times are drawn per target in a
        fixed nesting order — kind, then drive, then arm — so the
        event list is a pure function of the arguments.  At most one
        ``drive_failure`` is generated (a second failure of a RAID-5
        array loses data and the primitives reject it); its hot spare
        arrives ``spare_delay_ms`` later when that is positive.
        ``capacity_sectors`` makes media errors target concrete
        sectors; without it they hit the next access wherever it
        lands.
        """
        import random

        if horizon_ms <= 0.0:
            raise ValueError(f"horizon_ms must be positive, got {horizon_ms}")
        if drives < 1 or arms_per_drive < 1:
            raise ValueError("drives and arms_per_drive must be >= 1")
        if max_error_attempts < 1:
            raise ValueError("max_error_attempts must be >= 1")
        rng = random.Random(seed)
        events: List[FaultEvent] = []

        def arrivals(mtbf_ms: float):
            at = rng.expovariate(1.0 / mtbf_ms)
            while at < horizon_ms:
                yield at
                at += rng.expovariate(1.0 / mtbf_ms)

        if transient_mtbf_ms is not None:
            for drive in range(drives):
                for at in arrivals(transient_mtbf_ms):
                    lba = (
                        rng.randrange(capacity_sectors)
                        if capacity_sectors
                        else None
                    )
                    events.append(FaultEvent(
                        time_ms=at,
                        kind="transient",
                        drive=drive,
                        lba=lba,
                        attempts=rng.randint(1, max_error_attempts),
                    ))
        if latent_mtbf_ms is not None:
            for drive in range(drives):
                for at in arrivals(latent_mtbf_ms):
                    lba = (
                        rng.randrange(capacity_sectors)
                        if capacity_sectors
                        else None
                    )
                    events.append(FaultEvent(
                        time_ms=at,
                        kind="latent",
                        drive=drive,
                        lba=lba,
                        attempts=LATENT_ATTEMPTS,
                    ))
        if arm_mtbf_ms is not None:
            for drive in range(drives):
                for arm in range(arms_per_drive):
                    for at in arrivals(arm_mtbf_ms):
                        events.append(FaultEvent(
                            time_ms=at,
                            kind="arm_failure",
                            drive=drive,
                            arm=arm,
                        ))
        if drive_mtbf_ms is not None:
            candidates = []
            for drive in range(drives):
                at = rng.expovariate(1.0 / drive_mtbf_ms)
                if at < horizon_ms:
                    candidates.append((at, drive))
            if candidates:
                at, drive = min(candidates)
                events.append(FaultEvent(
                    time_ms=at, kind="drive_failure", drive=drive
                ))
                if spare_delay_ms > 0.0:
                    events.append(FaultEvent(
                        time_ms=at + spare_delay_ms,
                        kind="spare_arrival",
                        drive=drive,
                    ))
        return cls(events, seed=seed)

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict:
        payload: Dict = {
            "version": 1,
            "events": [event.to_dict() for event in self.events],
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        problems = validate_fault_plan(payload)
        if problems:
            raise ValueError(
                "invalid fault plan: " + "; ".join(problems)
            )
        return cls(
            [FaultEvent.from_dict(event) for event in payload["events"]],
            seed=payload.get("seed"),
        )


def write_fault_plan(plan: FaultPlan, path: str) -> str:
    """Serialise ``plan`` to ``path`` as canonical JSON."""
    with open(path, "w", encoding="ascii") as handle:
        json.dump(plan.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_fault_plan(path: str) -> FaultPlan:
    """Load and validate a fault plan from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return FaultPlan.from_dict(payload)
