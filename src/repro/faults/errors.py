"""Exception types for the fault-injection and robustness layer."""

from __future__ import annotations

__all__ = ["DataLossError", "FaultInjectionError", "MediaError"]


class MediaError(Exception):
    """A media access failed permanently (retries exhausted)."""


class DataLossError(Exception):
    """Data became unrecoverable (e.g. a member of a non-redundant
    layout failed with requests outstanding)."""


class FaultInjectionError(Exception):
    """A fault event could not be applied to the target system."""
