"""Analytic MTTDL and availability models for the studied configs.

Standard Markov-model results (Patterson/Gibson/Katz for the array
cases), plus a two-stage model for the arm-redundant intra-disk
parallel drive.  All times are hours; rates are per hour.

The interesting comparison for the paper is the last row: a single
HC-SD-SA(n) drive replaces the whole multi-disk array, so a *drive*
failure loses data outright (MTTDL ≈ the single-drive case), but the
dominant *component* failures — arm assemblies — no longer kill the
device: the drive degrades SA(n) → SA(n-1) → … → SA(1) and only loses
data when every assembly has failed (or the spindle/electronics die).
The model therefore splits the drive failure rate into an arm part
(deconfigurable, survivable) and a non-arm part (fatal), which is
exactly the reliability argument of the paper's §8.
"""

from __future__ import annotations

__all__ = [
    "availability",
    "mttdl_parallel_drive",
    "mttdl_raid0",
    "mttdl_raid5",
    "mttdl_single",
]


def mttdl_single(mttf_hours: float) -> float:
    """One non-redundant drive: MTTDL is just its MTTF."""
    if mttf_hours <= 0.0:
        raise ValueError("mttf_hours must be positive")
    return mttf_hours


def mttdl_raid0(mttf_hours: float, disks: int) -> float:
    """Striping with no redundancy: any of N failures loses data."""
    if disks < 1:
        raise ValueError("disks must be >= 1")
    return mttdl_single(mttf_hours) / disks


def mttdl_raid5(mttf_hours: float, disks: int, mttr_hours: float) -> float:
    """RAID-5: data is lost when a second drive fails mid-repair.

    The classic result MTTF² / (N·(N−1)·MTTR), valid while
    MTTR ≪ MTTF.
    """
    if disks < 2:
        raise ValueError("RAID-5 needs at least 2 disks")
    if mttr_hours <= 0.0:
        raise ValueError("mttr_hours must be positive")
    if mttf_hours <= 0.0:
        raise ValueError("mttf_hours must be positive")
    return mttf_hours ** 2 / (disks * (disks - 1) * mttr_hours)


def mttdl_parallel_drive(
    mttf_hours: float,
    arms: int,
    arm_failure_fraction: float = 0.4,
) -> float:
    """An arm-redundant HC-SD-SA(n) drive with graceful deconfiguration.

    The drive's overall failure rate ``1/mttf`` is split: a fraction
    ``arm_failure_fraction`` is attributable to head/arm-assembly
    faults (survivable — firmware deconfigures the assembly and the
    drive degrades to SA(n-1)), the rest to spindle, electronics and
    media (fatal).  Data is lost when either the fatal part fires or
    all ``n`` assemblies have failed in sequence; the expected time to
    exhaust the assemblies is the coupon-collector-style sum
    Σ_{k=1..n} 1/(k·λ_arm) (with k healthy arms, the next arm fault
    arrives at rate k·λ_arm).

    With ``arms=1`` this reduces exactly to :func:`mttdl_single`.
    """
    if arms < 1:
        raise ValueError("arms must be >= 1")
    if not 0.0 < arm_failure_fraction < 1.0:
        raise ValueError("arm_failure_fraction must be in (0, 1)")
    if mttf_hours <= 0.0:
        raise ValueError("mttf_hours must be positive")
    total_rate = 1.0 / mttf_hours
    arm_rate = total_rate * arm_failure_fraction
    fatal_rate = total_rate * (1.0 - arm_failure_fraction)
    # Expected time for all n assemblies to fail, k healthy -> k*λ.
    all_arms_hours = sum(
        1.0 / (k * arm_rate) for k in range(1, arms + 1)
    )
    return 1.0 / (fatal_rate + 1.0 / all_arms_hours)


def availability(mttdl_hours: float, mttr_hours: float) -> float:
    """Steady-state availability MTTDL / (MTTDL + MTTR)."""
    if mttdl_hours <= 0.0 or mttr_hours <= 0.0:
        raise ValueError("mttdl_hours and mttr_hours must be positive")
    return mttdl_hours / (mttdl_hours + mttr_hours)
