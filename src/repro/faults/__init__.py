"""Deterministic fault injection and request-path robustness.

The paper's discussion of intra-disk parallelism (§8) raises the
obvious objection to replacing a multi-disk array with one
multi-actuator drive: more arm assemblies mean more independent
failure points per spindle, and the iso-performance comparison is
only fair if the parallel drive can also survive and degrade
gracefully.  This package supplies the machinery to ask that question
quantitatively:

- :mod:`repro.faults.plan` — a seeded, deterministic
  :class:`~repro.faults.plan.FaultPlan` of scheduled and
  stochastically generated fault events (transient media errors,
  latent sector errors, arm failures, whole-drive failures, hot-spare
  arrival), serialisable to JSON.
- :mod:`repro.faults.injector` — a
  :class:`~repro.faults.injector.FaultInjector` simulation process
  that replays a plan against a live system, triggering the existing
  primitives (``inject_media_error``, ``deconfigure_arm``,
  ``fail_drive``, ``rebuild``) at simulated-time instants.
- :mod:`repro.faults.policy` — the
  :class:`~repro.faults.policy.RetryPolicy` shared by the drive
  service loop (bounded per-revolution media retries) and the array
  controller (slice resubmission with timeout and backoff).
- :mod:`repro.faults.errors` — exception types raised on the request
  path when robustness is exhausted.
- :mod:`repro.faults.mttdl` — the analytic MTTDL/availability model
  reported by the reliability study.

Determinism contract: a given plan replayed against a given seeded
simulation produces bit-identical figures, serial or under
``sweep()``; an *empty* plan leaves every figure bit-identical to a
run without the faults layer at all.
"""

from repro.faults.errors import DataLossError, FaultInjectionError, MediaError
from repro.faults.injector import FaultInjector
from repro.faults.mttdl import (
    availability,
    mttdl_parallel_drive,
    mttdl_raid0,
    mttdl_raid5,
    mttdl_single,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    load_fault_plan,
    validate_fault_plan,
    write_fault_plan,
)
from repro.faults.policy import DEFAULT_MEDIA_RETRY, ArmedMediaFault, RetryPolicy

__all__ = [
    "ArmedMediaFault",
    "DataLossError",
    "DEFAULT_MEDIA_RETRY",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "MediaError",
    "RetryPolicy",
    "availability",
    "load_fault_plan",
    "mttdl_parallel_drive",
    "mttdl_raid0",
    "mttdl_raid5",
    "mttdl_single",
    "validate_fault_plan",
    "write_fault_plan",
]
