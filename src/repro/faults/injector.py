"""Replay a :class:`~repro.faults.plan.FaultPlan` against a live system.

The injector is an ordinary simulation process: it sleeps until each
event's instant and then triggers the corresponding existing
primitive — ``inject_media_error`` on a drive, ``deconfigure_arm`` on
a :class:`~repro.core.parallel_disk.ParallelDisk`, ``fail_drive`` /
``rebuild`` on a :class:`~repro.raid.array.DiskArray`.  Nothing about
the request path changes until a fault actually fires, so a run with
an empty plan is bit-identical to a run without an injector at all.

Targets are duck-typed (anything with the drive/array interface
works), which keeps this module free of imports from
:mod:`repro.disk`/:mod:`repro.raid` and the package import-cycle-free.

One plan can be replayed against *different* systems — that is the
whole point of the reliability study, which feeds the same seeded plan
to a 4-drive array and to a single SA(4) drive.  Because the systems
differ in shape (member counts, arm counts, redundancy), the injector
supports a ``kinds`` allowlist and a non-``strict`` mode in which
inapplicable events are skipped and logged rather than raised; the
``applied``/``skipped`` logs make the divergence auditable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.faults.errors import FaultInjectionError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs.tracer import tracer_for

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's events against an array and/or bare drives.

    Parameters
    ----------
    env:
        The simulation environment.
    plan:
        The fault plan to replay (events fire in plan order).
    array:
        Optional :class:`DiskArray`; enables ``drive_failure`` and
        ``spare_arrival`` and resolves drive indices against the
        array's *live* member list (so post-rebuild members are hit,
        not the replaced drive).
    drives:
        Drive targets when no array is involved.
    spare_factory:
        Zero-argument callable returning a fresh replacement drive;
        required for ``spare_arrival`` to start a rebuild.
    kinds:
        Optional allowlist of event kinds; events of other kinds are
        skipped (never an error — filtering is how one plan serves
        differently-shaped systems).
    strict:
        When True (default), an event that cannot be applied raises
        :class:`FaultInjectionError` and fails the run; when False it
        is recorded in :attr:`skipped` and the replay continues.
    drive_map:
        ``"strict"`` requires event drive indices to be in range;
        ``"modulo"`` wraps them (used to replay an array-shaped plan
        against a single intra-disk parallel drive, which absorbs the
        media faults of every member it replaces).
    """

    def __init__(
        self,
        env,
        plan: FaultPlan,
        array=None,
        drives: Optional[Sequence] = None,
        spare_factory=None,
        kinds: Optional[Sequence[str]] = None,
        strict: bool = True,
        drive_map: str = "strict",
    ):
        if array is None and drives is None:
            raise ValueError("injector needs an array or drives to target")
        if drive_map not in ("strict", "modulo"):
            raise ValueError(
                f"drive_map must be 'strict' or 'modulo', got {drive_map!r}"
            )
        self.env = env
        self.plan = plan
        self.array = array
        self._drives = list(drives) if drives is not None else None
        self.spare_factory = spare_factory
        self.kinds = tuple(kinds) if kinds is not None else None
        self.strict = strict
        self.drive_map = drive_map
        self.label = getattr(array, "label", None) or "drives"
        self.tracer = tracer_for(env)
        #: Events applied, in replay order.
        self.applied: List[FaultEvent] = []
        #: Events not applied, with the reason.
        self.skipped: List[Tuple[FaultEvent, str]] = []
        #: Rebuild processes started by ``spare_arrival`` events.
        self.rebuilds: List = []
        if array is not None and any(
            event.kind in ("drive_failure", "spare_arrival")
            for event in plan.events
            if self.kinds is None or event.kind in self.kinds
        ):
            # Drive failures abort in-flight requests and rebuilds read
            # survivors mid-run: the sharded kernel must interleave
            # those reactions with completions in global time order.
            array.declare_external_feedback()
        self.process = env.process(self._replay()) if len(plan) else None

    # -- replay -------------------------------------------------------------
    def _replay(self):
        for event in self.plan.events:
            delay = event.time_ms - self.env.now
            if delay > 0.0:
                yield self.env.timeout(delay)
            self._fire(event)

    def _fire(self, event: FaultEvent) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            self._skip(event, "kind filtered out")
            return
        try:
            reason = self._apply(event)
        except FaultInjectionError:
            raise
        except (ValueError, RuntimeError) as exc:
            reason = str(exc)
        if reason is None:
            self.applied.append(event)
            if self.tracer.enabled:
                self.tracer.instant(
                    f"fault-{event.kind}",
                    self.env.now,
                    (self.label, "faults"),
                    args=event.to_dict(),
                )
                self.tracer.telemetry.counter(
                    f"faults.injected.{event.kind}"
                ).inc()
        else:
            self._skip(event, reason)

    def _skip(self, event: FaultEvent, reason: str) -> None:
        if self.strict and reason != "kind filtered out":
            raise FaultInjectionError(
                f"{self.label}: cannot apply {event.kind} at "
                f"t={event.time_ms:.3f} ms: {reason}"
            )
        self.skipped.append((event, reason))
        if self.tracer.enabled:
            self.tracer.telemetry.counter("faults.skipped").inc()

    # -- application --------------------------------------------------------
    def _targets(self) -> List:
        if self.array is not None:
            return list(self.array.drives)
        return list(self._drives)

    def _resolve_drive(self, index: int):
        targets = self._targets()
        if self.drive_map == "modulo":
            return targets[index % len(targets)]
        if not 0 <= index < len(targets):
            raise ValueError(
                f"drive index {index} out of range [0, {len(targets)})"
            )
        return targets[index]

    def _apply(self, event: FaultEvent) -> Optional[str]:
        """Apply one event; returns None on success, else a skip reason."""
        if event.kind in ("transient", "latent"):
            drive = self._resolve_drive(event.drive)
            if not hasattr(drive, "inject_media_error"):
                return f"target {drive!r} cannot take media errors"
            lba = event.lba
            if (
                lba is not None
                and lba >= drive.geometry.total_sectors
            ):
                return (
                    f"lba {lba} beyond drive capacity "
                    f"{drive.geometry.total_sectors}"
                )
            drive.inject_media_error(attempts=event.attempts, lba=lba)
            return None
        if event.kind == "arm_failure":
            drive = self._resolve_drive(event.drive)
            if not hasattr(drive, "deconfigure_arm"):
                return "target drive has no deconfigurable arms"
            if drive.healthy_arm_count <= 1:
                return "last healthy arm cannot be deconfigured"
            drive.deconfigure_arm(event.arm)
            return None
        if event.kind == "drive_failure":
            if self.array is None:
                return "drive_failure needs an array target"
            self.array.fail_drive(event.drive)
            return None
        if event.kind == "spare_arrival":
            if self.array is None:
                return "spare_arrival needs an array target"
            if self.spare_factory is None:
                return "no spare_factory configured"
            if self.array.failed_disk is None:
                return "array is not degraded"
            self.rebuilds.append(
                self.array.rebuild(self.spare_factory())
            )
            return None
        return f"unknown kind {event.kind!r}"
