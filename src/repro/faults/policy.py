"""Retry/timeout/backoff policy shared by drives and the array.

A :class:`RetryPolicy` is deliberately tiny and frozen: it is hashed
into experiment cache keys and pickled across ``sweep()`` worker
processes, so it must be immutable and cheaply comparable.

Two layers consume it:

- The drive service loop retries *transient media errors* in place:
  each retry costs one full platter revolution (the sector must come
  around again) plus the policy's backoff, up to
  ``max_attempts - 1`` retries.  An error whose severity exceeds the
  retry budget marks the request ``media_error`` — unrecovered at the
  drive level.
- The array controller resubmits slices whose physical request came
  back unrecovered, up to ``max_attempts`` submissions, sleeping
  ``backoff_ms`` (linearly increasing) between attempts, and counts a
  deadline miss whenever a slice overruns ``timeout_ms`` (media work
  cannot be cancelled mid-revolution, so the miss is recorded and the
  slice is awaited — the accounting mirrors firmware command timeouts
  that fire while the drive completes anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ArmedMediaFault", "DEFAULT_MEDIA_RETRY", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry semantics for one robustness layer.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (so ``max_attempts=1``
        means no retries at all).
    timeout_ms:
        Per-attempt deadline; ``None`` disables deadline accounting.
        Only the array layer uses it.
    backoff_ms:
        Delay added between attempts.  The drive layer adds it on top
        of each retry revolution; the array layer sleeps
        ``backoff_ms * attempt`` before resubmitting.
    """

    max_attempts: int = 4
    timeout_ms: Optional[float] = None
    backoff_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_ms is not None and self.timeout_ms <= 0.0:
            raise ValueError(
                f"timeout_ms must be positive or None, got {self.timeout_ms}"
            )
        if self.backoff_ms < 0.0:
            raise ValueError(
                f"backoff_ms must be non-negative, got {self.backoff_ms}"
            )

    @property
    def max_retries(self) -> int:
        """Retries available after the first attempt."""
        return self.max_attempts - 1


#: Drive-level default: up to three in-place retry revolutions, no
#: backoff — the classic "retry a handful of times before reporting an
#: unrecoverable read" firmware behaviour.
DEFAULT_MEDIA_RETRY = RetryPolicy(max_attempts=4, timeout_ms=None,
                                  backoff_ms=0.0)


@dataclass
class ArmedMediaFault:
    """A pending media error armed on a drive by the injector.

    The next media access (or, with ``lba`` set, the next access
    covering that sector) consumes the fault and pays ``attempts``
    failed read attempts before the drive's retry budget decides
    whether the request recovers.
    """

    attempts: int = 1
    lba: Optional[int] = None
