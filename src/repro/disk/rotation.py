"""Spindle mechanics: platter angle as a function of time.

The platter stack rotates continuously at a fixed RPM.  Angles are
fractions of a revolution in ``[0, 1)``; at time ``t`` (ms) the platter
has rotated ``t / period`` revolutions from its phase origin.

A head mounted at angular position ``mount_angle`` sees sector ``s``
(at media angle ``a``) pass under it when the platter rotation
satisfies ``(a - rotation - mount_angle) mod 1 == 0``.  The
``latency_to`` method solves for the wait time, which is exactly the
rotational latency the paper's limit study isolates.
"""

from __future__ import annotations

__all__ = ["Spindle"]


class Spindle:
    """A constant-speed spindle."""

    def __init__(self, rpm: float, phase: float = 0.0):
        if rpm <= 0:
            raise ValueError(f"rpm must be positive, got {rpm}")
        self._rpm = rpm
        # The revolution period is read on every rotational-latency and
        # transfer-time evaluation; cache it once per RPM change rather
        # than dividing on each call.
        self._period_ms = 60000.0 / rpm
        self.phase = phase % 1.0

    @property
    def rpm(self) -> float:
        return self._rpm

    @rpm.setter
    def rpm(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"rpm must be positive, got {value}")
        self._rpm = value
        self._period_ms = 60000.0 / value

    @property
    def period_ms(self) -> float:
        """Time for one full revolution, in milliseconds."""
        return self._period_ms

    @property
    def full_rotation_ms(self) -> float:
        """Alias for :attr:`period_ms` (readability at call sites)."""
        return self.period_ms

    @property
    def average_latency_ms(self) -> float:
        """Mean rotational latency: half a revolution."""
        return self.period_ms / 2.0

    def rotation_at(self, time_ms: float) -> float:
        """Platter rotation (fraction of a revolution) at ``time_ms``."""
        return (self.phase + time_ms / self._period_ms) % 1.0

    def latency_to(
        self,
        time_ms: float,
        sector_angle: float,
        head_mount_angle: float = 0.0,
    ) -> float:
        """Wait until ``sector_angle`` passes under a head.

        Parameters
        ----------
        time_ms:
            Time at which the head is in position and ready to read.
        sector_angle:
            Media angle of the target sector (fraction of a revolution).
        head_mount_angle:
            Angular position of the head's arm assembly around the
            spindle.  0 for a conventional drive; multi-actuator drives
            mount assemblies at distinct angles, which is the mechanism
            by which they cut rotational latency.

        Returns
        -------
        float
            Delay in milliseconds, in ``[0, period)``.
        """
        period = self._period_ms
        rotation = (self.phase + time_ms / period) % 1.0
        # The sector currently under the head is at media angle
        # (rotation + mount). We must wait for the platter to bring the
        # target sector around to the head.
        gap = (sector_angle - rotation - head_mount_angle) % 1.0
        if gap >= 1.0:  # float quirk: (-1e-18) % 1.0 == 1.0
            gap = 0.0
        return gap * period

    def transfer_time(self, sectors: int, sectors_per_track: int) -> float:
        """Time to stream ``sectors`` contiguous sectors on one zone.

        ``sectors / spt`` revolutions; track-switch overheads are added
        separately by the drive model.
        """
        if sectors <= 0:
            raise ValueError(f"sectors must be positive, got {sectors}")
        if sectors_per_track <= 0:
            raise ValueError(
                f"sectors_per_track must be positive, got {sectors_per_track}"
            )
        return (sectors / sectors_per_track) * self._period_ms
