"""On-board disk cache: segmented LRU with sequential read-ahead.

Drive caches are organised as a small number of *segments*, each
holding one contiguous run of sectors (typically the tail of a recent
sequential stream).  A read hits only if a single segment covers the
entire request.  On a miss the drive reads the requested sectors and
opportunistically extends the segment with read-ahead sectors from the
rest of the track.

The paper reports that growing the HC-SD cache from 8 MB to 64 MB has
negligible effect (§7.1); the cache-sensitivity ablation bench
reproduces that experiment with this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = ["CacheStats", "DiskCache"]


@dataclass
class CacheStats:
    """Hit/miss counters, split by request kind."""

    read_hits: int = 0
    read_misses: int = 0
    write_installs: int = 0

    @property
    def read_lookups(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def hit_ratio(self) -> float:
        lookups = self.read_lookups
        return self.read_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Snapshot for telemetry exports."""
        return {
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_installs": self.write_installs,
            "hit_ratio": self.hit_ratio,
        }


class DiskCache:
    """Segmented LRU cache over sector runs.

    Parameters
    ----------
    capacity_sectors:
        Total cache size in sectors (8 MB ⇒ 16384 sectors).
    segments:
        Number of segments the cache is divided into.  Each segment can
        hold at most ``capacity_sectors // segments`` sectors.
    cache_writes:
        If true, written sectors are installed so later reads hit
        (write data still goes to the media; the drive model always
        charges full media time for writes — write-through semantics).
    """

    def __init__(
        self,
        capacity_sectors: int,
        segments: int = 16,
        cache_writes: bool = True,
    ):
        if capacity_sectors <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_sectors}"
            )
        if segments <= 0:
            raise ValueError(f"segments must be positive, got {segments}")
        if segments > capacity_sectors:
            raise ValueError(
                f"more segments ({segments}) than sectors "
                f"({capacity_sectors})"
            )
        self.capacity_sectors = capacity_sectors
        self.segment_count = segments
        self.segment_capacity = capacity_sectors // segments
        self.cache_writes = cache_writes
        self.stats = CacheStats()
        #: Optional observability hook: called with ``(kind, lba, size)``
        #: for ``"hit"`` / ``"miss"`` lookups and ``"install_write"`` /
        #: ``"invalidate"`` updates.  The owning drive wires this to the
        #: telemetry registry when tracing is enabled; the default
        #: ``None`` keeps the lookup path branch-cheap.
        self.listener: Optional[Callable[[str, int, int], None]] = None
        # LRU order, oldest first: each segment is a plain
        # ``(start, end)`` tuple.  The cache holds at most a few dozen
        # segments, so a list scan with inline tuple unpacks beats an
        # OrderedDict of objects on every hot operation.
        self._segments: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def cached_sectors(self) -> int:
        return sum(end - start for start, end in self._segments)

    def lookup_read(self, lba: int, size: int) -> bool:
        """Check (and record) whether a read fully hits one segment."""
        end = lba + size
        segments = self._segments
        for index, segment in enumerate(segments):
            if segment[0] <= lba and end <= segment[1]:
                # Refresh LRU position (move to the newest end).
                del segments[index]
                segments.append(segment)
                self.stats.read_hits += 1
                if self.listener is not None:
                    self.listener("hit", lba, size)
                return True
        self.stats.read_misses += 1
        if self.listener is not None:
            self.listener("miss", lba, size)
        return False

    def contains(self, lba: int, size: int) -> bool:
        """Like :meth:`lookup_read` but without touching statistics/LRU."""
        end = lba + size
        for start, seg_end in self._segments:
            if start <= lba and end <= seg_end:
                return True
        return False

    def install_read(
        self, lba: int, size: int, read_ahead_limit: int = 0
    ) -> int:
        """Install a miss's data plus read-ahead; returns sectors cached.

        ``read_ahead_limit`` bounds the read-ahead (the drive passes the
        number of sectors remaining on the track, since free read-ahead
        ends at the track boundary).
        """
        read_ahead = self.segment_capacity - size
        if read_ahead > read_ahead_limit:
            read_ahead = read_ahead_limit
        if read_ahead < 0:
            read_ahead = 0
        end = lba + size + read_ahead
        start = lba
        if end - start > self.segment_capacity:
            # Keep the tail: sequential readers want the newest sectors.
            start = end - self.segment_capacity
        self._install(start, end)
        return end - start

    def install_write(self, lba: int, size: int) -> None:
        """Install written sectors (if write caching is enabled)."""
        if not self.cache_writes:
            return
        start = lba
        end = lba + size
        if end - start > self.segment_capacity:
            start = end - self.segment_capacity
        self._install(start, end)
        self.stats.write_installs += 1
        if self.listener is not None:
            self.listener("install_write", lba, size)

    def invalidate(self, lba: int, size: int) -> int:
        """Drop any segment overlapping ``[lba, lba+size)``.

        Used when write caching is disabled: a write must not leave a
        stale read segment behind.  Returns segments dropped.
        """
        end = lba + size
        segments = self._segments
        kept = [
            seg for seg in segments if not (seg[0] < end and lba < seg[1])
        ]
        dropped = len(segments) - len(kept)
        if dropped:
            self._segments = kept
            if self.listener is not None:
                self.listener("invalidate", lba, size)
        return dropped

    def _install(self, start: int, end: int) -> None:
        # Merge with any overlapping/adjacent segment (absorb it).  The
        # running [start, end) grows as absorptions are found, exactly
        # as the single-pass merge always has.
        segments = self._segments
        doomed = None
        for index, (seg_start, seg_end) in enumerate(segments):
            if seg_start <= end and start <= seg_end:
                if seg_start < start:
                    start = seg_start
                if seg_end > end:
                    end = seg_end
                if doomed is None:
                    doomed = [index]
                else:
                    doomed.append(index)
        if doomed is not None:
            for index in reversed(doomed):
                del segments[index]
        if end - start > self.segment_capacity:
            start = end - self.segment_capacity
        while len(segments) >= self.segment_count:
            del segments[0]  # evict LRU
        segments.append((start, end))

    def clear(self) -> None:
        del self._segments[:]
