"""On-board disk cache: segmented LRU with sequential read-ahead.

Drive caches are organised as a small number of *segments*, each
holding one contiguous run of sectors (typically the tail of a recent
sequential stream).  A read hits only if a single segment covers the
entire request.  On a miss the drive reads the requested sectors and
opportunistically extends the segment with read-ahead sectors from the
rest of the track.

The paper reports that growing the HC-SD cache from 8 MB to 64 MB has
negligible effect (§7.1); the cache-sensitivity ablation bench
reproduces that experiment with this model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["CacheStats", "DiskCache"]


@dataclass
class CacheStats:
    """Hit/miss counters, split by request kind."""

    read_hits: int = 0
    read_misses: int = 0
    write_installs: int = 0

    @property
    def read_lookups(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def hit_ratio(self) -> float:
        lookups = self.read_lookups
        return self.read_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Snapshot for telemetry exports."""
        return {
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_installs": self.write_installs,
            "hit_ratio": self.hit_ratio,
        }


class _Segment:
    """A contiguous cached run ``[start, end)`` of sectors."""

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int):
        self.start = start
        self.end = end

    def covers(self, lba: int, size: int) -> bool:
        return self.start <= lba and lba + size <= self.end

    def __len__(self) -> int:
        return self.end - self.start


class DiskCache:
    """Segmented LRU cache over sector runs.

    Parameters
    ----------
    capacity_sectors:
        Total cache size in sectors (8 MB ⇒ 16384 sectors).
    segments:
        Number of segments the cache is divided into.  Each segment can
        hold at most ``capacity_sectors // segments`` sectors.
    cache_writes:
        If true, written sectors are installed so later reads hit
        (write data still goes to the media; the drive model always
        charges full media time for writes — write-through semantics).
    """

    def __init__(
        self,
        capacity_sectors: int,
        segments: int = 16,
        cache_writes: bool = True,
    ):
        if capacity_sectors <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_sectors}"
            )
        if segments <= 0:
            raise ValueError(f"segments must be positive, got {segments}")
        if segments > capacity_sectors:
            raise ValueError(
                f"more segments ({segments}) than sectors "
                f"({capacity_sectors})"
            )
        self.capacity_sectors = capacity_sectors
        self.segment_count = segments
        self.segment_capacity = capacity_sectors // segments
        self.cache_writes = cache_writes
        self.stats = CacheStats()
        #: Optional observability hook: called with ``(kind, lba, size)``
        #: for ``"hit"`` / ``"miss"`` lookups and ``"install_write"`` /
        #: ``"invalidate"`` updates.  The owning drive wires this to the
        #: telemetry registry when tracing is enabled; the default
        #: ``None`` keeps the lookup path branch-cheap.
        self.listener: Optional[Callable[[str, int, int], None]] = None
        # LRU order: oldest first. Keys are opaque ids.
        self._segments: "OrderedDict[int, _Segment]" = OrderedDict()
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def cached_sectors(self) -> int:
        return sum(len(seg) for seg in self._segments.values())

    def lookup_read(self, lba: int, size: int) -> bool:
        """Check (and record) whether a read fully hits one segment."""
        end = lba + size
        segments = self._segments
        for key, segment in segments.items():
            if segment.start <= lba and end <= segment.end:
                segments.move_to_end(key)
                self.stats.read_hits += 1
                if self.listener is not None:
                    self.listener("hit", lba, size)
                return True
        self.stats.read_misses += 1
        if self.listener is not None:
            self.listener("miss", lba, size)
        return False

    def contains(self, lba: int, size: int) -> bool:
        """Like :meth:`lookup_read` but without touching statistics/LRU."""
        end = lba + size
        for segment in self._segments.values():
            if segment.start <= lba and end <= segment.end:
                return True
        return False

    def install_read(
        self, lba: int, size: int, read_ahead_limit: int = 0
    ) -> int:
        """Install a miss's data plus read-ahead; returns sectors cached.

        ``read_ahead_limit`` bounds the read-ahead (the drive passes the
        number of sectors remaining on the track, since free read-ahead
        ends at the track boundary).
        """
        read_ahead = self.segment_capacity - size
        if read_ahead > read_ahead_limit:
            read_ahead = read_ahead_limit
        if read_ahead < 0:
            read_ahead = 0
        end = lba + size + read_ahead
        start = lba
        if end - start > self.segment_capacity:
            # Keep the tail: sequential readers want the newest sectors.
            start = end - self.segment_capacity
        self._install(start, end)
        return end - start

    def install_write(self, lba: int, size: int) -> None:
        """Install written sectors (if write caching is enabled)."""
        if not self.cache_writes:
            return
        start = lba
        end = lba + size
        if end - start > self.segment_capacity:
            start = end - self.segment_capacity
        self._install(start, end)
        self.stats.write_installs += 1
        if self.listener is not None:
            self.listener("install_write", lba, size)

    def invalidate(self, lba: int, size: int) -> int:
        """Drop any segment overlapping ``[lba, lba+size)``.

        Used when write caching is disabled: a write must not leave a
        stale read segment behind.  Returns segments dropped.
        """
        end = lba + size
        doomed = [
            key
            for key, seg in self._segments.items()
            if seg.start < end and lba < seg.end
        ]
        for key in doomed:
            del self._segments[key]
        if doomed and self.listener is not None:
            self.listener("invalidate", lba, size)
        return len(doomed)

    def _install(self, start: int, end: int) -> None:
        # Merge with any overlapping/adjacent segment (absorb it).
        segments = self._segments
        doomed = None
        for key, seg in segments.items():
            seg_start = seg.start
            seg_end = seg.end
            if seg_start <= end and start <= seg_end:
                if seg_start < start:
                    start = seg_start
                if seg_end > end:
                    end = seg_end
                if doomed is None:
                    doomed = [key]
                else:
                    doomed.append(key)
        if doomed is not None:
            for key in doomed:
                del segments[key]
        if end - start > self.segment_capacity:
            start = end - self.segment_capacity
        while len(segments) >= self.segment_count:
            segments.popitem(last=False)  # evict LRU
        segments[self._next_id] = _Segment(start, end)
        self._next_id += 1

    def clear(self) -> None:
        self._segments.clear()
