"""Seek-time models.

The main model is the classic three-point curve used by DiskSim: given
the published single-cylinder, average (≈ one-third stroke) and
full-stroke seek times, fit

    t(d) = a + b·sqrt(d) + c·d        for d >= 1, t(0) = 0

The sqrt term captures the acceleration-limited short-seek regime; the
linear term the coast-limited long-seek regime.  Simpler models are
provided for tests and analytic sanity checks.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = [
    "ConstantSeekModel",
    "LinearSeekModel",
    "SeekModel",
    "ThreePointSeekModel",
    "TwoPhaseSeekModel",
]


#: Distance tables shared by identically parameterised models, keyed by
#: the model's fit parameters.  A sweep builds the same drives over and
#: over (one system per run, several runs per experiment); sharing the
#: table means the seek curve is evaluated once per (parameters,
#: distance) per process, and later constructions start with the table
#: already populated.
_SHARED_TABLES: dict = {}


class SeekModel:
    """Interface: seek time (ms) as a function of cylinder distance.

    Seek time depends only on the cylinder *distance*, and a trace
    revisits the same distances constantly (hot regions, sequential
    runs), so lookups go through a ``distance -> time`` table filled
    from ``_time_for_distance``.  The table is shared between models
    with identical parameters (see :meth:`_table_key`); models with
    different parameters never share entries.  Scale factors are
    applied by the owning drive, outside the table.
    """

    def __init__(self) -> None:
        #: distance -> seek time (ms); lazily filled.  Subclasses with
        #: parameter-determined curves swap this for a shared table via
        #: :meth:`_share_table` once their parameters are set.
        self._memo: dict = {}

    def _share_table(self, *key) -> None:
        """Adopt the process-wide table for this parameter ``key``.

        Call at the end of a subclass ``__init__``, after every
        parameter that determines ``_time_for_distance`` is set.
        """
        self._memo = _SHARED_TABLES.setdefault(
            (type(self).__name__,) + key, {}
        )

    def seek_time(self, from_cylinder: int, to_cylinder: int) -> float:
        distance = to_cylinder - from_cylinder
        if distance == 0:
            return 0.0
        if distance < 0:
            distance = -distance
        memo = self._memo
        time_ms = memo.get(distance)
        if time_ms is None:
            time_ms = memo[distance] = self._time_for_distance(distance)
        return time_ms

    def _time_for_distance(self, distance: int) -> float:
        raise NotImplementedError


class ConstantSeekModel(SeekModel):
    """Every non-zero seek costs the same time (testing aid)."""

    def __init__(self, time_ms: float):
        super().__init__()
        if time_ms < 0:
            raise ValueError(f"time must be non-negative, got {time_ms}")
        self.time_ms = time_ms
        self._share_table(time_ms)

    def _time_for_distance(self, distance: int) -> float:
        return self.time_ms


class LinearSeekModel(SeekModel):
    """``t(d) = base + slope * d`` (testing / old-drive approximation)."""

    def __init__(self, base_ms: float, slope_ms_per_cyl: float):
        super().__init__()
        if base_ms < 0 or slope_ms_per_cyl < 0:
            raise ValueError("base and slope must be non-negative")
        self.base_ms = base_ms
        self.slope_ms_per_cyl = slope_ms_per_cyl
        self._share_table(base_ms, slope_ms_per_cyl)

    def _time_for_distance(self, distance: int) -> float:
        return self.base_ms + self.slope_ms_per_cyl * distance


class TwoPhaseSeekModel(SeekModel):
    """Physics-based bang-bang seek: accelerate, (coast,) decelerate.

    The voice-coil motor applies maximum acceleration ``a`` toward the
    target and symmetric deceleration, limited by a maximum head
    velocity ``v``; every seek ends with a fixed servo ``settle`` time.

        d <  v²/a :  t = 2·sqrt(d/a) + settle          (triangular)
        d >= v²/a :  t = d/v + v/a + settle            (trapezoidal)

    This is the model underneath the empirical sqrt+linear curve of
    :class:`ThreePointSeekModel`; having both lets the test suite and
    ablations confirm the empirical fit against first principles.

    Units: distance in cylinders, time in ms, so ``a`` is cylinders/ms²
    and ``v`` cylinders/ms.
    """

    def __init__(
        self,
        acceleration: float,
        max_velocity: float,
        settle_ms: float,
    ):
        super().__init__()
        if acceleration <= 0:
            raise ValueError(
                f"acceleration must be positive, got {acceleration}"
            )
        if max_velocity <= 0:
            raise ValueError(
                f"max_velocity must be positive, got {max_velocity}"
            )
        if settle_ms < 0:
            raise ValueError(
                f"settle must be non-negative, got {settle_ms}"
            )
        self.acceleration = acceleration
        self.max_velocity = max_velocity
        self.settle_ms = settle_ms
        self._share_table(acceleration, max_velocity, settle_ms)

    @property
    def coast_threshold_cylinders(self) -> float:
        """Distance above which the head saturates at max velocity."""
        return self.max_velocity ** 2 / self.acceleration

    def _time_for_distance(self, distance: int) -> float:
        if distance < self.coast_threshold_cylinders:
            return (
                2.0 * math.sqrt(distance / self.acceleration)
                + self.settle_ms
            )
        return (
            distance / self.max_velocity
            + self.max_velocity / self.acceleration
            + self.settle_ms
        )

    @classmethod
    def fit_published(
        cls,
        track_to_track_ms: float,
        average_ms: float,
        full_stroke_ms: float,
        cylinders: int,
    ) -> "TwoPhaseSeekModel":
        """Solve (a, v, settle) from the three published seek times.

        Assumes the average (one-third stroke) and full-stroke seeks
        are both velocity-limited, and the single-cylinder seek is
        acceleration-limited — true for every modern drive.
        """
        if not 0 < track_to_track_ms <= average_ms <= full_stroke_ms:
            raise ValueError(
                "need 0 < track_to_track <= average <= full_stroke"
            )
        d_avg = cylinders / 3.0
        d_full = float(cylinders - 1)
        # Two velocity-limited points give v and (v/a + settle).
        velocity = (d_full - d_avg) / (full_stroke_ms - average_ms)
        intercept = average_ms - d_avg / velocity  # = v/a + settle
        # The single-cylinder seek gives the remaining equation:
        #   t1 = 2*sqrt(1/a) + settle,  settle = intercept - v/a.
        # Solve for a by bisection on a in (v/intercept, inf).
        def settle_for(a: float) -> float:
            return intercept - velocity / a

        def t1_error(a: float) -> float:
            return (
                2.0 * math.sqrt(1.0 / a)
                + settle_for(a)
                - track_to_track_ms
            )

        # t1_error is increasing in a: at a_min (settle = 0) it is
        # 2/sqrt(a_min) - t1 (negative for real drives); as a → ∞ it
        # tends to intercept - t1 (positive when the published times
        # are consistent).  Bisect between them.
        a_min = velocity / intercept * 1.0000001  # settle just above 0
        if intercept <= track_to_track_ms or t1_error(a_min) >= 0:
            # Degenerate published numbers: fall back to a pure
            # acceleration fit of the single-cylinder time.
            acceleration = 4.0 / track_to_track_ms ** 2
            return cls(acceleration, velocity, 0.0)
        low, high = a_min, a_min * 2.0
        while t1_error(high) < 0:
            high *= 2.0
            if high > a_min * 1e12:  # pragma: no cover - numeric guard
                break
        for _ in range(200):
            mid = math.sqrt(low * high)
            if t1_error(mid) < 0:
                low = mid
            else:
                high = mid
        acceleration = math.sqrt(low * high)
        return cls(
            acceleration, velocity, max(0.0, settle_for(acceleration))
        )


class ThreePointSeekModel(SeekModel):
    """Curve fit through (1, t_track), (C/3, t_avg), (C-1, t_full).

    Parameters
    ----------
    track_to_track_ms:
        Published adjacent-cylinder seek time.
    average_ms:
        Published average seek time; by convention the time of a seek of
        one third of the full stroke.
    full_stroke_ms:
        Published end-to-end seek time.
    cylinders:
        Total cylinder count of the drive.
    """

    def __init__(
        self,
        track_to_track_ms: float,
        average_ms: float,
        full_stroke_ms: float,
        cylinders: int,
    ):
        super().__init__()
        if cylinders < 4:
            raise ValueError(f"need at least 4 cylinders, got {cylinders}")
        if not 0 < track_to_track_ms <= average_ms <= full_stroke_ms:
            raise ValueError(
                "need 0 < track_to_track <= average <= full_stroke, got "
                f"{track_to_track_ms}/{average_ms}/{full_stroke_ms}"
            )
        self.track_to_track_ms = track_to_track_ms
        self.average_ms = average_ms
        self.full_stroke_ms = full_stroke_ms
        self.cylinders = cylinders
        self._a, self._b, self._c = self._fit(
            track_to_track_ms, average_ms, full_stroke_ms, cylinders
        )
        self._share_table(
            track_to_track_ms, average_ms, full_stroke_ms, cylinders
        )

    @staticmethod
    def _fit(
        t1: float, tavg: float, tmax: float, cylinders: int
    ) -> Tuple[float, float, float]:
        """Solve the 3×3 linear system for (a, b, c)."""
        d1, d2, d3 = 1.0, max(2.0, cylinders / 3.0), float(cylinders - 1)
        rows = [
            (1.0, math.sqrt(d1), d1, t1),
            (1.0, math.sqrt(d2), d2, tavg),
            (1.0, math.sqrt(d3), d3, tmax),
        ]
        # Gaussian elimination on the tiny system (no numpy needed).
        m = [list(row) for row in rows]
        for col in range(3):
            pivot_row = max(range(col, 3), key=lambda r: abs(m[r][col]))
            m[col], m[pivot_row] = m[pivot_row], m[col]
            pivot = m[col][col]
            if abs(pivot) < 1e-12:
                raise ValueError("degenerate seek-curve fit")
            for r in range(3):
                if r == col:
                    continue
                factor = m[r][col] / pivot
                for k in range(col, 4):
                    m[r][k] -= factor * m[col][k]
        a = m[0][3] / m[0][0]
        b = m[1][3] / m[1][1]
        c = m[2][3] / m[2][2]
        return a, b, c

    @property
    def coefficients(self) -> Tuple[float, float, float]:
        return self._a, self._b, self._c

    def _time_for_distance(self, distance: int) -> float:
        if distance == 1:
            return self.track_to_track_ms
        value = (
            self._a + self._b * math.sqrt(distance) + self._c * distance
        )
        # The fit can dip slightly below the track-to-track time for very
        # short seeks; clamp so the curve stays monotone at the bottom.
        return max(value, self.track_to_track_ms)
