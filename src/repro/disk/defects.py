"""Grown-defect management: sector remapping to spare regions.

Production drives reserve spare sectors and transparently remap grown
defects to them (P-list/G-list).  Remapping preserves capacity but
breaks locality: an access that touches a remapped sector detours to
the spare region and back, paying extra seeks — which is why heavily
remapped drives get slow before they fail.

:class:`RemappingDrive` adds a :class:`DefectMap` to the conventional
drive.  Defects can be present from construction or *grown* at runtime
(:meth:`grow_defect`), modelling media degradation experiments; the
SMART-style counterpart for multi-actuator drives is arm
deconfiguration (:meth:`repro.core.parallel_disk.ParallelDisk.deconfigure_arm`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.disk.drive import ConventionalDrive
from repro.disk.request import IORequest
from repro.disk.scheduler import QueueScheduler
from repro.disk.specs import DriveSpec
from repro.sim.engine import Environment

__all__ = ["DefectMap", "RemappingDrive"]


class DefectMap:
    """Sector → spare-sector remap table.

    The spare pool is the drive's last ``spare_sectors`` sectors, which
    the remapping drive withholds from the usable address space (as
    real drives do).
    """

    def __init__(self, spare_pool_start: int, spare_sectors: int):
        if spare_sectors <= 0:
            raise ValueError(
                f"spare_sectors must be positive, got {spare_sectors}"
            )
        if spare_pool_start < 0:
            raise ValueError("spare_pool_start must be non-negative")
        self.spare_pool_start = spare_pool_start
        self.spare_sectors = spare_sectors
        self._table: Dict[int, int] = {}
        self._next_spare = spare_pool_start

    @property
    def remapped_count(self) -> int:
        return len(self._table)

    @property
    def spares_remaining(self) -> int:
        return self.spare_pool_start + self.spare_sectors - self._next_spare

    def is_remapped(self, lba: int) -> bool:
        return lba in self._table

    def remap(self, lba: int) -> int:
        """Assign (or return) the spare location for a defective sector."""
        if lba in self._table:
            return self._table[lba]
        if self.spares_remaining <= 0:
            raise RuntimeError(
                "spare pool exhausted: the drive can no longer remap"
            )
        spare = self._next_spare
        self._next_spare += 1
        self._table[lba] = spare
        return spare

    def translate(self, lba: int) -> int:
        """Physical location of a (possibly remapped) sector."""
        return self._table.get(lba, lba)

    def remapped_in(self, lba: int, size: int) -> List[int]:
        """The remapped sectors inside ``[lba, lba+size)``."""
        if size <= 8:  # small request: direct probes beat scanning
            return [
                sector
                for sector in range(lba, lba + size)
                if sector in self._table
            ]
        return [
            sector
            for sector in self._table
            if lba <= sector < lba + size
        ]


class RemappingDrive(ConventionalDrive):
    """A conventional drive with grown-defect remapping.

    Parameters
    ----------
    spare_fraction:
        Fraction of the geometry reserved as the spare pool (withheld
        from :attr:`usable_sectors`).
    initial_defects:
        Sectors already remapped when the drive ships.
    """

    def __init__(
        self,
        env: Environment,
        spec: DriveSpec,
        scheduler: Optional[QueueScheduler] = None,
        spare_fraction: float = 0.01,
        initial_defects: Optional[Iterable[int]] = None,
        **kwargs,
    ):
        if not 0.0 < spare_fraction < 0.5:
            raise ValueError(
                f"spare_fraction must be in (0, 0.5), got {spare_fraction}"
            )
        super().__init__(env, spec, scheduler=scheduler, **kwargs)
        total = self.geometry.total_sectors
        spare_sectors = max(1, int(total * spare_fraction))
        self.defects = DefectMap(total - spare_sectors, spare_sectors)
        self.usable_sectors = total - spare_sectors
        self.remap_detours = 0
        for sector in initial_defects or ():
            self.grow_defect(sector)

    def grow_defect(self, lba: int) -> int:
        """Mark a sector defective; returns its spare location."""
        if not 0 <= lba < self.usable_sectors:
            raise ValueError(
                f"lba {lba} outside the usable space "
                f"[0, {self.usable_sectors})"
            )
        return self.defects.remap(lba)

    def submit(self, request: IORequest):
        if request.lba + request.size > self.usable_sectors:
            raise ValueError(
                f"{request} exceeds usable capacity "
                f"({self.usable_sectors} sectors; "
                f"{self.defects.spare_sectors} reserved as spares)"
            )
        return super().submit(request)

    def _service_media(self, request: IORequest, overhead: float):
        """Service the request, detouring for any remapped sectors.

        The main extent is serviced normally; each remapped sector then
        costs a detour — seek to the spare region, rotational latency,
        single-sector transfer and seek back — appended to the
        request's service (how real drives handle reassigned blocks in
        the middle of a transfer).
        """
        yield from super()._service_media(request, overhead)
        remapped = self.defects.remapped_in(request.lba, request.size)
        for sector in remapped:
            spare = self.defects.translate(sector)
            yield from self._detour(request, spare)
            self.remap_detours += 1

    def _detour(self, request: IORequest, spare_lba: int):
        # One fused decode replaces the to_physical / sector_angle /
        # zone_of_cylinder triple, and the single-sector streaming time
        # comes from the drive's precomputed per-zone table (built
        # through the same transfer_time call, so the detour charge is
        # bit-identical to the old piecewise recomputation).
        cylinder, sector_angle, zone_index = (
            self.geometry.decode_target_zone(spare_lba)
        )
        seek = (
            self.seek_model.seek_time(self._current_cylinder, cylinder)
            * self.seek_scale
        )
        yield self.env.timeout(seek)
        self.stats.seek_ms += seek
        self.stats.record_arm_seek(request.arm_id, seek)
        rotation = (
            self.spindle.latency_to(self.env.now, sector_angle)
            * self.rotation_scale
        )
        yield self.env.timeout(rotation)
        self.stats.rotational_latency_ms += rotation
        transfer = self.zone_sector_ms[zone_index]
        yield self.env.timeout(transfer)
        self.stats.transfer_ms += transfer
        self.stats.sectors_transferred += 1
        request.seek_time += seek
        request.rotational_latency += rotation
        request.transfer_time += transfer
        self._current_cylinder = cylinder
