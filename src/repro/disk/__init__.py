"""Conventional disk-drive substrate (a DiskSim-equivalent in Python).

This package models a single-actuator hard disk drive at the level of
detail the paper's methodology requires:

* :mod:`repro.disk.geometry` — zoned platter geometry and LBA→PBA maps.
* :mod:`repro.disk.seek` — seek-time curve models.
* :mod:`repro.disk.rotation` — spindle mechanics and rotational latency.
* :mod:`repro.disk.cache` — the segmented on-board cache with read-ahead.
* :mod:`repro.disk.scheduler` — queue schedulers (FCFS/SSTF/SPTF/C-LOOK).
* :mod:`repro.disk.specs` — published drive specifications (Table 1 et al.).
* :mod:`repro.disk.drive` — the conventional drive service model.
"""

from repro.disk.request import IORequest
from repro.disk.geometry import DiskGeometry, PhysicalAddress, Zone
from repro.disk.seek import (
    ConstantSeekModel,
    LinearSeekModel,
    SeekModel,
    ThreePointSeekModel,
    TwoPhaseSeekModel,
)
from repro.disk.rotation import Spindle
from repro.disk.cache import DiskCache
from repro.disk.scheduler import (
    CLookScheduler,
    FCFSScheduler,
    ForegroundFirstScheduler,
    QueueScheduler,
    SPTFScheduler,
    SSTFScheduler,
    make_scheduler,
)
from repro.disk.freeblock import FreeblockDrive
from repro.disk.drpm import DynamicRpmDrive
from repro.disk.defects import DefectMap, RemappingDrive
from repro.disk.specs import (
    BARRACUDA_ES,
    CHEETAH_10K,
    CONNERS_CP3100,
    DriveSpec,
    FUJITSU_M2361A,
    IBM_3380_AK4,
    SPEC_CATALOG,
    TPCH_DRIVE,
)
from repro.disk.drive import ConventionalDrive, DriveStats

__all__ = [
    "BARRACUDA_ES",
    "CHEETAH_10K",
    "CLookScheduler",
    "CONNERS_CP3100",
    "ConstantSeekModel",
    "ConventionalDrive",
    "DefectMap",
    "DiskCache",
    "DiskGeometry",
    "DriveSpec",
    "DriveStats",
    "DynamicRpmDrive",
    "FCFSScheduler",
    "ForegroundFirstScheduler",
    "FreeblockDrive",
    "FUJITSU_M2361A",
    "IBM_3380_AK4",
    "IORequest",
    "LinearSeekModel",
    "PhysicalAddress",
    "QueueScheduler",
    "SPEC_CATALOG",
    "SPTFScheduler",
    "SSTFScheduler",
    "RemappingDrive",
    "SeekModel",
    "Spindle",
    "ThreePointSeekModel",
    "TwoPhaseSeekModel",
    "TPCH_DRIVE",
    "Zone",
    "make_scheduler",
]
