"""Queue-scheduling policies for pending disk requests.

A scheduler picks the next request to service from the pending set.
Schedulers are stateless with respect to the drive; everything they
need (head position, positioning-time estimates) arrives through a
:class:`SchedulingContext` supplied by the drive at each decision.

The paper uses Shortest-Positioning-Time-First (SPTF, Worthington et
al. [42]) everywhere, because its multi-actuator scheduler generalises
SPTF across (request × arm) pairs.  FCFS, SSTF and C-LOOK are provided
as classical baselines and for the scheduler-sweep ablation.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.disk.request import IORequest

__all__ = [
    "CLookScheduler",
    "FCFSScheduler",
    "ForegroundFirstScheduler",
    "QueueScheduler",
    "SPTFScheduler",
    "SSTFScheduler",
    "SchedulingContext",
    "VScanScheduler",
    "make_scheduler",
]


class SchedulingContext:
    """Drive state handed to a scheduler at decision time.

    Parameters
    ----------
    current_cylinder:
        Cylinder the (chosen) head currently sits on.
    cylinder_of:
        Maps a request to its target cylinder.
    positioning_time:
        Maps a request to estimated seek + rotational latency were it
        dispatched now (over the best arm, for parallel drives).
    """

    def __init__(
        self,
        current_cylinder: int,
        cylinder_of: Callable[[IORequest], int],
        positioning_time: Optional[Callable[[IORequest], float]] = None,
    ):
        self.current_cylinder = current_cylinder
        self.cylinder_of = cylinder_of
        self.positioning_time = positioning_time


#: Default scheduling-window depth: position-aware policies evaluate at
#: most this many of the oldest pending requests.  SATA-era drives
#: expose a shallow effective command queue (the Barracuda ES
#: generation typically reordered over only a handful of tagged
#: commands), and the paper's HC-SD rotational-latency PDFs — spread
#: broadly up to a full revolution — are consistent with little
#: rotational reordering at the disk.  The window also bounds
#: simulation cost under overload.
DEFAULT_WINDOW = 8


class QueueScheduler:
    """Interface for queue scheduling policies.

    ``window`` bounds how many of the oldest pending requests a
    position-aware policy considers per decision; ``None`` means
    unbounded.
    """

    #: Human-readable policy name (used in reports and configs).
    name = "base"

    def __init__(self, window: Optional[int] = DEFAULT_WINDOW):
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window

    def select(
        self, pending: Sequence[IORequest], context: SchedulingContext
    ) -> IORequest:
        """Choose one of ``pending`` (must be non-empty)."""
        raise NotImplementedError

    def _require_pending(self, pending: Sequence[IORequest]) -> None:
        if not pending:
            raise ValueError("scheduler invoked with an empty queue")

    def _candidates(
        self, pending: Sequence[IORequest]
    ) -> Sequence[IORequest]:
        """The scheduling window: the oldest ``window`` requests.

        Pending queues are maintained in arrival order by the drives,
        so a plain prefix slice gives the oldest requests.
        """
        if self.window is None or len(pending) <= self.window:
            return pending
        return pending[: self.window]


class FCFSScheduler(QueueScheduler):
    """First-come-first-served: strict arrival order."""

    name = "fcfs"

    def select(
        self, pending: Sequence[IORequest], context: SchedulingContext
    ) -> IORequest:
        # Inlined _require_pending/_candidates: this select runs once
        # per dispatched request, and both helpers reduce to one test
        # each.
        if not pending:
            raise ValueError("scheduler invoked with an empty queue")
        window = self.window
        if window is None or len(pending) <= window:
            candidates = pending
        else:
            candidates = pending[:window]
        # Manual first-minimal scan over (arrival_time, request_id):
        # drives keep ``pending`` in arrival order, so this is usually
        # one pass of never-taken branches — min() with a tuple key
        # built one lambda frame and one tuple per candidate.
        best = candidates[0]
        best_arrival = best.arrival_time
        best_id = best.request_id
        for request in candidates:
            arrival = request.arrival_time
            if arrival < best_arrival or (
                arrival == best_arrival and request.request_id < best_id
            ):
                best = request
                best_arrival = arrival
                best_id = request.request_id
        return best


class SSTFScheduler(QueueScheduler):
    """Shortest-seek-time-first: nearest cylinder wins."""

    name = "sstf"

    def select(
        self, pending: Sequence[IORequest], context: SchedulingContext
    ) -> IORequest:
        self._require_pending(pending)
        return min(
            self._candidates(pending),
            key=lambda r: (
                abs(context.cylinder_of(r) - context.current_cylinder),
                r.arrival_time,
                r.request_id,
            ),
        )


class SPTFScheduler(QueueScheduler):
    """Shortest-positioning-time-first (seek + rotational latency).

    Requires the context to supply a positioning-time estimator; this
    is the policy the paper uses for both conventional and
    multi-actuator drives.
    """

    name = "sptf"

    def select(
        self, pending: Sequence[IORequest], context: SchedulingContext
    ) -> IORequest:
        self._require_pending(pending)
        if context.positioning_time is None:
            raise ValueError(
                "SPTF requires a positioning_time estimator in the context"
            )
        if len(pending) == 1:
            # Singleton queue: the choice is forced, skip the estimate.
            return pending[0]
        # Manual min() over (estimate, arrival_time, request_id): the
        # equal-estimate tie-break only builds tuples when it actually
        # ties, instead of once per candidate.
        positioning_time = context.positioning_time
        best = None
        best_time = 0.0
        for request in self._candidates(pending):
            estimate = positioning_time(request)
            if best is None or estimate < best_time:
                best = request
                best_time = estimate
            elif estimate == best_time and (
                (request.arrival_time, request.request_id)
                < (best.arrival_time, best.request_id)
            ):
                best = request
        return best


class CLookScheduler(QueueScheduler):
    """Circular LOOK: sweep toward higher cylinders, wrap to lowest."""

    name = "clook"

    def select(
        self, pending: Sequence[IORequest], context: SchedulingContext
    ) -> IORequest:
        self._require_pending(pending)
        windowed = self._candidates(pending)
        ahead = [
            r
            for r in windowed
            if context.cylinder_of(r) >= context.current_cylinder
        ]
        candidates = ahead if ahead else list(windowed)
        return min(
            candidates,
            key=lambda r: (
                context.cylinder_of(r),
                r.arrival_time,
                r.request_id,
            ),
        )


class VScanScheduler(QueueScheduler):
    """V(R) scan: SSTF biased by a directional penalty.

    ``r`` in ``[0, 1]`` interpolates between SSTF (r=0) and SCAN (r=1):
    requests behind the current sweep direction are penalised by
    ``r × full_stroke``.
    """

    name = "vscan"

    def __init__(
        self,
        r: float = 0.2,
        cylinders: int = 100000,
        window: Optional[int] = DEFAULT_WINDOW,
    ):
        super().__init__(window=window)
        if not 0.0 <= r <= 1.0:
            raise ValueError(f"r must be in [0, 1], got {r}")
        self.r = r
        self.cylinders = cylinders
        self._direction = 1

    def select(
        self, pending: Sequence[IORequest], context: SchedulingContext
    ) -> IORequest:
        self._require_pending(pending)
        penalty = self.r * self.cylinders

        def cost(request: IORequest) -> float:
            delta = context.cylinder_of(request) - context.current_cylinder
            base = abs(delta)
            if delta * self._direction < 0:
                base += penalty
            return base

        choice = min(
            self._candidates(pending),
            key=lambda r: (cost(r), r.arrival_time, r.request_id),
        )
        delta = context.cylinder_of(choice) - context.current_cylinder
        if delta != 0:
            self._direction = 1 if delta > 0 else -1
        return choice


class ForegroundFirstScheduler(QueueScheduler):
    """Two-class wrapper: foreground requests always dispatch before
    queued background requests (no in-service pre-emption).

    Used when comparing intra-disk parallelism against freeblock
    scheduling (paper §5): background work runs whenever no foreground
    request is waiting, e.g. on a spare arm assembly of an overlapped
    multi-actuator drive.
    """

    name = "foreground-first"

    def __init__(self, inner: Optional[QueueScheduler] = None):
        inner = inner or FCFSScheduler()
        super().__init__(window=inner.window)
        self.inner = inner

    def select(
        self, pending: Sequence[IORequest], context: SchedulingContext
    ) -> IORequest:
        self._require_pending(pending)
        foreground = [r for r in pending if not r.background]
        if foreground:
            return self.inner.select(foreground, context)
        return self.inner.select(pending, context)


_POLICIES = {
    cls.name: cls
    for cls in (
        FCFSScheduler,
        SSTFScheduler,
        SPTFScheduler,
        CLookScheduler,
        VScanScheduler,
        ForegroundFirstScheduler,
    )
}


def make_scheduler(name: str, **kwargs) -> QueueScheduler:
    """Instantiate a scheduler by policy name (``fcfs``, ``sstf``,
    ``sptf``, ``clook``, ``vscan``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(**kwargs)
