"""Zoned platter geometry and logical-to-physical address mapping.

Modern drives use *zoned bit recording*: cylinders are grouped into
zones, and outer zones pack more sectors per track than inner ones.
This module builds a zone table from a handful of published parameters
(capacity, platter count, outer/inner sectors-per-track) and provides
the LBA↔(cylinder, surface, sector) mapping plus the angular position
of any sector — the quantity the rotational-latency model needs.

Angular positions are expressed as fractions of a revolution in
``[0, 1)``.  Track and cylinder skew shift where logical sector 0 sits
on successive tracks so that sequential transfers that cross a track or
cylinder boundary don't miss a full revolution.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["DiskGeometry", "PhysicalAddress", "Zone"]


@dataclass(frozen=True, slots=True)
class PhysicalAddress:
    """A decoded sector location."""

    cylinder: int
    surface: int
    sector: int


@dataclass(frozen=True, slots=True)
class Zone:
    """A run of cylinders sharing one sectors-per-track value."""

    first_cylinder: int
    cylinder_count: int
    sectors_per_track: int
    first_lba: int

    @property
    def last_cylinder(self) -> int:
        return self.first_cylinder + self.cylinder_count - 1

    def sectors_per_cylinder(self, surfaces: int) -> int:
        return self.sectors_per_track * surfaces

    def capacity_sectors(self, surfaces: int) -> int:
        return self.cylinder_count * self.sectors_per_cylinder(surfaces)


class DiskGeometry:
    """Derived zoned geometry for a drive.

    The constructor sizes the cylinder count so that total capacity is
    at least ``capacity_sectors`` given the zone profile, mirroring how
    vendors bin drives to an advertised capacity.

    Parameters
    ----------
    capacity_sectors:
        Advertised drive capacity, in 512-byte sectors.
    surfaces:
        Number of recording surfaces (2 × platters normally).
    spt_outer / spt_inner:
        Sectors per track in the outermost / innermost zone.
    zones:
        Number of zones; sectors-per-track interpolates linearly from
        outer to inner across them.
    track_skew / cylinder_skew:
        Skew, in sectors, applied per surface switch and per cylinder
        switch respectively.
    """

    def __init__(
        self,
        capacity_sectors: int,
        surfaces: int,
        spt_outer: int,
        spt_inner: int,
        zones: int = 16,
        track_skew: int = 32,
        cylinder_skew: int = 48,
    ):
        if capacity_sectors <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_sectors}")
        if surfaces <= 0:
            raise ValueError(f"surfaces must be positive, got {surfaces}")
        if spt_inner <= 0 or spt_outer < spt_inner:
            raise ValueError(
                f"need spt_outer >= spt_inner > 0, got {spt_outer}/{spt_inner}"
            )
        if zones <= 0:
            raise ValueError(f"zones must be positive, got {zones}")

        self.surfaces = surfaces
        self.track_skew = track_skew
        self.cylinder_skew = cylinder_skew
        self._zones = self._build_zones(
            capacity_sectors, surfaces, spt_outer, spt_inner, zones
        )
        last = self._zones[-1]
        self.cylinders = last.first_cylinder + last.cylinder_count
        self.total_sectors = last.first_lba + last.capacity_sectors(surfaces)
        # Address decoding is the simulator's hottest non-engine path;
        # precompute the zone boundary tables once so per-lookup work is
        # a bisect instead of a linear scan with derived capacities.
        self._zone_first_lbas = [zone.first_lba for zone in self._zones]
        self._zone_first_cyls = [zone.first_cylinder for zone in self._zones]
        self._zone_spts = [zone.sectors_per_track for zone in self._zones]
        self._zone_sectors_per_cyl = [
            zone.sectors_per_track * surfaces for zone in self._zones
        ]

    @staticmethod
    def _build_zones(
        capacity_sectors: int,
        surfaces: int,
        spt_outer: int,
        spt_inner: int,
        zone_count: int,
    ) -> List[Zone]:
        # Sectors-per-track profile, outermost zone first.
        if zone_count == 1:
            spts = [spt_outer]
        else:
            step = (spt_outer - spt_inner) / (zone_count - 1)
            spts = [round(spt_outer - i * step) for i in range(zone_count)]
        mean_spt = sum(spts) / len(spts)
        # Cylinders needed so the summed zone capacity covers the target.
        total_cyls = max(
            zone_count,
            -(-capacity_sectors // int(mean_spt * surfaces)),  # ceil div
        )
        base, extra = divmod(total_cyls, zone_count)
        zones: List[Zone] = []
        first_cyl = 0
        first_lba = 0
        for index, spt in enumerate(spts):
            count = base + (1 if index < extra else 0)
            zone = Zone(first_cyl, count, spt, first_lba)
            zones.append(zone)
            first_cyl += count
            first_lba += zone.capacity_sectors(surfaces)
        return zones

    @property
    def zones(self) -> Tuple[Zone, ...]:
        return tuple(self._zones)

    @property
    def platters(self) -> int:
        return (self.surfaces + 1) // 2

    @property
    def mean_sectors_per_track(self) -> float:
        tracks = sum(z.cylinder_count for z in self._zones)
        sectors = sum(
            z.cylinder_count * z.sectors_per_track for z in self._zones
        )
        return sectors / tracks

    def zone_of_lba(self, lba: int) -> Zone:
        self._check_lba(lba)
        return self._zones[bisect_right(self._zone_first_lbas, lba) - 1]

    def zone_of_cylinder(self, cylinder: int) -> Zone:
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(
                f"cylinder {cylinder} out of range [0, {self.cylinders})"
            )
        return self._zones[
            bisect_right(self._zone_first_cyls, cylinder) - 1
        ]

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.total_sectors:
            raise ValueError(
                f"lba {lba} out of range [0, {self.total_sectors})"
            )

    def to_physical(self, lba: int) -> PhysicalAddress:
        """Decode an LBA into (cylinder, surface, sector)."""
        cylinder, surface, sector, _ = self.decode(lba)
        return PhysicalAddress(cylinder, surface, sector)

    def decode(self, lba: int) -> Tuple[int, int, int, int]:
        """Decode an LBA into ``(cylinder, surface, sector, spt)``.

        The allocation-free form of :meth:`to_physical`, with the
        zone's sectors-per-track riding along — the service models need
        all four per request, and a tuple unpack is all it costs.
        """
        if not 0 <= lba < self.total_sectors:
            self._check_lba(lba)
        index = bisect_right(self._zone_first_lbas, lba) - 1
        spt = self._zone_spts[index]
        cylinder, rem = divmod(
            lba - self._zone_first_lbas[index],
            self._zone_sectors_per_cyl[index],
        )
        surface, sector = divmod(rem, spt)
        return self._zone_first_cyls[index] + cylinder, surface, sector, spt

    def decode_target(self, lba: int) -> Tuple[int, float]:
        """``(cylinder, sector_angle)`` for an LBA in one lookup.

        Exactly ``to_physical`` + ``sector_angle`` without the address
        object or the second zone bisect; the pair is what the seek and
        rotation models consume per request.
        """
        if not 0 <= lba < self.total_sectors:
            self._check_lba(lba)
        index = bisect_right(self._zone_first_lbas, lba) - 1
        spt = self._zone_spts[index]
        cylinder, rem = divmod(
            lba - self._zone_first_lbas[index],
            self._zone_sectors_per_cyl[index],
        )
        surface, sector = divmod(rem, spt)
        cylinder += self._zone_first_cyls[index]
        skew = surface * self.track_skew + cylinder * self.cylinder_skew
        return cylinder, ((sector + skew) % spt) / spt

    def decode_target_zone(self, lba: int) -> Tuple[int, float, int]:
        """``(cylinder, sector_angle, zone_index)`` in one lookup.

        :meth:`decode_target` with the zone index riding along, so
        callers holding a per-zone table (e.g. the drives' precomputed
        service-time tables) can finish their pricing without another
        bisect.  The zone index orders outermost-first, matching
        :attr:`zones`.
        """
        if not 0 <= lba < self.total_sectors:
            self._check_lba(lba)
        index = bisect_right(self._zone_first_lbas, lba) - 1
        spt = self._zone_spts[index]
        cylinder, rem = divmod(
            lba - self._zone_first_lbas[index],
            self._zone_sectors_per_cyl[index],
        )
        surface, sector = divmod(rem, spt)
        cylinder += self._zone_first_cyls[index]
        skew = surface * self.track_skew + cylinder * self.cylinder_skew
        return cylinder, ((sector + skew) % spt) / spt, index

    def cylinder_of_lba(self, lba: int) -> int:
        """Cylinder holding an LBA (no full decode, no allocation)."""
        if not 0 <= lba < self.total_sectors:
            self._check_lba(lba)
        index = bisect_right(self._zone_first_lbas, lba) - 1
        return self._zone_first_cyls[index] + (
            (lba - self._zone_first_lbas[index])
            // self._zone_sectors_per_cyl[index]
        )

    def to_lba(self, address: PhysicalAddress) -> int:
        """Inverse of :meth:`to_physical`."""
        zone = self.zone_of_cylinder(address.cylinder)
        if not 0 <= address.surface < self.surfaces:
            raise ValueError(f"surface {address.surface} out of range")
        if not 0 <= address.sector < zone.sectors_per_track:
            raise ValueError(
                f"sector {address.sector} out of range for zone with "
                f"{zone.sectors_per_track} sectors/track"
            )
        return (
            zone.first_lba
            + (address.cylinder - zone.first_cylinder)
            * zone.sectors_per_cylinder(self.surfaces)
            + address.surface * zone.sectors_per_track
            + address.sector
        )

    def sector_angle(self, address: PhysicalAddress) -> float:
        """Angular position of a sector, as a fraction of a revolution.

        Applies track and cylinder skew: logical sector 0 of successive
        tracks is offset so sequential access across boundaries only
        waits the switch time, not a full rotation.
        """
        zone = self.zone_of_cylinder(address.cylinder)
        spt = zone.sectors_per_track
        skew = (
            address.surface * self.track_skew
            + address.cylinder * self.cylinder_skew
        )
        return ((address.sector + skew) % spt) / spt

    def lba_angle(self, lba: int) -> float:
        """Angular position of an LBA (convenience wrapper)."""
        return self.sector_angle(self.to_physical(lba))

    def transfer_geometry(self, lba: int, size: int) -> Tuple[int, int, int]:
        """Layout facts for a transfer: (spt at start, track crossings,
        cylinder crossings).

        Used by the drive model to price multi-track transfers.
        """
        self._check_lba(lba)
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if lba + size > self.total_sectors:
            raise ValueError(
                f"transfer [{lba}, {lba + size}) exceeds capacity "
                f"{self.total_sectors}"
            )
        start_cyl, start_surface, _, start_spt = self.decode(lba)
        end_cyl, end_surface, _, _ = self.decode(lba + size - 1)
        start_track = start_cyl * self.surfaces + start_surface
        end_track = end_cyl * self.surfaces + end_surface
        track_crossings = end_track - start_track
        cylinder_crossings = end_cyl - start_cyl
        return start_spt, track_crossings, cylinder_crossings

    def service_plan(
        self, lba: int, size: int
    ) -> Tuple[int, float, int, int, int, int, int, int]:
        """Every layout fact one media service needs, in a single pass.

        Returns ``(cylinder, sector_angle, start_spt, track_crossings,
        cylinder_crossings, end_cylinder, end_sector, end_spt)``.  The
        first pair equals :meth:`decode_target`, the middle triple
        equals :meth:`transfer_geometry`, and the final triple
        describes ``decode(lba + size - 1)`` — the arm's parking
        cylinder and the read-ahead room left on the last track.  The
        drive service paths previously derived these from four separate
        lookups over the same span; one call shares the zone bisects.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if not 0 <= lba < self.total_sectors:
            self._check_lba(lba)
        end = lba + size - 1
        if end >= self.total_sectors:
            raise ValueError(
                f"transfer [{lba}, {lba + size}) exceeds capacity "
                f"{self.total_sectors}"
            )
        first_lbas = self._zone_first_lbas
        index = bisect_right(first_lbas, lba) - 1
        spt = self._zone_spts[index]
        cylinder, rem = divmod(
            lba - first_lbas[index], self._zone_sectors_per_cyl[index]
        )
        surface, sector = divmod(rem, spt)
        cylinder += self._zone_first_cyls[index]
        skew = surface * self.track_skew + cylinder * self.cylinder_skew
        sector_angle = ((sector + skew) % spt) / spt
        # Transfers almost never leave their starting zone; only bisect
        # again when the end sector provably lives past its boundary.
        next_index = index + 1
        if next_index < len(first_lbas) and end >= first_lbas[next_index]:
            index = bisect_right(first_lbas, end) - 1
        end_spt = self._zone_spts[index]
        end_cylinder, rem = divmod(
            end - first_lbas[index], self._zone_sectors_per_cyl[index]
        )
        end_surface, end_sector = divmod(rem, end_spt)
        end_cylinder += self._zone_first_cyls[index]
        surfaces = self.surfaces
        track_crossings = (end_cylinder * surfaces + end_surface) - (
            cylinder * surfaces + surface
        )
        return (
            cylinder,
            sector_angle,
            spt,
            track_crossings,
            end_cylinder - cylinder,
            end_cylinder,
            end_sector,
            end_spt,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskGeometry(cylinders={self.cylinders}, "
            f"surfaces={self.surfaces}, zones={len(self._zones)}, "
            f"sectors={self.total_sectors})"
        )
