"""Published drive specifications and the spec → model factory.

The catalog covers the five drives of the paper's Table 1 plus the
drives of the original trace arrays (Table 2):

* ``IBM_3380_AK4``, ``FUJITSU_M2361A``, ``CONNERS_CP3100`` — the 1988
  RAID-paper drives used in the historical retrospective.
* ``BARRACUDA_ES`` — the 750 GB / 7200 RPM SATA drive that defines the
  HC-SD configuration.
* ``CHEETAH_10K`` — a 10 000 RPM enterprise drive standing in for the
  drives of the Financial / Websearch / TPC-C arrays.
* ``TPCH_DRIVE`` — the 7200 RPM, 6-platter drive of the TPC-H array.

A :class:`DriveSpec` is pure data; ``build_*`` methods construct the
mechanical models, so a spec is the single source of truth for a drive.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.disk.cache import DiskCache
from repro.disk.geometry import DiskGeometry
from repro.disk.rotation import Spindle
from repro.disk.seek import SeekModel, ThreePointSeekModel

__all__ = [
    "BARRACUDA_ES",
    "CHEETAH_10K",
    "CONNERS_CP3100",
    "DriveSpec",
    "FUJITSU_M2361A",
    "IBM_3380_AK4",
    "SPEC_CATALOG",
    "TPCH_DRIVE",
]

GB = 1_000_000_000
MB = 1_000_000


@dataclass(frozen=True)
class DriveSpec:
    """Everything needed to instantiate one drive model.

    Times in milliseconds, sizes in bytes, diameter in inches.
    """

    name: str
    capacity_bytes: int
    platters: int
    rpm: float
    diameter_inches: float
    spt_outer: int
    spt_inner: int
    zones: int
    seek_track_to_track_ms: float
    seek_average_ms: float
    seek_full_stroke_ms: float
    cache_bytes: int
    #: Per-request controller/firmware overhead.
    controller_overhead_ms: float = 0.2
    #: Head (surface) switch time within a cylinder.
    head_switch_ms: float = 0.8
    #: Extra servo settle time before a write transfer may begin
    #: (writes need tighter on-track tolerance than reads).  0 by
    #: default: the paper's model does not separate write settling.
    write_settle_ms: float = 0.0
    #: Interface bus bandwidth, bytes/s (prices cache hits).
    bus_bytes_per_s: int = 300 * MB
    #: Number of independent arm assemblies (1 = conventional).
    actuators: int = 1
    #: Multiplier covering motor/electronics efficiency of older eras;
    #: 1.0 for modern drives.  Used only by the power model.
    technology_factor: float = 1.0
    #: Manufacturer-reported total power, if known (Table 1 column);
    #: kept for validation against the model, never used by it.
    reference_power_watts: Optional[float] = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.platters <= 0:
            raise ValueError("platters must be positive")
        if self.actuators <= 0:
            raise ValueError("actuators must be positive")

    @property
    def surfaces(self) -> int:
        return 2 * self.platters

    @property
    def capacity_sectors(self) -> int:
        return self.capacity_bytes // 512

    @property
    def rotation_ms(self) -> float:
        return 60000.0 / self.rpm

    @property
    def avg_rotational_latency_ms(self) -> float:
        return self.rotation_ms / 2.0

    @property
    def peak_transfer_mb_s(self) -> float:
        """Media rate at the outer zone, MB/s."""
        return self.spt_outer * 512 * (self.rpm / 60.0) / MB

    def build_geometry(self) -> DiskGeometry:
        return DiskGeometry(
            capacity_sectors=self.capacity_sectors,
            surfaces=self.surfaces,
            spt_outer=self.spt_outer,
            spt_inner=self.spt_inner,
            zones=self.zones,
        )

    def build_seek_model(self, geometry: DiskGeometry) -> SeekModel:
        return ThreePointSeekModel(
            track_to_track_ms=self.seek_track_to_track_ms,
            average_ms=self.seek_average_ms,
            full_stroke_ms=self.seek_full_stroke_ms,
            cylinders=geometry.cylinders,
        )

    def build_spindle(self) -> Spindle:
        return Spindle(self.rpm)

    def build_cache(self, segments: int = 16) -> DiskCache:
        return DiskCache(
            capacity_sectors=max(segments, self.cache_bytes // 512),
            segments=segments,
        )

    def with_rpm(self, rpm: float) -> "DriveSpec":
        """Same drive designed for a different spindle speed.

        Used by the reduced-RPM study (§7.2): 6200/5200/4200 RPM
        variants of the HC-SD-SA(n) drive.
        """
        return dataclasses.replace(
            self, name=f"{self.name}@{rpm:g}rpm", rpm=rpm
        )

    def with_actuators(self, actuators: int) -> "DriveSpec":
        """Same drive extended to ``actuators`` arm assemblies."""
        return dataclasses.replace(
            self, name=f"{self.name}-SA({actuators})", actuators=actuators
        )

    def with_cache_bytes(self, cache_bytes: int) -> "DriveSpec":
        return dataclasses.replace(self, cache_bytes=cache_bytes)


#: The 750 GB Seagate Barracuda ES–class drive: the HC-SD configuration.
BARRACUDA_ES = DriveSpec(
    name="barracuda-es-750",
    capacity_bytes=750 * GB,
    platters=4,
    rpm=7200,
    diameter_inches=3.7,
    spt_outer=1172,  # ⇒ ~72 MB/s outer-zone media rate (Table 1)
    spt_inner=700,
    zones=16,
    seek_track_to_track_ms=0.8,
    seek_average_ms=8.5,
    seek_full_stroke_ms=17.0,
    cache_bytes=8 * MB,
    reference_power_watts=13.0,
)

#: 10 000 RPM enterprise drive (Cheetah class) for the MD arrays of
#: Financial, Websearch and TPC-C.  Capacity is overridden per workload.
CHEETAH_10K = DriveSpec(
    name="cheetah-10k",
    capacity_bytes=int(19.07 * GB),
    platters=4,
    rpm=10000,
    diameter_inches=3.0,
    spt_outer=470,
    spt_inner=280,
    zones=12,
    seek_track_to_track_ms=0.6,
    seek_average_ms=5.2,
    seek_full_stroke_ms=10.5,
    cache_bytes=4 * MB,
)

#: 7200 RPM, 6-platter drive of the TPC-H array (Table 2).
TPCH_DRIVE = DriveSpec(
    name="tpch-array-drive",
    capacity_bytes=int(35.96 * GB),
    platters=6,
    rpm=7200,
    diameter_inches=3.7,
    spt_outer=520,
    spt_inner=310,
    zones=12,
    seek_track_to_track_ms=0.9,
    seek_average_ms=8.9,
    seek_full_stroke_ms=17.5,
    cache_bytes=4 * MB,
)

#: Conner CP3100 (1988 personal-computer drive; Table 1).
CONNERS_CP3100 = DriveSpec(
    name="conner-cp3100",
    capacity_bytes=100 * MB,
    platters=4,
    rpm=3575,
    diameter_inches=3.5,
    spt_outer=33,
    spt_inner=33,
    zones=1,
    seek_track_to_track_ms=8.0,
    seek_average_ms=25.0,
    seek_full_stroke_ms=45.0,
    cache_bytes=32 * 1024,
    bus_bytes_per_s=1 * MB,
    technology_factor=1.17,
    reference_power_watts=10.0,
)

#: IBM 3380 AK4 (1980 mainframe drive, 4 actuators; Table 1).
IBM_3380_AK4 = DriveSpec(
    name="ibm-3380-ak4",
    capacity_bytes=7500 * MB,
    platters=12,
    rpm=3620,
    diameter_inches=14.0,
    spt_outer=60,
    spt_inner=60,
    zones=1,
    seek_track_to_track_ms=3.0,
    seek_average_ms=16.0,
    seek_full_stroke_ms=30.0,
    cache_bytes=0x10000,
    bus_bytes_per_s=3 * MB,
    actuators=4,
    technology_factor=4.18,
    reference_power_watts=6600.0,
)

#: Fujitsu M2361A (1988 minicomputer drive; Table 1).
FUJITSU_M2361A = DriveSpec(
    name="fujitsu-m2361a",
    capacity_bytes=600 * MB,
    platters=6,
    rpm=3600,
    diameter_inches=10.5,
    spt_outer=40,
    spt_inner=40,
    zones=1,
    seek_track_to_track_ms=4.0,
    seek_average_ms=18.0,
    seek_full_stroke_ms=35.0,
    cache_bytes=0x10000,
    bus_bytes_per_s=2 * MB + MB // 2,
    technology_factor=3.17,
    reference_power_watts=640.0,
)

#: Name → spec lookup for configuration files and CLIs.
SPEC_CATALOG: Dict[str, DriveSpec] = {
    spec.name: spec
    for spec in (
        BARRACUDA_ES,
        CHEETAH_10K,
        TPCH_DRIVE,
        CONNERS_CP3100,
        IBM_3380_AK4,
        FUJITSU_M2361A,
    )
}
