"""Freeblock scheduling (Lumb, Schindler & Ganger, FAST '02).

The related-work alternative the paper discusses (§5): a conventional
drive can service *background* I/O "for free" inside the rotational
latency windows of foreground requests — the head would otherwise sit
idle while the platter brings the target sector around.

The defining restriction, which the paper contrasts with intra-disk
parallelism, is the **deadline**: a background access only qualifies
if its entire excursion —

    seek to the background track
    + rotational latency there
    + transfer
    + seek back to the foreground track

— completes strictly within the foreground request's rotational
latency window.  Otherwise the foreground request would miss its
sector and pay a whole extra revolution.  An intra-disk parallel drive
has no such deadline: a spare arm assembly services background work
whenever it is idle.

:class:`FreeblockDrive` implements the conventional-drive flavour.
Background requests go to a separate queue; each foreground media
access tries to squeeze the best-fitting background request into its
rotational window.  Background requests that never fit simply wait
(they are best-effort), and any still pending at the end of a run can
be drained explicitly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.disk.drive import ConventionalDrive
from repro.disk.request import IORequest
from repro.disk.scheduler import QueueScheduler
from repro.disk.specs import DriveSpec
from repro.sim.engine import Environment, Event

__all__ = ["FreeblockDrive"]


class FreeblockDrive(ConventionalDrive):
    """A conventional drive with freeblock background scheduling.

    Submit background work with requests whose ``background`` flag is
    set (or via :meth:`submit_background`).  Foreground requests are
    serviced exactly as on :class:`ConventionalDrive`; background
    requests are opportunistically folded into foreground rotational
    latency windows.

    Parameters
    ----------
    guard_ms:
        Safety margin subtracted from each rotational window before
        fitting background work (models prediction error in real
        freeblock systems).
    max_candidates:
        How many queued background requests are examined per window.
    """

    def __init__(
        self,
        env: Environment,
        spec: DriveSpec,
        scheduler: Optional[QueueScheduler] = None,
        guard_ms: float = 0.2,
        max_candidates: int = 16,
        **kwargs,
    ):
        if guard_ms < 0:
            raise ValueError(f"guard_ms must be non-negative, got {guard_ms}")
        if max_candidates <= 0:
            raise ValueError(
                f"max_candidates must be positive, got {max_candidates}"
            )
        super().__init__(env, spec, scheduler=scheduler, **kwargs)
        self.guard_ms = guard_ms
        self.max_candidates = max_candidates
        self._background: List[IORequest] = []
        #: Completed-in-window background request count.
        self.freeblock_serviced = 0
        #: Windows in which no background request fitted.
        self.windows_missed = 0

    # -- submission -----------------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        if request.background:
            return self.submit_background(request)
        return super().submit(request)

    def submit_background(self, request: IORequest) -> Event:
        """Queue best-effort work for rotational-window servicing."""
        if request.lba + request.size > self.geometry.total_sectors:
            raise ValueError(
                f"{request} exceeds drive capacity "
                f"({self.geometry.total_sectors} sectors)"
            )
        request.background = True
        completion = self.env.event()
        self._completions[request.request_id] = completion
        self._background.append(request)
        return completion

    @property
    def background_queue_depth(self) -> int:
        return len(self._background)

    # -- the freeblock window -------------------------------------------------
    def _service_media(self, request: IORequest, overhead: float):
        """Foreground service with background work in the rotational gap.

        The excursion replaces part of the rotational wait; the
        foreground request's completion time is *unchanged* — that is
        the whole point of freeblock scheduling.
        """
        # One service_plan pass replaces the former to_physical /
        # sector_angle / transfer_geometry / end-decode quartet (same
        # zone tables, same formulas — the per-phase charges are
        # bit-identical to the piecewise lookups).
        spec = self.spec
        (
            cylinder,
            sector_angle,
            spt,
            track_crossings,
            cylinder_crossings,
            end_cylinder,
            end_sector,
            end_spt,
        ) = self.geometry.service_plan(request.lba, request.size)
        seek = (
            self.seek_model.seek_time(self._current_cylinder, cylinder)
            * self.seek_scale
        )
        yield self.env.timeout(overhead + seek)
        self.stats.transfer_ms += overhead
        self.stats.seek_ms += seek
        self.stats.record_arm_seek(request.arm_id, seek)
        if seek > 0.0:
            self.stats.nonzero_seeks += 1

        rotation = (
            self.spindle.latency_to(self.env.now, sector_angle)
            * self.rotation_scale
        )
        window = rotation - self.guard_ms
        plan = self._plan_background(cylinder, window)
        if plan is not None:
            yield from self._run_background(plan, rotation)
        else:
            if self._background:
                self.windows_missed += 1
            yield self.env.timeout(rotation)
            self.stats.rotational_latency_ms += rotation

        transfer = self.spindle.transfer_time(request.size, spt)
        transfer += (
            track_crossings - cylinder_crossings
        ) * spec.head_switch_ms
        transfer += cylinder_crossings * spec.seek_track_to_track_ms
        yield self.env.timeout(transfer)
        self.stats.transfer_ms += transfer
        self.stats.sectors_transferred += request.size

        request.seek_time = seek
        request.rotational_latency = rotation
        request.transfer_time = transfer
        self._current_cylinder = end_cylinder
        self._update_cache_planned(request, end_sector, end_spt)

    def _plan_background(
        self, foreground_cylinder: int, window_ms: float
    ) -> Optional[Tuple[IORequest, float, float, float, float]]:
        """Find the background request that best uses the window.

        Returns ``(request, seek_out, rotation, transfer, seek_back)``
        or ``None`` when nothing fits.  "Best" = largest total
        excursion that still fits — freeblock throughput is maximised
        by filling windows as completely as possible.
        """
        if window_ms <= 0 or not self._background:
            return None
        best = None
        for candidate in self._background[: self.max_candidates]:
            plan = self._excursion(candidate, foreground_cylinder)
            total = plan[0] + plan[1] + plan[2] + plan[3]
            if total <= window_ms and (
                best is None or total > best[1]
            ):
                best = (candidate, total, plan)
        if best is None:
            return None
        candidate, _total, (seek_out, rotation, transfer, seek_back) = best
        return candidate, seek_out, rotation, transfer, seek_back

    def _excursion(
        self, candidate: IORequest, foreground_cylinder: int
    ) -> Tuple[float, float, float, float]:
        # Candidate pricing runs up to ``max_candidates`` times per
        # foreground window, so the one-pass service_plan (in place of
        # three separate decodes plus transfer_geometry) matters; the
        # phase charges are bit-identical to the piecewise lookups.
        spec = self.spec
        (
            cylinder,
            sector_angle,
            spt,
            track_crossings,
            cylinder_crossings,
            end_cylinder,
            _end_sector,
            _end_spt,
        ) = self.geometry.service_plan(candidate.lba, candidate.size)
        seek_out = (
            self.seek_model.seek_time(foreground_cylinder, cylinder)
            * self.seek_scale
        )
        rotation = (
            self.spindle.latency_to(self.env.now + seek_out, sector_angle)
            * self.rotation_scale
        )
        transfer = self.spindle.transfer_time(candidate.size, spt)
        transfer += (
            track_crossings - cylinder_crossings
        ) * spec.head_switch_ms
        transfer += cylinder_crossings * spec.seek_track_to_track_ms
        seek_back = (
            self.seek_model.seek_time(end_cylinder, foreground_cylinder)
            * self.seek_scale
        )
        return seek_out, rotation, transfer, seek_back

    def _run_background(self, plan, foreground_rotation: float):
        request, seek_out, rotation, transfer, seek_back = plan
        self._background.remove(request)
        request.start_service = self.env.now
        excursion = seek_out + rotation + transfer + seek_back
        yield self.env.timeout(excursion)
        # Mode accounting: the VCM is active for the excursion seeks
        # even though the *foreground* clock only sees its rotational
        # window; energy must reflect the extra arm activity.
        self.stats.seek_ms += seek_out + seek_back
        self.stats.record_arm_seek(request.arm_id, seek_out + seek_back)
        self.stats.transfer_ms += transfer
        self.stats.rotational_latency_ms += rotation
        self.stats.sectors_transferred += request.size
        request.seek_time = seek_out
        request.rotational_latency = rotation
        request.transfer_time = transfer
        self._complete(request)
        self.freeblock_serviced += 1
        # The remainder of the foreground window still has to elapse.
        remainder = foreground_rotation - excursion
        if remainder > 0:
            yield self.env.timeout(remainder)
            self.stats.rotational_latency_ms += remainder

    # -- draining ---------------------------------------------------------------
    def drain_background(self) -> int:
        """Promote all queued background work to foreground service.

        Used at the end of a run to account for work that never fitted
        a window.  Returns how many requests were promoted.
        """
        promoted = self._background[:]
        self._background.clear()
        for request in promoted:
            self._pending.append(request)
        if promoted and self._wakeup is not None and (
            not self._wakeup.triggered
        ):
            self._wakeup.succeed()
        return len(promoted)
