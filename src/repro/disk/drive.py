"""The conventional (single-actuator) disk-drive service model.

A :class:`ConventionalDrive` is a discrete-event process that services
one request at a time, exactly as the paper describes the baseline
(§2): for every media access, the request is *serialised* through
controller overhead, seek, rotational latency, and transfer — the arm
and spindle are used in a tightly coupled manner.

The drive exposes two hooks that implement the paper's limit-study
methodology (§7.1): ``seek_scale`` and ``rotation_scale`` multiply the
computed seek time and rotational latency (½, ¼, or 0), matching the
paper's artificial modification of the simulator's latencies.

Mode accounting (idle / seek / rotational latency / transfer) feeds the
power model in :mod:`repro.power`.
"""

from __future__ import annotations

import zlib
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.disk.cache import DiskCache
from repro.disk.geometry import DiskGeometry, PhysicalAddress
from repro.disk.request import IORequest
from repro.disk.rotation import Spindle
from repro.disk.scheduler import (
    FCFSScheduler,
    QueueScheduler,
    SchedulingContext,
    SPTFScheduler,
)
from repro.disk.seek import SeekModel
from repro.disk.specs import DriveSpec
from repro.faults.policy import (
    DEFAULT_MEDIA_RETRY,
    ArmedMediaFault,
    RetryPolicy,
)
from repro.obs.tracer import tracer_for
from repro.sim.engine import Environment, Event

__all__ = ["ConventionalDrive", "DriveStats"]


@dataclass
class DriveStats:
    """Aggregate per-drive activity, split by operating mode.

    Times are total milliseconds spent in each mode across the run.
    ``idle_time(elapsed)`` derives idle residency, which dominates MD
    power in the paper's Figure 3.
    """

    seek_ms: float = 0.0
    rotational_latency_ms: float = 0.0
    transfer_ms: float = 0.0
    requests_completed: int = 0
    reads_completed: int = 0
    cache_hits: int = 0
    sectors_transferred: int = 0
    #: Per-arm seek-time totals (index = arm id).  Drives preallocate
    #: one slot per actuator at construction, so the list shape depends
    #: only on the configuration — not on which arms happened to seek —
    #: and stats stay merge/compare-stable across worker processes.
    per_arm_seek_ms: List[float] = field(default_factory=lambda: [0.0])
    #: Requests whose seek time was non-zero (paper §7.2 reports this
    #: fraction rising with actuator count for Websearch).
    nonzero_seeks: int = 0
    #: Media errors consumed (injected faults that hit an access).
    media_errors: int = 0
    #: Retry revolutions spent recovering media errors.
    media_retries: int = 0
    #: Media errors that survived the retry budget (surfaced to the
    #: layer above as ``request.media_error``).
    unrecovered_errors: int = 0
    #: Total time spent in retry revolutions (+ backoff).  Billed into
    #: ``rotational_latency_ms`` as well — the platter really is
    #: spinning under a waiting head — so mode/power accounting stays
    #: exact; this field just keeps the retry share visible.
    retry_ms: float = 0.0

    @classmethod
    def for_arms(cls, arms: int) -> "DriveStats":
        """Stats with ``per_arm_seek_ms`` preallocated for ``arms``."""
        return cls(per_arm_seek_ms=[0.0] * max(1, arms))

    @property
    def busy_ms(self) -> float:
        return self.seek_ms + self.rotational_latency_ms + self.transfer_ms

    def idle_ms(self, elapsed_ms: float) -> float:
        return max(0.0, elapsed_ms - self.busy_ms)

    def mode_fractions(self, elapsed_ms: float) -> Dict[str, float]:
        """Residency fraction per mode over ``elapsed_ms``."""
        if elapsed_ms <= 0:
            return {"idle": 1.0, "seek": 0.0, "rotational": 0.0,
                    "transfer": 0.0}
        return {
            "idle": self.idle_ms(elapsed_ms) / elapsed_ms,
            "seek": self.seek_ms / elapsed_ms,
            "rotational": self.rotational_latency_ms / elapsed_ms,
            "transfer": self.transfer_ms / elapsed_ms,
        }

    def record_arm_seek(self, arm_id: int, seek_ms: float) -> None:
        if arm_id >= len(self.per_arm_seek_ms):
            # Only reachable when stats were built without preallocation
            # (e.g. hand-constructed in tests); drives size the list at
            # construction so the shape never varies run to run.
            self.per_arm_seek_ms.extend(
                [0.0] * (arm_id + 1 - len(self.per_arm_seek_ms))
            )
        self.per_arm_seek_ms[arm_id] += seek_ms


class ConventionalDrive:
    """A single-actuator drive attached to a simulation environment.

    Parameters
    ----------
    env:
        The simulation environment.
    spec:
        Drive specification (geometry, mechanics, cache).
    scheduler:
        Queue scheduling policy; defaults to SPTF as in the paper.
    seek_scale / rotation_scale:
        Limit-study multipliers applied to computed seek times and
        rotational latencies (1.0 = realistic; 0.5/0.25/0.0 reproduce
        the paper's (1/2)S … R=0 experiments).
    cache_segments:
        Segment count for the on-board cache.
    """

    def __init__(
        self,
        env: Environment,
        spec: DriveSpec,
        scheduler: Optional[QueueScheduler] = None,
        seek_scale: float = 1.0,
        rotation_scale: float = 1.0,
        cache_segments: int = 16,
        label: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if seek_scale < 0 or rotation_scale < 0:
            raise ValueError("latency scales must be non-negative")
        self.env = env
        self.spec = spec
        self.label = label or spec.name
        self.scheduler = scheduler or SPTFScheduler()
        self.seek_scale = seek_scale
        self.rotation_scale = rotation_scale
        #: Budget for in-place media-error retries (each retry costs a
        #: platter revolution plus the policy's backoff).
        self.retry_policy = retry_policy or DEFAULT_MEDIA_RETRY
        #: Media faults armed by a fault injector, consumed by the
        #: next matching media access.  Empty on the healthy path,
        #: which therefore pays one truthiness check and nothing else.
        self._armed_faults: List[ArmedMediaFault] = []

        self.geometry: DiskGeometry = spec.build_geometry()
        self.seek_model: SeekModel = spec.build_seek_model(self.geometry)
        self.spindle: Spindle = spec.build_spindle()
        # Each physical drive spins at its own phase: without this,
        # the members of an array would be rotationally synchronised
        # and parallel accesses to the same sector (RAID mirroring,
        # parity reconstruction) would be artificially free.  The
        # phase derives from the label plus a per-environment
        # occurrence counter, so runs stay deterministic (fresh
        # environment ⇒ fresh counters) and same-labelled members of
        # one array still decorrelate.
        counters = getattr(env, "_drive_label_counts", None)
        if counters is None:
            counters = {}
            env._drive_label_counts = counters
        occurrence = counters.get(self.label, 0)
        counters[self.label] = occurrence + 1
        seed_text = f"{self.label}#{occurrence}".encode()
        self.spindle.phase = (zlib.crc32(seed_text) % 9973) / 9973.0
        self.cache: DiskCache = spec.build_cache(segments=cache_segments)
        #: Per-zone service-time table, outermost zone first (index
        #: matches :attr:`DiskGeometry.zones` and the zone index of
        #: :meth:`DiskGeometry.decode_target_zone`): the streaming time
        #: of one sector in that zone.  Computed through the same
        #: ``Spindle.transfer_time`` call the service paths use, so a
        #: table lookup is bit-identical to recomputing — the
        #: retry/degraded paths (defect detours, freeblock excursions)
        #: price single-sector work from here instead of re-deriving
        #: zone layout per access.
        self.zone_sector_ms: Tuple[float, ...] = tuple(
            self.spindle.transfer_time(1, zone.sectors_per_track)
            for zone in self.geometry.zones
        )

        self.stats = DriveStats.for_arms(getattr(spec, "actuators", 1))
        #: Observability: resolved once at construction (``env.tracer``
        #: or the ambient tracer; the zero-cost null tracer otherwise).
        #: Every instrumentation site below is guarded by
        #: ``tracer.enabled`` so untraced hot paths pay one attribute
        #: load and a branch, nothing more.
        self.tracer = tracer_for(env)
        if self.tracer.enabled:
            self._wire_cache_telemetry()
        #: Callbacks invoked with each completed request.
        self.on_complete: List[Callable[[IORequest], None]] = []
        #: Optional hook called as ``listener(request, total_ms)`` at
        #: dispatch, after every service phase duration (and therefore
        #: the completion instant ``now + total_ms``) is fixed and the
        #: request's measurement fields are stamped, but before the
        #: service timeout is issued.  The sharded kernel uses this to
        #: report scheduled completions to the controller ahead of
        #: their firing; ``None`` (the default) costs one attribute
        #: load and a branch per service.
        self.dispatch_listener: Optional[
            Callable[[IORequest, float], None]
        ] = None

        self._pending: List[IORequest] = []
        self._completions: Dict[int, Event] = {}
        self._wakeup: Optional[Event] = None
        self._current_cylinder = self.geometry.cylinders // 2
        self._cylinder_cache: Dict[int, int] = {}
        # SPTF re-estimates every windowed candidate at every dispatch
        # decision; a queued request's decoded target never changes, so
        # memoise it for the (common) case of surviving several scans.
        self._target_cache: Dict[int, Tuple[int, float]] = {}
        # One reusable context object per drive: schedulers only read
        # it, and allocating a fresh one per decision showed up in the
        # dispatch profile.  ``_context()`` refreshes the mutable field.
        self._scheduling_context = SchedulingContext(
            current_cylinder=self._current_cylinder,
            cylinder_of=self._cylinder_of,
            positioning_time=self.positioning_estimate,
        )
        self._server = env.process(self._serve_loop())

    # -- public API --------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self._pending)

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet completed."""
        return len(self._completions)

    @property
    def current_cylinder(self) -> int:
        return self._current_cylinder

    def submit(self, request: IORequest) -> Event:
        """Queue a request; returns an event that fires on completion."""
        if request.lba + request.size > self.geometry.total_sectors:
            raise ValueError(
                f"{request} exceeds drive capacity "
                f"({self.geometry.total_sectors} sectors)"
            )
        # Direct Event construction and ``_ok`` check: submit runs once
        # per physical request, so the env.event() factory frame and the
        # ``triggered`` property call are both worth skipping.
        completion = Event(self.env)
        self._completions[request.request_id] = completion
        self._pending.append(request)
        wakeup = self._wakeup
        if wakeup is not None and wakeup._ok is None:
            wakeup.succeed()
        return completion

    def min_service_ms(self) -> float:
        """Provable lower bound on any single service duration (> 0).

        This is the conservative lookahead of the sharded kernel: no
        request dispatched at time ``t`` can complete before ``t +
        min_service_ms()``.  Every service path pays the controller
        overhead plus at least the cheaper of

        * one sector over the bus (the cache-hit floor), or
        * one sector streamed off the fastest (outermost) zone — seek,
          settle, rotational latency and retry penalties only add to
          the media path, and a transfer covers at least one sector at
          no more than the maximum sectors-per-track rate.

        Both terms are strictly positive, so the bound is usable as a
        PDES lookahead.  Scaled seeks/rotation (the limit-study knobs)
        can only reduce terms this bound already excludes.
        """
        bus_ms = (512 / self.spec.bus_bytes_per_s) * 1000.0
        max_spt = max(
            zone.sectors_per_track for zone in self.geometry.zones
        )
        media_ms = self.spindle.period_ms / max_spt
        return self.spec.controller_overhead_ms + min(bus_ms, media_ms)

    def inject_media_error(
        self, attempts: int = 1, lba: Optional[int] = None
    ) -> None:
        """Arm a media error for the next matching media access.

        ``attempts`` is how many read attempts fail before the sector
        yields (a transient error recovers within a small budget; a
        latent sector error is sized to exceed any budget).  With
        ``lba`` set, only an access covering that sector consumes the
        fault; otherwise the next media access does.
        """
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if lba is not None and not 0 <= lba < self.geometry.total_sectors:
            raise ValueError(
                f"lba {lba} outside [0, {self.geometry.total_sectors})"
            )
        self._armed_faults.append(ArmedMediaFault(attempts=attempts, lba=lba))
        if self.tracer.enabled:
            self.tracer.telemetry.counter("faults.armed").inc()

    def _media_retry_penalty(self, request: IORequest) -> float:
        """Consume an armed fault hitting ``request``; returns the
        retry time it costs (0.0 when no fault matches).

        Each retry waits one full revolution — the damaged sector must
        come back under the head — plus the policy's backoff.  Errors
        whose severity exceeds the retry budget leave the request
        marked ``media_error`` for the layer above.  The full
        revolution is charged unscaled: the limit-study knobs shrink
        *positioning*, not the physics of a re-read.
        """
        fault = None
        for candidate in self._armed_faults:
            if (
                candidate.lba is None
                or request.lba <= candidate.lba < request.end_lba
            ):
                fault = candidate
                break
        if fault is None:
            return 0.0
        self._armed_faults.remove(fault)
        policy = self.retry_policy
        retries = min(fault.attempts, policy.max_retries)
        penalty = retries * (self.spindle.period_ms + policy.backoff_ms)
        unrecovered = fault.attempts > retries
        self.stats.media_errors += 1
        self.stats.media_retries += retries
        self.stats.retry_ms += penalty
        request.retries += retries
        if unrecovered:
            request.media_error = True
            self.stats.unrecovered_errors += 1
        if self.tracer.enabled:
            telemetry = self.tracer.telemetry
            telemetry.counter("faults.media_errors").inc()
            telemetry.counter("faults.retries").inc(retries)
            if unrecovered:
                telemetry.counter("faults.unrecovered").inc()
        return penalty

    def positioning_estimate(self, request: IORequest) -> float:
        """Estimated seek + rotational latency if dispatched right now.

        Used by SPTF; cache hits estimate to zero so they are always
        preferred.
        """
        if request.is_read and self.cache.contains(request.lba, request.size):
            return 0.0
        target = self._target_cache.get(request.request_id)
        if target is None:
            target = self.geometry.decode_target(request.lba)
            self._target_cache[request.request_id] = target
        cylinder, sector_angle = target
        seek = (
            self.seek_model.seek_time(self._current_cylinder, cylinder)
            * self.seek_scale
        )
        rotation = (
            self.spindle.latency_to(self.env._now + seek, sector_angle)
            * self.rotation_scale
        )
        return seek + rotation

    # -- internals ----------------------------------------------------------
    def _cylinder_of(self, request: IORequest) -> int:
        cached = self._cylinder_cache.get(request.request_id)
        if cached is None:
            cached = self.geometry.cylinder_of_lba(request.lba)
            self._cylinder_cache[request.request_id] = cached
        return cached

    def _context(self) -> SchedulingContext:
        context = self._scheduling_context
        context.current_cylinder = self._current_cylinder
        return context

    def _wire_cache_telemetry(self) -> None:
        """Route cache events into the tracer's telemetry registry."""
        telemetry = self.tracer.telemetry
        hits = telemetry.counter("cache.read_hits")
        misses = telemetry.counter("cache.read_misses")
        installs = telemetry.counter("cache.write_installs")
        invalidations = telemetry.counter("cache.invalidations")
        by_kind = {
            "hit": hits,
            "miss": misses,
            "install_write": installs,
            "invalidate": invalidations,
        }

        def listener(kind: str, lba: int, size: int) -> None:
            by_kind[kind].inc()

        self.cache.listener = listener

    def _span_args(self, request: IORequest) -> Dict:
        return {
            "req": request.request_id,
            "lba": request.lba,
            "sectors": request.size,
            "rw": "R" if request.is_read else "W",
        }

    def _serve_loop(self):
        # When this drive class runs the stock _service, its body is
        # inlined below: every media/cache-hit resume then traverses
        # one generator frame fewer, and no _service generator is
        # created per request.  Subclasses overriding _service (the
        # DRPM model) keep the delegating call.
        flat = type(self)._service is ConventionalDrive._service
        # Exact-type check: FCFS keeps no cross-call state, so picking
        # the sole queued request without the select frame is safe.  A
        # stateful policy (VSCAN tracks sweep direction) must see every
        # selection, single-element queues included.
        fcfs = type(self.scheduler) is FCFSScheduler
        env = self.env
        pending = self._pending
        select = self.scheduler.select
        while True:
            while not pending:
                self._wakeup = Event(env)
                yield self._wakeup
                self._wakeup = None
            if fcfs and len(pending) == 1:
                request = pending.pop()
            else:
                request = select(pending, self._context())
                pending.remove(request)
            # The decode memos fill only under position-aware policies;
            # guarding keeps the FCFS path to two truth tests.
            if self._cylinder_cache:
                self._cylinder_cache.pop(request.request_id, None)
            if self._target_cache:
                self._target_cache.pop(request.request_id, None)
            if not flat:
                yield from self._service(request)
                continue
            # -- stock _service, inlined -------------------------------
            request.start_service = env._now
            if self.tracer.enabled:
                self.tracer.span(
                    "queue",
                    "queue",
                    request.arrival_time,
                    env.now - request.arrival_time,
                    (self.label, "queue"),
                    args=self._span_args(request),
                )
            overhead = self.spec.controller_overhead_ms
            if request.is_read and self.cache.lookup_read(
                request.lba, request.size
            ):
                yield from self._service_cache_hit(request, overhead)
            else:
                yield from self._service_media(request, overhead)
            self._complete(request)

    def _service(self, request: IORequest):
        request.start_service = self.env._now
        if self.tracer.enabled:
            self.tracer.span(
                "queue",
                "queue",
                request.arrival_time,
                self.env.now - request.arrival_time,
                (self.label, "queue"),
                args=self._span_args(request),
            )
        overhead = self.spec.controller_overhead_ms
        if request.is_read and self.cache.lookup_read(
            request.lba, request.size
        ):
            yield from self._service_cache_hit(request, overhead)
        else:
            yield from self._service_media(request, overhead)
        self._complete(request)

    def _service_cache_hit(self, request: IORequest, overhead: float):
        bus_ms = (request.size * 512 / self.spec.bus_bytes_per_s) * 1000.0
        total = overhead + bus_ms
        if self.tracer.enabled:
            self.tracer.span(
                "cache-hit",
                "cache",
                self.env.now,
                total,
                (self.label, "cache"),
                args=self._span_args(request),
            )
        # The completion instant is fixed here, so the measurement
        # fields can be stamped before the timeout: nothing observes
        # the request while it is in service, and the sharded kernel
        # needs a fully described completion at dispatch time.
        request.cache_hit = True
        request.transfer_time = bus_ms
        if self.dispatch_listener is not None:
            self.dispatch_listener(request, total)
        env = self.env
        pool = env._timeout_pool
        if pool:
            # Inlined Environment.timeout pool path (``total`` is a sum
            # of non-negative terms, so its negative-delay check can't
            # fire); see engine.timeout for the canonical body.
            wait = pool.pop()
            wait.delay = total
            wait._value = None
            wait._ok = True
            wait.defused = False
            env._eid += 1
            calendar = env._calendar
            if calendar is not None and (
                calendar._cursor > calendar._nbuckets
            ):
                current = calendar._current
                insort(
                    current, (-env._now - total, -1, -env._eid, wait)
                )
                if len(current) > calendar._spill_limit:
                    calendar._rest += len(current)
                    calendar._overflow.extend(current)
                    del current[:]
                    calendar._reseed()
            else:
                env._queue.push(env._now + total, 1, env._eid, wait)
            yield wait
        else:
            yield env.timeout(total)
        self.stats.transfer_ms += total
        self.stats.cache_hits += 1

    def _service_media(self, request: IORequest, overhead: float):
        spec = self.spec
        (
            cylinder,
            sector_angle,
            spt,
            track_crossings,
            cylinder_crossings,
            end_cylinder,
            end_sector,
            end_spt,
        ) = self.geometry.service_plan(request.lba, request.size)
        seek = (
            self.seek_model.seek_time(self._current_cylinder, cylinder)
            * self.seek_scale
        )
        if not request.is_read and spec.write_settle_ms > 0.0:
            # Writes need a tighter servo settle before the transfer.
            seek += spec.write_settle_ms
        # Every phase duration is fixed at dispatch: the rotational gap
        # is a pure function of the (absolute) time the head comes
        # ready, and the transfer time of the layout.  One combined
        # timeout therefore reaches the same completion instant as
        # yielding per phase while costing a third of the engine events.
        rotation = (
            self.spindle.latency_to(
                self.env._now + overhead + seek, sector_angle
            )
            * self.rotation_scale
        )
        transfer = self.spindle.transfer_time(request.size, spt)
        transfer += (track_crossings - cylinder_crossings) * spec.head_switch_ms
        transfer += cylinder_crossings * spec.seek_track_to_track_ms
        # Armed media faults are rare; the healthy path pays only the
        # emptiness check, and adding 0.0 to the combined timeout is a
        # float identity, so fault support changes no healthy figure.
        penalty = (
            self._media_retry_penalty(request) if self._armed_faults else 0.0
        )
        if self.tracer.enabled:
            self._record_phase_spans(
                request, self.env.now, overhead, seek, rotation, transfer, 0,
                retry=penalty,
            )
        total = overhead + seek + rotation + transfer + penalty
        # Stamped before the timeout: every phase is fixed at dispatch
        # (see the combined-timeout comment above) and nothing reads
        # the request mid-service, so the sharded kernel can report the
        # completion — fields included — the moment it is scheduled.
        request.seek_time = seek
        request.rotational_latency = rotation
        request.transfer_time = transfer
        if self.dispatch_listener is not None:
            self.dispatch_listener(request, total)
        yield self.env.timeout(total)
        self.stats.transfer_ms += overhead  # overhead billed as transfer
        self.stats.seek_ms += seek
        self.stats.record_arm_seek(request.arm_id, seek)
        if seek > 0.0:
            self.stats.nonzero_seeks += 1
        self.stats.rotational_latency_ms += rotation
        if penalty > 0.0:
            # The platter spins under a waiting head during retries, so
            # the time is rotational residency for mode/power purposes.
            self.stats.rotational_latency_ms += penalty
        self.stats.transfer_ms += transfer
        self.stats.sectors_transferred += request.size

        self._current_cylinder = end_cylinder
        self._update_cache_planned(request, end_sector, end_spt)

    def _record_phase_spans(
        self,
        request: IORequest,
        start: float,
        overhead: float,
        seek: float,
        rotation: float,
        transfer: float,
        arm_id: int,
        retry: float = 0.0,
    ) -> None:
        """Emit the per-phase service spans on the servicing arm's track.

        Every phase duration is fixed at dispatch (the drives issue one
        combined timeout), so the spans can be recorded prospectively —
        recording schedules no engine events and cannot perturb the run.
        """
        tracer = self.tracer
        track = (self.label, f"arm {arm_id}")
        args = self._span_args(request)
        at = start
        if overhead > 0.0:
            tracer.span("overhead", "overhead", at, overhead, track, args)
            at += overhead
        if seek > 0.0:
            tracer.span("seek", "seek", at, seek, track, args)
            at += seek
        if rotation > 0.0:
            tracer.span("rotation", "rotation", at, rotation, track, args)
            at += rotation
        tracer.span("transfer", "transfer", at, transfer, track, args)
        if retry > 0.0:
            tracer.span(
                "media-retry", "retry", at + transfer, retry, track, args
            )

    def _transfer_time(self, request: IORequest) -> float:
        spt, track_crossings, cylinder_crossings = (
            self.geometry.transfer_geometry(request.lba, request.size)
        )
        time = self.spindle.transfer_time(request.size, spt)
        head_switches = track_crossings - cylinder_crossings
        time += head_switches * self.spec.head_switch_ms
        time += cylinder_crossings * self.spec.seek_track_to_track_ms
        return time

    def _update_cache_planned(
        self, request: IORequest, end_sector: int, end_spt: int
    ) -> None:
        """:meth:`_update_cache` for callers holding a service plan.

        The end-of-transfer decode already happened inside
        ``geometry.service_plan``; this variant just consumes it.
        """
        if request.is_read:
            remaining_on_track = end_spt - end_sector - 1
            to_disk_end = (
                self.geometry.total_sectors - request.lba - request.size
            )
            if to_disk_end < remaining_on_track:
                remaining_on_track = to_disk_end
            self.cache.install_read(
                request.lba, request.size, read_ahead_limit=remaining_on_track
            )
        elif self.cache.cache_writes:
            self.cache.install_write(request.lba, request.size)
        else:
            self.cache.invalidate(request.lba, request.size)

    def _update_cache(
        self, request: IORequest, address: Optional[PhysicalAddress] = None
    ) -> None:
        # ``address`` (the decoded start of the transfer) is accepted
        # for compatibility with callers that already computed it; the
        # read-ahead limit only needs the *end* of the transfer.
        del address
        if request.is_read:
            _, _, end_sector, end_spt = self.geometry.decode(
                request.lba + request.size - 1
            )
            remaining_on_track = end_spt - end_sector - 1
            # Don't read ahead past the end of the disk.
            to_disk_end = (
                self.geometry.total_sectors - request.lba - request.size
            )
            if to_disk_end < remaining_on_track:
                remaining_on_track = to_disk_end
            self.cache.install_read(
                request.lba, request.size, read_ahead_limit=remaining_on_track
            )
        else:
            if self.cache.cache_writes:
                self.cache.install_write(request.lba, request.size)
            else:
                self.cache.invalidate(request.lba, request.size)

    def _complete(self, request: IORequest) -> None:
        env = self.env
        request.completion_time = env._now
        stats = self.stats
        stats.requests_completed += 1
        if request.is_read:
            stats.reads_completed += 1
        completion = self._completions.pop(request.request_id)
        # Event.succeed inlined: the pop above happens exactly once per
        # request (a double completion would KeyError there first), so
        # the already-triggered guard cannot trip.  See engine.Event
        # for the canonical body, including the calendar push.
        completion._ok = True
        completion._value = request
        env._eid += 1
        calendar = env._calendar
        if calendar is not None and calendar._cursor > calendar._nbuckets:
            current = calendar._current
            insort(current, (-env._now, -1, -env._eid, completion))
            if len(current) > calendar._spill_limit:
                calendar._rest += len(current)
                calendar._overflow.extend(current)
                del current[:]
                calendar._reseed()
        else:
            env._queue.push(env._now, 1, env._eid, completion)
        for callback in self.on_complete:
            callback(request)
