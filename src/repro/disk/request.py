"""The I/O request object exchanged between workloads and storage models.

A single :class:`IORequest` flows from a workload generator (or trace
reader), optionally through a RAID controller that splits it, down to a
drive, which stamps it with per-phase service measurements on the way
back.  All times are in milliseconds; addresses are 512-byte sectors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["IORequest", "SECTOR_BYTES", "new_request", "release_request"]

#: Size of one logical sector, in bytes.
SECTOR_BYTES = 512

_request_ids = itertools.count()

#: Slab pool: dead request shells available for reuse.  The fast
#: constructors (:func:`new_request`, :meth:`IORequest.clone_slice`)
#: draw shells from here instead of allocating, and the RAID
#: controller returns each physical slice via :func:`release_request`
#: once its measurements are copied out.  Every field — including a
#: fresh ``request_id`` from the shared counter — is overwritten on
#: reuse, so pooling is invisible to everything but the allocator.
_slab: List["IORequest"] = []

#: Workload-identity fields :meth:`IORequest.clone` may override on its
#: allocation-free fast path.
_CLONE_KEYS = frozenset(
    ("lba", "size", "is_read", "arrival_time", "source_disk", "background")
)


@dataclass(slots=True)
class IORequest:
    """One logical I/O: ``size`` sectors at ``lba``, read or write.

    Measurement fields are filled in by whichever drive services the
    request; they remain at their defaults for cache hits (other than
    ``completion_time``).
    """

    lba: int
    size: int
    is_read: bool
    arrival_time: float = 0.0
    #: Index of the source disk in the original multi-disk trace; used by
    #: the MD→HC-SD concatenated layout and by RAID address translation.
    source_disk: int = 0
    #: Background (best-effort) work, e.g. scrubbing or defragmentation.
    #: Freeblock scheduling services these inside foreground rotational
    #: latency windows; intra-disk parallel drives can dedicate an arm.
    background: bool = False
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # -- measurements (stamped by the servicing drive) --------------------
    start_service: Optional[float] = None
    completion_time: Optional[float] = None
    seek_time: float = 0.0
    rotational_latency: float = 0.0
    transfer_time: float = 0.0
    cache_hit: bool = False
    #: Which arm assembly serviced the request (always 0 on a
    #: conventional drive).
    arm_id: int = 0
    #: True when a media error survived the drive's retry budget — the
    #: access completed (timing-wise) but the data is unrecovered and
    #: the layer above must retry, reconstruct, or report loss.
    media_error: bool = False
    #: Retry revolutions spent on this request (drive level) plus, for
    #: logical array requests, slice resubmissions.
    retries: int = 0

    def __post_init__(self) -> None:
        if self.lba < 0:
            raise ValueError(f"lba must be non-negative, got {self.lba}")
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")

    @property
    def end_lba(self) -> int:
        """One past the last sector touched."""
        return self.lba + self.size

    @property
    def response_time(self) -> float:
        """Arrival-to-completion latency; raises if not yet complete."""
        if self.completion_time is None:
            raise ValueError(f"request {self.request_id} not complete")
        return self.completion_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Time spent in actual service (excludes queueing delay)."""
        if self.completion_time is None or self.start_service is None:
            raise ValueError(f"request {self.request_id} not complete")
        return self.completion_time - self.start_service

    @property
    def queue_delay(self) -> float:
        """Time spent waiting before service began."""
        if self.start_service is None:
            raise ValueError(f"request {self.request_id} not started")
        return self.start_service - self.arrival_time

    def clone(self, **overrides) -> "IORequest":
        """A fresh request (new id, cleared measurements) with overrides.

        Used by the RAID layer to fan a logical request out into
        per-disk physical requests.
        """
        if overrides and not _CLONE_KEYS.issuperset(overrides):
            # Overrides beyond the workload fields: take the generic
            # constructor path so unknown keys fail loudly and
            # measurement-field overrides behave as before.
            fields = {
                "lba": self.lba,
                "size": self.size,
                "is_read": self.is_read,
                "arrival_time": self.arrival_time,
                "source_disk": self.source_disk,
                "background": self.background,
            }
            fields.update(overrides)
            return IORequest(**fields)
        # Hot path (one clone per physical slice): build the instance
        # directly, skipping the dataclass __init__/__post_init__ pair,
        # with the same validation on the two checked fields.
        if not overrides:
            return self.clone_slice(
                self.lba,
                self.size,
                self.is_read,
                self.arrival_time,
                self.source_disk,
            )
        new = object.__new__(IORequest)
        get = overrides.get
        new.lba = lba = get("lba", self.lba)
        new.size = size = get("size", self.size)
        if lba < 0:
            raise ValueError(f"lba must be non-negative, got {lba}")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        new.is_read = get("is_read", self.is_read)
        new.arrival_time = get("arrival_time", self.arrival_time)
        new.source_disk = get("source_disk", self.source_disk)
        new.background = get("background", self.background)
        new.request_id = next(_request_ids)
        new.start_service = None
        new.completion_time = None
        new.seek_time = 0.0
        new.rotational_latency = 0.0
        new.transfer_time = 0.0
        new.cache_hit = False
        new.arm_id = 0
        new.media_error = False
        new.retries = 0
        return new

    def clone_slice(
        self,
        lba: int,
        size: int,
        is_read: bool,
        arrival_time: float,
        source_disk: int,
    ) -> "IORequest":
        """Positional fast path of :meth:`clone` for per-disk slices.

        Equivalent to ``clone(lba=..., size=..., is_read=...,
        arrival_time=..., source_disk=...)`` without the keyword
        plumbing; the array controller issues one of these per physical
        slice.
        """
        if lba < 0:
            raise ValueError(f"lba must be non-negative, got {lba}")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        new = _slab.pop() if _slab else object.__new__(IORequest)
        new.lba = lba
        new.size = size
        new.is_read = is_read
        new.arrival_time = arrival_time
        new.source_disk = source_disk
        new.background = self.background
        new.request_id = next(_request_ids)
        new.start_service = None
        new.completion_time = None
        new.seek_time = 0.0
        new.rotational_latency = 0.0
        new.transfer_time = 0.0
        new.cache_hit = False
        new.arm_id = 0
        new.media_error = False
        new.retries = 0
        return new

    def __str__(self) -> str:
        kind = "R" if self.is_read else "W"
        return (
            f"IORequest#{self.request_id}({kind} lba={self.lba} "
            f"size={self.size} t={self.arrival_time:.3f})"
        )


def new_request(
    lba: int,
    size: int,
    is_read: bool,
    arrival_time: float = 0.0,
    source_disk: int = 0,
) -> IORequest:
    """Slab-backed fast constructor for workload generators.

    Equivalent to ``IORequest(lba=..., size=..., is_read=...,
    arrival_time=..., source_disk=...)`` — same validation, same id
    sequence — without the dataclass ``__init__``/``__post_init__``
    frames, and reusing a pooled shell when one is free.  Generators
    build whole traces through this, which is where the batched
    front end gets its allocation savings.
    """
    if lba < 0:
        raise ValueError(f"lba must be non-negative, got {lba}")
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    new = _slab.pop() if _slab else object.__new__(IORequest)
    new.lba = lba
    new.size = size
    new.is_read = is_read
    new.arrival_time = arrival_time
    new.source_disk = source_disk
    new.background = False
    new.request_id = next(_request_ids)
    new.start_service = None
    new.completion_time = None
    new.seek_time = 0.0
    new.rotational_latency = 0.0
    new.transfer_time = 0.0
    new.cache_hit = False
    new.arm_id = 0
    new.media_error = False
    new.retries = 0
    return new


def release_request(request: IORequest) -> None:
    """Return a dead request shell to the slab pool.

    The caller asserts nothing will touch ``request`` again: the RAID
    controller releases each physical slice after copying its
    measurements to the logical request, and drive tests may release
    requests they own.  Releasing a request something still references
    is undefined — the shell's every field changes on reuse.
    """
    _slab.append(request)
