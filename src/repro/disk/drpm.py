"""DRPM: dynamic-RPM disks (Gurumurthi et al., ISCA '03 — paper §5).

The incumbent approach to server-disk power management that the paper
positions intra-disk parallelism against: instead of adding actuators
and designing for a lower static RPM, a DRPM drive *modulates* its
spindle speed at runtime — spinning down through a ladder of RPM
levels when load is light and back up when a queue builds, paying a
transition delay each step.

:class:`DynamicRpmDrive` implements the mechanism at the level this
package needs for the comparison benchmark:

* a ladder of RPM levels (full speed first);
* a control-loop process sampling queue depth every
  ``control_interval_ms`` — spin down one level after a sustained idle
  period, spin straight up to full speed when the queue exceeds a
  threshold;
* transitions take ``transition_ms_per_step`` per level and block
  service (requests keep queueing);
* per-level residency accounting, from which
  :meth:`average_power_watts` integrates the near-cubic RPM/power law.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.disk.drive import ConventionalDrive
from repro.disk.rotation import Spindle
from repro.disk.scheduler import QueueScheduler
from repro.disk.specs import DriveSpec
from repro.power.models import DrivePowerModel
from repro.sim.engine import Environment

__all__ = ["DynamicRpmDrive"]

#: The RPM ladder of the original DRPM proposal (subset).
DEFAULT_RPM_LEVELS = (7200.0, 6200.0, 5200.0, 4200.0)


class DynamicRpmDrive(ConventionalDrive):
    """A conventional drive with dynamic spindle-speed control.

    Parameters
    ----------
    rpm_levels:
        Available speeds, highest (service speed) first.
    spin_down_idle_ms:
        Sustained idle time before stepping one level down.
    spin_up_queue_depth:
        Queue depth that triggers an immediate return to full speed.
    transition_ms_per_step:
        Service blackout per level crossed during a transition.
    control_interval_ms:
        Control-loop sampling period.
    """

    def __init__(
        self,
        env: Environment,
        spec: DriveSpec,
        scheduler: Optional[QueueScheduler] = None,
        rpm_levels=DEFAULT_RPM_LEVELS,
        spin_down_idle_ms: float = 200.0,
        spin_up_queue_depth: int = 1,
        transition_ms_per_step: float = 50.0,
        control_interval_ms: float = 10.0,
        **kwargs,
    ):
        levels = [float(level) for level in rpm_levels]
        if not levels:
            raise ValueError("need at least one RPM level")
        if levels != sorted(levels, reverse=True):
            raise ValueError(
                f"rpm_levels must be highest-first, got {levels}"
            )
        if spec.rpm != levels[0]:
            spec = dataclasses.replace(spec, rpm=levels[0])
        super().__init__(env, spec, scheduler=scheduler, **kwargs)
        self.rpm_levels: List[float] = levels
        self.spin_down_idle_ms = spin_down_idle_ms
        self.spin_up_queue_depth = spin_up_queue_depth
        self.transition_ms_per_step = transition_ms_per_step
        self.control_interval_ms = control_interval_ms

        self._level_index = 0
        self._last_activity = 0.0
        self._transition_until = 0.0
        #: Milliseconds spent at each RPM level (includes transitions,
        #: charged to the destination level).
        self.rpm_residency_ms: Dict[float, float] = {
            level: 0.0 for level in levels
        }
        self._residency_marker = 0.0
        self.transitions = 0
        self._control_wakeup = None
        env.process(self._control_loop())

    # -- state ------------------------------------------------------------
    @property
    def current_rpm(self) -> float:
        return self.rpm_levels[self._level_index]

    @property
    def at_full_speed(self) -> bool:
        return self._level_index == 0

    def _note_residency(self) -> None:
        now = self.env.now
        self.rpm_residency_ms[self.current_rpm] += (
            now - self._residency_marker
        )
        self._residency_marker = now

    # -- control loop -------------------------------------------------------
    def submit(self, request):
        event = super().submit(request)
        if self._control_wakeup is not None and (
            not self._control_wakeup.triggered
        ):
            self._control_wakeup.succeed()
        return event

    def _control_loop(self):
        while True:
            # Park at the bottom of the ladder while idle: the loop
            # resumes on the next submission, so an idle drive does not
            # keep the event schedule alive forever.
            if (
                self.outstanding == 0
                and self._level_index == len(self.rpm_levels) - 1
            ):
                self._control_wakeup = self.env.event()
                yield self._control_wakeup
                self._control_wakeup = None
                self._last_activity = self.env.now
            yield self.env.timeout(self.control_interval_ms)
            if self.outstanding > 0:
                self._last_activity = self.env.now
                if (
                    not self.at_full_speed
                    and self.outstanding >= self.spin_up_queue_depth
                ):
                    yield from self._transition_to(0)
                continue
            idle_for = self.env.now - self._last_activity
            if (
                idle_for >= self.spin_down_idle_ms
                and self._level_index < len(self.rpm_levels) - 1
            ):
                yield from self._transition_to(self._level_index + 1)
                # Restart the idle clock so each further step requires
                # another sustained idle period.
                self._last_activity = self.env.now

    def _transition_to(self, index: int):
        if index == self._level_index:
            return
        steps = abs(index - self._level_index)
        self._note_residency()
        self._level_index = index
        delay = steps * self.transition_ms_per_step
        self._transition_until = self.env.now + delay
        self.transitions += 1
        self.spindle = Spindle(self.current_rpm)
        yield self.env.timeout(delay)

    # -- service hooks ---------------------------------------------------------
    def _service(self, request):
        self._last_activity = self.env.now
        # Service stalls while the spindle settles at a new speed.
        remaining = self._transition_until - self.env.now
        if remaining > 0:
            yield self.env.timeout(remaining)
        yield from super()._service(request)
        self._last_activity = self.env.now

    # -- power ---------------------------------------------------------------
    def average_power_watts(self, elapsed_ms: Optional[float] = None) -> float:
        """Residency-weighted average power.

        Integrates the idle power of each RPM level over its residency
        plus the VCM/transfer energy of the activity recorded in
        ``stats`` (charged at full-speed mode powers, a conservative
        upper bound since DRPM serves at full speed).
        """
        self._note_residency()
        elapsed = elapsed_ms if elapsed_ms is not None else self.env.now
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed}")
        energy_mj = 0.0
        for level, residency in self.rpm_residency_ms.items():
            model = DrivePowerModel.from_spec(
                dataclasses.replace(self.spec, rpm=level)
            )
            energy_mj += model.idle_watts * residency
        full = DrivePowerModel.from_spec(self.spec)
        energy_mj += full.vcm_watts * self.stats.seek_ms
        energy_mj += full.transfer_extra_watts * self.stats.transfer_ms
        return energy_mj / elapsed
