"""Span recording: the core of the observability subsystem.

A *span* is one attributed interval of simulated time — a request
waiting in a queue, an arm seeking, the platter rotating under the
head, sectors streaming off the media.  Spans carry a ``track``: a
``(process, thread)`` pair that the exporters map onto Perfetto's
process/thread rows, so a drive renders as a process and each arm
assembly as a track inside it.

Because every phase duration in this simulator is fixed at dispatch
time (the drives issue one combined timeout per request), spans are
recorded *prospectively* — the instrumentation knows each phase's start
and duration before yielding — and recording never schedules engine
events.  Tracing therefore cannot perturb a run: figures are
bit-identical with a :class:`Tracer` installed or not.

The default tracer everywhere is the :data:`NULL_TRACER` singleton,
whose ``enabled`` flag lets hot paths skip even the argument packing::

    if tracer.enabled:
        tracer.span("seek", "seek", start, dur, (self.label, "arm 0"))

Tracer discovery is two-level: an explicit ``env.tracer`` attribute on
the simulation environment wins, else the *ambient* tracer installed
with :func:`tracing` / :func:`set_current_tracer` applies.  The ambient
level is what lets ``python -m repro <cmd> --trace`` observe a whole
experiment without changing any driver signature, including jobs that
build their environments deep inside worker processes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.registry import NULL_REGISTRY, TelemetryRegistry

__all__ = [
    "NULL_TRACER",
    "PHASES",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "set_current_tracer",
    "tracer_for",
    "tracing",
]

#: The canonical span categories emitted by the instrumented stack.
#: ``overhead`` (controller overhead) and ``array`` (logical-request
#: envelopes) ride along; the first six are the analytically
#: meaningful phases of the paper's decomposition, and ``retry`` is
#: the fault layer's contribution — revolutions spent re-reading after
#: an injected media error.
PHASES = (
    "queue", "seek", "rotation", "transfer", "cache", "rebuild", "retry"
)


class Span:
    """One attributed interval: ``[ts, ts + dur)`` in simulated ms.

    ``dur is None`` marks an *instant* (a point annotation, e.g. an
    SPTF arm decision).  ``track`` is ``(process, thread)``.
    """

    __slots__ = ("name", "cat", "ts", "dur", "track", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: Optional[float],
        track: Tuple[str, str],
        args: Optional[Dict] = None,
    ):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.track = track
        self.args = args

    @property
    def is_instant(self) -> bool:
        return self.dur is None

    def to_tuple(self) -> Tuple:
        """Picklable/JSON-compatible form (used across processes)."""
        return (
            self.name,
            self.cat,
            self.ts,
            self.dur,
            self.track[0],
            self.track[1],
            self.args,
        )

    @classmethod
    def from_tuple(cls, payload: Tuple) -> "Span":
        name, cat, ts, dur, process, thread, args = payload
        return cls(name, cat, ts, dur, (process, thread), args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = (
            f"@{self.ts:.3f}"
            if self.dur is None
            else f"[{self.ts:.3f}+{self.dur:.3f}]"
        )
        return f"<Span {self.cat}/{self.name} {when} {self.track}>"


class Tracer:
    """Records spans and telemetry for one traced session.

    Parameters
    ----------
    max_spans:
        Optional cap on retained spans; once reached, further spans are
        counted in :attr:`dropped_spans` instead of stored, bounding
        memory on very long runs.  ``None`` (default) keeps everything.
    """

    enabled = True

    #: Slots in the preallocated recording buffer.  Recording a span
    #: writes one raw tuple into the next slot; Span objects are only
    #: materialised when the buffer fills (one batch at a time) or when
    #: :attr:`spans` is read, so the per-span hot-path cost is a bounds
    #: check and a slot store.
    BUFFER_SLOTS = 1024

    def __init__(self, max_spans: Optional[int] = None):
        if max_spans is not None and max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.telemetry = TelemetryRegistry()
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._scopes: List[str] = []
        #: Materialised spans (everything drained from the buffer).
        self._materialized: List[Span] = []
        #: Preallocated ring of raw ``(name, cat, ts, dur, track,
        #: args)`` records; slots are reused after every drain.
        self._buffer: List[Optional[Tuple]] = [None] * self.BUFFER_SLOTS
        self._buffered = 0

    # -- recording ---------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Every recorded span, in recording order.

        Reading drains any staged raw records first, so the list is
        always complete and identical to what the pre-buffer tracer
        stored eagerly.  The returned list is the live store (exporters
        may append recovered spans to it).
        """
        if self._buffered:
            self._drain()
        return self._materialized

    def span(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        track: Tuple[str, str],
        args: Optional[Dict] = None,
    ) -> None:
        """Record one completed interval on ``track``."""
        max_spans = self.max_spans
        if max_spans is not None and (
            len(self._materialized) + self._buffered >= max_spans
        ):
            self.dropped_spans += 1
            return
        if self._scopes:
            track = self._scoped(track)
        buffered = self._buffered
        self._buffer[buffered] = (name, cat, ts, dur, track, args)
        buffered += 1
        self._buffered = buffered
        if buffered == self.BUFFER_SLOTS:
            self._drain()

    def instant(
        self,
        name: str,
        ts: float,
        track: Tuple[str, str],
        args: Optional[Dict] = None,
    ) -> None:
        """Record a point annotation (rendered as an arrow/flag)."""
        self.span(name, "instant", ts, None, track, args)

    def _drain(self) -> None:
        """Materialise the staged batch and recycle the buffer slots."""
        buffer = self._buffer
        append = self._materialized.append
        for index in range(self._buffered):
            name, cat, ts, dur, track, args = buffer[index]
            append(Span(name, cat, ts, dur, track, args))
            buffer[index] = None
        self._buffered = 0

    def _store(self, span: Span) -> None:
        """Store an already-built :class:`Span` (merge/import path)."""
        if self.max_spans is not None and (
            len(self._materialized) + self._buffered >= self.max_spans
        ):
            self.dropped_spans += 1
            return
        if self._buffered:
            self._drain()
        self._materialized.append(span)

    # -- scoping -----------------------------------------------------------
    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Prefix the *process* of every span recorded inside.

        The trace driver wraps each simulation run in the run's label,
        so identically named drives from different runs (every HC-SD
        drive is called ``barracuda-es-…``) land on distinct Perfetto
        process rows.
        """
        self._scopes.append(name)
        try:
            yield
        finally:
            self._scopes.pop()

    def _scoped(self, track: Tuple[str, str]) -> Tuple[str, str]:
        if not self._scopes:
            return track
        prefix = "/".join(self._scopes)
        return (f"{prefix}/{track[0]}", track[1])

    # -- inspection --------------------------------------------------------
    def spans_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.cat] = counts.get(span.cat, 0) + 1
        return counts

    def tracks(self) -> List[Tuple[str, str]]:
        """Distinct ``(process, thread)`` pairs, in first-seen order."""
        seen: Dict[Tuple[str, str], None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        return list(seen)

    # -- cross-process transport -------------------------------------------
    def payload(self) -> Dict:
        """Everything recorded, as picklable plain data."""
        return {
            "spans": [span.to_tuple() for span in self.spans],
            "telemetry": self.telemetry.snapshot(),
            "dropped_spans": self.dropped_spans,
        }

    def merge_payload(self, payload: Dict) -> None:
        """Fold a worker tracer's :meth:`payload` into this tracer."""
        for item in payload.get("spans", []):
            self._store(Span.from_tuple(item))
        self.telemetry.merge_snapshot(payload.get("telemetry", {}))
        self.dropped_spans += payload.get("dropped_spans", 0)

    def clear(self) -> None:
        self._materialized.clear()
        self._buffer = [None] * self.BUFFER_SLOTS
        self._buffered = 0
        self.telemetry = TelemetryRegistry()
        self.dropped_spans = 0


class NullTracer:
    """The zero-cost disabled tracer.

    Every recording method is a no-op and :attr:`enabled` is ``False``
    so instrumentation sites can skip argument construction entirely.
    Use the :data:`NULL_TRACER` singleton rather than instantiating.
    """

    enabled = False
    telemetry = NULL_REGISTRY
    spans: List[Span] = []
    dropped_spans = 0

    __slots__ = ()

    def span(self, name, cat, ts, dur, track, args=None) -> None:
        pass

    def instant(self, name, ts, track, args=None) -> None:
        pass

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        yield

    def spans_by_category(self) -> Dict[str, int]:
        return {}

    def tracks(self) -> List[Tuple[str, str]]:
        return []

    def payload(self) -> Dict:
        return {"spans": [], "telemetry": {}, "dropped_spans": 0}

    def merge_payload(self, payload: Dict) -> None:
        pass

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()

#: The ambient tracer: consulted by components whose environment does
#: not carry an explicit one.  Defaults to the null tracer.
_ambient: object = NULL_TRACER


def current_tracer():
    """The ambient tracer (``NULL_TRACER`` unless one is installed)."""
    return _ambient


def set_current_tracer(tracer) -> object:
    """Install ``tracer`` as the ambient tracer; returns the previous."""
    global _ambient
    previous = _ambient
    _ambient = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install an ambient tracer for the duration of the block::

        with tracing() as tracer:
            run_limit_study(requests=500)
        write_chrome_trace(tracer, "trace.json")
    """
    active = tracer if tracer is not None else Tracer()
    previous = set_current_tracer(active)
    try:
        yield active
    finally:
        set_current_tracer(previous)


def tracer_for(env) -> object:
    """Resolve the tracer for a simulation environment.

    An explicit ``env.tracer`` wins; otherwise the ambient tracer
    applies.  Components capture the result once at construction.
    """
    tracer = getattr(env, "tracer", None)
    return tracer if tracer is not None else _ambient
