"""Live operational metrics: counters, gauges and histograms.

Where :mod:`repro.obs.tracer` answers "what happened inside this run"
after the fact, this module answers "what is the system doing right
now": queue depth, worker liveness, cache hit ratio, shard stall
time, replay rates.  It is dependency-free and mirrors the tracer's
zero-cost contract — the default everywhere is the
:data:`NULL_METRICS` singleton whose every method is a no-op and
whose :attr:`~NullMetrics.enabled` flag is ``False``, so
uninstrumented runs execute the exact same arithmetic and figures
stay bit-identical with metrics on or off.  Instrumentation never
schedules simulation events or reads simulated clocks to make
control decisions; wall-clock measurement is the only side channel.

Three metric kinds, Prometheus-flavoured:

* :class:`Counter` — monotonically non-decreasing totals
  (``repro_jobs_completed_total``).
* :class:`Gauge` — last-written point-in-time values
  (``repro_queue_depth``).
* :class:`Histogram` — fixed, deterministic bucket bounds chosen at
  declaration time (never adapted to data), so two runs observing
  the same values produce byte-identical snapshots
  (``repro_job_wall_ms``).

Metrics are declared on a :class:`MetricsRegistry` as *families*
with a fixed label-name set; ``family.labels(worker="w0")`` returns
the child series for one label-value combination (get-or-create).

Exporters: :func:`render_prometheus` (text exposition format, for a
file, stdout or a scrape shim), :func:`append_snapshot_jsonl`
(periodic JSONL snapshots), and atomic per-worker snapshot files
(:func:`write_worker_snapshot` / :func:`load_worker_snapshots` /
:func:`merge_worker_snapshots`) as the cross-process aggregation
path for ``repro serve`` workers: each worker atomically replaces
its own file under ``<queue>/metrics/`` and any reader merges the
set (counters and histograms add, gauges last-write-wins).

Discovery mirrors the tracer: :func:`current_metrics` /
:func:`set_current_metrics` / the :func:`metrics_session` context
manager install an ambient registry, and :func:`metrics_for`
resolves an environment's registry (explicit ``env.metrics`` wins).
"""

from __future__ import annotations

import json
import math
import os
import re
import tempfile
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_SIZE_BUCKETS",
    "METRICS_DIRNAME",
    "METRICS_SCHEMA",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetrics",
    "append_snapshot_jsonl",
    "current_metrics",
    "load_worker_snapshots",
    "merge_worker_snapshots",
    "metrics_dir",
    "metrics_for",
    "metrics_session",
    "parse_prometheus",
    "render_prometheus",
    "set_current_metrics",
    "write_prometheus",
    "write_worker_snapshot",
]

#: Version tag embedded in snapshots and worker snapshot files.
METRICS_SCHEMA = "repro-metrics/1"

#: Subdirectory of a queue root that holds per-worker snapshot files.
METRICS_DIRNAME = "metrics"

#: Fixed latency bucket upper bounds in milliseconds.  Deterministic
#: by construction: never derived from observed data.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0,
)

#: Fixed size/count bucket upper bounds (requests, sectors, bytes).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0,
    65536.0, 262144.0, 1048576.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically non-decreasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value; last write wins."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A distribution over fixed, deterministic bucket bounds.

    ``bounds`` are inclusive upper edges (Prometheus ``le``); an
    implicit ``+Inf`` bucket catches the tail.  Bounds are fixed at
    declaration so snapshots of identical observation streams are
    byte-identical.
    """

    kind = "histogram"
    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        cleaned = tuple(float(edge) for edge in bounds)
        if not cleaned:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(cleaned, cleaned[1:])):
            raise ValueError(
                f"histogram bounds must be strictly increasing: {cleaned}"
            )
        if any(math.isnan(edge) or math.isinf(edge) for edge in cleaned):
            raise ValueError("histogram bounds must be finite")
        self.bounds = cleaned
        self.bucket_counts = [0] * (len(cleaned) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


_FACTORIES = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """All series of one metric name: a fixed label-name set plus a
    child metric per observed label-value combination."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"bad label name {label!r} for {name}")
        if len(set(label_names)) != len(tuple(label_names)):
            raise ValueError(f"duplicate label names for {name}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        if kind == "histogram":
            # Validate (and normalise to floats) at declaration, so a
            # bad bucket spec fails at the metric site, not at the
            # first observation.
            self.buckets = Histogram(buckets or ()).bounds
        else:
            self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _FACTORIES[self.kind]()

    def labels(self, **labels: object):
        """The child series for one label-value combination
        (get-or-create).  Values are coerced to strings."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _default(self):
        if self.label_names:
            raise ValueError(
                f"{self.name} is labeled ({list(self.label_names)}); "
                "use .labels(...)"
            )
        return self.labels()

    # Unlabeled convenience: the family proxies its single series.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label-values, child) pairs sorted by label values."""
        return sorted(self._children.items())


class MetricsRegistry:
    """A process-local collection of metric families.

    Accessors are get-or-create and validate that redeclarations
    agree on kind, label names and (for histograms) bucket bounds,
    so two modules naming the same metric cannot silently fork it.
    """

    enabled = True
    __slots__ = ("_families",)

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(
                name, kind, help=help, label_names=labels, buckets=buckets
            )
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"{name} already declared as {family.kind}, not {kind}"
            )
        if family.label_names != tuple(labels):
            raise ValueError(
                f"{name} already declared with labels "
                f"{list(family.label_names)}, not {list(labels)}"
            )
        if buckets is not None and family.buckets != tuple(
            float(edge) for edge in buckets
        ):
            raise ValueError(f"{name} already declared with other buckets")
        if help and not family.help:
            family.help = help
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets=buckets)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def sample_count(self) -> int:
        """Total number of live series across all families."""
        return sum(len(f._children) for f in self._families.values())

    def clear(self) -> None:
        self._families.clear()

    # -- snapshots ----------------------------------------------------

    def snapshot(self) -> Dict:
        """A JSON-ready snapshot; deterministic (sorted) so identical
        registries serialize byte-identically."""
        families = {}
        for family in self.families():
            entry: Dict[str, object] = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
                entry["series"] = [
                    {
                        "labels": dict(zip(family.label_names, key)),
                        "counts": list(child.bucket_counts),
                        "sum": child.sum,
                        "count": child.count,
                    }
                    for key, child in family.series()
                ]
            else:
                entry["series"] = [
                    {
                        "labels": dict(zip(family.label_names, key)),
                        "value": child.value,
                    }
                    for key, child in family.series()
                ]
            families[family.name] = entry
        return {"schema": METRICS_SCHEMA, "families": families}

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold ``snapshot`` (from :meth:`snapshot`) into this
        registry: counters and histograms add, gauges last-write-wins.
        Families must agree on kind/labels/buckets."""
        schema = snapshot.get("schema")
        if schema != METRICS_SCHEMA:
            raise ValueError(
                f"cannot merge metrics schema {schema!r} "
                f"(expected {METRICS_SCHEMA})"
            )
        for name, entry in sorted(snapshot.get("families", {}).items()):
            kind = entry["kind"]
            labels = tuple(entry.get("labels", ()))
            family = self._family(
                name, kind, entry.get("help", ""), labels,
                buckets=entry.get("buckets"),
            )
            for item in entry.get("series", ()):
                child = family.labels(**item.get("labels", {}))
                if kind == "counter":
                    child.inc(item["value"])
                elif kind == "gauge":
                    child.set(item["value"])
                else:
                    counts = item["counts"]
                    if len(counts) != len(child.bucket_counts):
                        raise ValueError(
                            f"{name}: bucket count mismatch "
                            f"({len(counts)} vs {len(child.bucket_counts)})"
                        )
                    for index, delta in enumerate(counts):
                        child.bucket_counts[index] += delta
                    child.sum += item["sum"]
                    child.count += item["count"]


class NullMetrics:
    """The zero-cost disabled registry.

    Every accessor returns :data:`NULL_METRICS` itself, whose
    recording methods are all no-ops, and :attr:`enabled` is
    ``False`` so instrumentation sites can skip argument construction
    entirely.  Use the singleton rather than instantiating.
    """

    enabled = False
    value = 0.0
    __slots__ = ()

    def counter(self, name, help="", labels=()) -> "NullMetrics":
        return self

    def gauge(self, name, help="", labels=()) -> "NullMetrics":
        return self

    def histogram(self, name, help="", labels=(), buckets=()) -> "NullMetrics":
        return self

    def labels(self, **labels) -> "NullMetrics":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def families(self) -> List[MetricFamily]:
        return []

    def sample_count(self) -> int:
        return 0

    def snapshot(self) -> Dict:
        return {"schema": METRICS_SCHEMA, "families": {}}

    def merge_snapshot(self, snapshot: Dict) -> None:
        pass

    def clear(self) -> None:
        pass


NULL_METRICS = NullMetrics()

#: The ambient registry: consulted by components whose environment
#: does not carry an explicit one.  Defaults to the null registry.
_ambient: object = NULL_METRICS


def current_metrics():
    """The ambient registry (``NULL_METRICS`` unless installed)."""
    return _ambient


def set_current_metrics(registry) -> object:
    """Install ``registry`` as ambient; returns the previous one."""
    global _ambient
    previous = _ambient
    _ambient = registry if registry is not None else NULL_METRICS
    return previous


@contextmanager
def metrics_session(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Install an ambient registry for the duration of the block::

        with metrics_session() as metrics:
            run_limit_study(requests=500)
        write_prometheus(metrics, "metrics.prom")
    """
    active = registry if registry is not None else MetricsRegistry()
    previous = set_current_metrics(active)
    try:
        yield active
    finally:
        set_current_metrics(previous)


def metrics_for(env) -> object:
    """Resolve the metrics registry for a simulation environment.

    An explicit ``env.metrics`` wins; otherwise the ambient registry
    applies.  Components capture the result once at construction.
    """
    registry = getattr(env, "metrics", None)
    return registry if registry is not None else _ambient


# -- Prometheus text exposition --------------------------------------


def _fmt(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _merge_label_text(
    names: Sequence[str], values: Sequence[str], extra: str, extra_value: str
) -> str:
    inner = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    inner.append(f'{extra}="{_escape_label(extra_value)}"')
    return "{" + ",".join(inner) + "}"


def render_prometheus(source: Union[MetricsRegistry, Dict]) -> str:
    """The Prometheus text exposition of a registry or snapshot.

    Families are sorted by name and series by label values, so the
    output for identical metric states is byte-identical.
    """
    snapshot = source if isinstance(source, dict) else source.snapshot()
    lines: List[str] = []
    for name, entry in sorted(snapshot.get("families", {}).items()):
        kind = entry["kind"]
        label_names = tuple(entry.get("labels", ()))
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        series = sorted(
            entry.get("series", ()),
            key=lambda item: tuple(
                item.get("labels", {}).get(label, "")
                for label in label_names
            ),
        )
        for item in series:
            values = tuple(
                item.get("labels", {}).get(label, "")
                for label in label_names
            )
            if kind == "histogram":
                bounds = list(entry.get("buckets", ())) + [math.inf]
                cumulative = 0
                for bound, count in zip(bounds, item["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_merge_label_text(label_names, values, 'le', _fmt(bound))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(label_names, values)}"
                    f" {_fmt(item['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_text(label_names, values)}"
                    f" {item['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_text(label_names, values)}"
                    f" {_fmt(item['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def parse_prometheus(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse text exposition back into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(name, value)`` pairs.  Covers
    the subset this module emits (enough for smoke checks and
    round-trip tests, not a general scrape parser).
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels = []
        for name, value in _LABEL_PAIR_RE.findall(match.group("labels") or ""):
            labels.append(
                (
                    name,
                    value.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\"),
                )
            )
        value_text = match.group("value")
        value = math.inf if value_text == "+Inf" else float(value_text)
        samples[(match.group("name"), tuple(sorted(labels)))] = value
    return samples


def _write_atomic(path: str, data: str) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".metrics-")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_prometheus(
    source: Union[MetricsRegistry, Dict], path: Union[str, os.PathLike]
) -> str:
    """Atomically write the text exposition of ``source`` to
    ``path``; returns the path."""
    _write_atomic(str(path), render_prometheus(source))
    return str(path)


def append_snapshot_jsonl(
    source: Union[MetricsRegistry, Dict],
    path: Union[str, os.PathLike],
    now: Optional[float] = None,
    meta: Optional[Dict] = None,
) -> Dict:
    """Append one timestamped snapshot line to a JSONL file.

    Periodic callers (the ``--watch`` dashboard, a worker heartbeat)
    build a time series of full snapshots this way; each line is
    ``{"written_at": ..., "metrics": <snapshot>}`` plus ``meta``.
    """
    snapshot = source if isinstance(source, dict) else source.snapshot()
    record = dict(meta or {})
    record["written_at"] = time.time() if now is None else now
    record["metrics"] = snapshot
    with open(str(path), "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


# -- cross-process aggregation ---------------------------------------


def metrics_dir(root: Union[str, os.PathLike]) -> str:
    """The per-worker snapshot directory under a queue root."""
    return os.path.join(str(root), METRICS_DIRNAME)


def write_worker_snapshot(
    root: Union[str, os.PathLike],
    worker: str,
    registry: Union[MetricsRegistry, Dict],
    now: Optional[float] = None,
    pid: Optional[int] = None,
) -> str:
    """Atomically replace this worker's snapshot file under
    ``<root>/metrics/``.

    The filename carries the pid so successive serve sessions on the
    same queue accumulate (counters from a finished worker keep
    counting toward the queue-lifetime totals) instead of silently
    overwriting a predecessor with the same worker name.
    """
    snapshot = (
        registry if isinstance(registry, dict) else registry.snapshot()
    )
    worker_pid = os.getpid() if pid is None else pid
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", str(worker))
    payload = {
        "schema": METRICS_SCHEMA,
        "worker": str(worker),
        "pid": worker_pid,
        "written_at": time.time() if now is None else now,
        "metrics": snapshot,
    }
    path = os.path.join(metrics_dir(root), f"{safe}-{worker_pid}.json")
    _write_atomic(path, json.dumps(payload, sort_keys=True) + "\n")
    return path


def load_worker_snapshots(root: Union[str, os.PathLike]) -> List[Dict]:
    """All worker snapshot payloads under ``<root>/metrics/``, sorted
    by filename.  Unreadable or half-typed files are skipped (the
    writer is atomic, but a scraper may race a deleted queue)."""
    directory = metrics_dir(root)
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        return []
    payloads = []
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if payload.get("schema") != METRICS_SCHEMA:
            continue
        payloads.append(payload)
    return payloads


def merge_worker_snapshots(
    root: Union[str, os.PathLike],
    into: Optional[MetricsRegistry] = None,
    now: Optional[float] = None,
) -> Tuple[MetricsRegistry, List[Dict]]:
    """Merge every worker snapshot under ``<root>/metrics/`` into one
    registry (counters/histograms add, gauges last-write-wins) and
    derive per-worker heartbeat gauges:

    * ``repro_worker_heartbeat_timestamp{worker,pid}`` — wall-clock
      seconds of the worker's last snapshot write.
    * ``repro_worker_last_seen_seconds{worker,pid}`` — age of that
      write relative to ``now``.

    Returns ``(registry, worker-meta list)`` where each meta dict has
    ``worker``, ``pid`` and ``written_at``.
    """
    registry = into if into is not None else MetricsRegistry()
    reference = time.time() if now is None else now
    workers: List[Dict] = []
    for payload in load_worker_snapshots(root):
        registry.merge_snapshot(payload["metrics"])
        worker = str(payload.get("worker", "?"))
        pid = str(payload.get("pid", "?"))
        written_at = float(payload.get("written_at", 0.0))
        registry.gauge(
            "repro_worker_heartbeat_timestamp",
            help="Wall-clock time of the worker's last metrics write",
            labels=("worker", "pid"),
        ).labels(worker=worker, pid=pid).set(written_at)
        registry.gauge(
            "repro_worker_last_seen_seconds",
            help="Seconds since the worker's last metrics write",
            labels=("worker", "pid"),
        ).labels(worker=worker, pid=pid).set(max(0.0, reference - written_at))
        workers.append(
            {"worker": worker, "pid": payload.get("pid"),
             "written_at": written_at}
        )
    return registry, workers
