"""Render a :class:`~repro.obs.analysis.TraceAnalysis` as text or HTML.

The plain-text report reuses the benchmark-harness table helpers
(:mod:`repro.metrics.report`) so it lands in a terminal or CI log with
the same look as every other artifact.  The HTML report is a single
self-contained file — inline CSS, no scripts, no external assets — so
it survives being uploaded as a CI artifact and opened anywhere.

Both renderers draw from the same section builders, so the two
formats can never drift apart in content.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.report import format_table, hbar
from repro.obs.analysis import TraceAnalysis

__all__ = [
    "render_html",
    "render_text",
    "report_sections",
    "write_html_report",
]

#: Cap on utilization rows: traces of big sweeps have hundreds of
#: tracks, and the tail is all zeros.
MAX_UTILIZATION_ROWS = 30


def _phase_rows(analysis: TraceAnalysis) -> List[Tuple]:
    attribution = analysis.attribution
    rows = []
    for category, total in attribution.ranking:
        rows.append(
            (
                category,
                total,
                attribution.share(category),
                hbar(total, attribution.ranking[0][1], width=24),
            )
        )
    return rows


def _utilization_rows(analysis: TraceAnalysis) -> List[Tuple]:
    tracks = sorted(
        analysis.utilization, key=lambda item: -item.busy_ms
    )[:MAX_UTILIZATION_ROWS]
    rows = []
    for track in tracks:
        gaps = track.idle_gaps
        mean_gap = sum(gaps) / len(gaps) if gaps else 0.0
        rows.append(
            (
                track.process,
                track.thread,
                track.spans,
                track.busy_ms,
                track.utilization,
                len(gaps),
                mean_gap,
            )
        )
    return rows


def _depth_rows(timelines: Dict) -> List[Tuple]:
    return [
        (
            timeline.label,
            timeline.intervals,
            timeline.max_depth,
            timeline.mean_depth,
        )
        for timeline in timelines.values()
    ]


def _response_rows(analysis: TraceAnalysis) -> List[Tuple]:
    return [
        (scope, stats.count, stats.mean, stats.minimum, stats.maximum)
        for scope, stats in sorted(analysis.response_stats.items())
    ]


def report_sections(
    analysis: TraceAnalysis, tolerance_ms: float = 0.0
) -> List[Tuple[str, List[str], List[Tuple]]]:
    """The report's content as ``(title, headers, rows)`` tables.

    Both renderers consume this, so text and HTML always agree.
    """
    sections = [
        (
            "Bottleneck attribution (aggregate ms per phase)",
            ["phase", "total_ms", "share", "bar"],
            _phase_rows(analysis),
        ),
        (
            "Per-track utilization (busiest first)",
            [
                "process",
                "track",
                "spans",
                "busy_ms",
                "util",
                "idle_gaps",
                "mean_gap_ms",
            ],
            _utilization_rows(analysis),
        ),
        (
            "Queue depth (waiting requests, per drive)",
            ["process", "requests", "max_depth", "mean_depth"],
            _depth_rows(analysis.queue_depth),
        ),
        (
            "In-flight logical requests (per array)",
            ["process", "requests", "max_depth", "mean_depth"],
            _depth_rows(analysis.inflight),
        ),
        (
            "Response times by run scope (from array envelopes)",
            ["scope", "requests", "mean_ms", "min_ms", "max_ms"],
            _response_rows(analysis),
        ),
        (
            "Phase-sum reconciliation (spans vs envelopes)",
            ["scope", "requests", "reference", "max_abs_err_ms",
             "verdict"],
            [
                (
                    report.label,
                    report.requests,
                    report.reference,
                    report.max_abs_error_ms,
                    "exact"
                    if report.exact
                    else ("ok" if report.ok else "FAILED"),
                )
                for report in analysis.reconcile(
                    tolerance_ms=tolerance_ms
                )
            ],
        ),
    ]
    return sections


def _verdict_lines(analysis: TraceAnalysis) -> List[str]:
    lines = []
    attribution = analysis.attribution
    top = attribution.top_service_phase
    if top is not None:
        lines.append(
            f"primary service-phase bottleneck: {top} "
            f"({attribution.share(top):.1%} of attributed time)"
        )
    crosscheck = analysis.scaling_crosscheck
    if crosscheck is not None:
        lines.append(
            "paper cross-check (1/2)R vs (1/2)S: mean "
            f"{crosscheck.half_rotation_mean_ms:.2f} ms vs "
            f"{crosscheck.half_seek_mean_ms:.2f} ms -> rotation "
            f"{'IS' if crosscheck.rotation_is_primary else 'is NOT'} "
            "the primary bottleneck"
        )
    if analysis.dropped_spans:
        lines.append(
            f"WARNING: {analysis.dropped_spans} spans dropped "
            "(max_spans cap); analytics cover retained spans only"
        )
    return lines


def _header_lines(analysis: TraceAnalysis, title: str) -> List[str]:
    start, end = analysis.window
    return [
        title,
        f"spans: {len(analysis.spans)}; window: "
        f"[{start:.3f}, {end:.3f}] ms; scopes: "
        f"{', '.join(analysis.scopes) or '(none)'}",
    ]


def render_text(
    analysis: TraceAnalysis,
    title: str = "Trace analysis",
    tolerance_ms: float = 0.0,
) -> str:
    """The full report as aligned plain text."""
    blocks = ["\n".join(_header_lines(analysis, title))]
    verdicts = _verdict_lines(analysis)
    if verdicts:
        blocks.append("\n".join(f"* {line}" for line in verdicts))
    for section_title, headers, rows in report_sections(
        analysis, tolerance_ms=tolerance_ms
    ):
        if not rows:
            continue
        blocks.append(
            format_table(
                headers, rows, title=section_title,
                float_format="{:.3f}",
            )
        )
    telemetry_lines = _telemetry_lines(analysis)
    if telemetry_lines:
        blocks.append(
            "Telemetry\n" + "\n".join(telemetry_lines)
        )
    return "\n\n".join(blocks)


def _telemetry_lines(analysis: TraceAnalysis) -> List[str]:
    lines = []
    counters = analysis.telemetry.get("counters", {})
    for name in sorted(counters):
        lines.append(f"counter {name} = {counters[name]}")
    gauges = analysis.telemetry.get("gauges", {})
    for name in sorted(gauges):
        lines.append(f"gauge {name} = {gauges[name]:g}")
    stats = analysis.telemetry.get("stats", {})
    for name in sorted(stats):
        payload = stats[name]
        lines.append(
            f"stats {name}: n={payload['count']} "
            f"mean={payload['mean']:.3f} min={payload['min']:.3f} "
            f"max={payload['max']:.3f}"
        )
    return lines


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e;
       padding: 0 1rem; }
h1 { font-size: 1.4rem; }
h2 { font-size: 1.05rem; margin-top: 2rem;
     border-bottom: 1px solid #d0d0e0; padding-bottom: 0.3rem; }
table { border-collapse: collapse; margin-top: 0.6rem;
        font-size: 0.85rem; font-variant-numeric: tabular-nums; }
th, td { padding: 0.25rem 0.8rem; text-align: right;
         border-bottom: 1px solid #ececf4; }
th { background: #f4f4fa; }
td:first-child, th:first-child { text-align: left; }
.meta { color: #555; font-size: 0.9rem; }
.verdict { background: #eef7ee; border-left: 4px solid #3a8a3a;
           padding: 0.5rem 0.8rem; margin: 0.4rem 0; }
.warn { background: #fdf3e4; border-left-color: #c07a1a; }
.bar { display: inline-block; height: 0.7rem; background: #5470c6;
       vertical-align: middle; border-radius: 2px; }
.barbox { min-width: 10rem; text-align: left; }
"""


def _html_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return html.escape(str(value))


def _html_table(
    headers: Sequence[str], rows: Sequence[Sequence]
) -> List[str]:
    parts = ["<table>", "<tr>"]
    parts.extend(f"<th>{html.escape(str(h))}</th>" for h in headers)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(f"<td>{_html_cell(cell)}</td>" for cell in row)
        parts.append("</tr>")
    parts.append("</table>")
    return parts


def render_html(
    analysis: TraceAnalysis,
    title: str = "Trace analysis",
    tolerance_ms: float = 0.0,
) -> str:
    """The full report as one self-contained HTML document."""
    start, end = analysis.window
    parts = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        (
            f"<p class=\"meta\">{len(analysis.spans)} spans; window "
            f"[{start:.3f}, {end:.3f}] ms; scopes: "
            f"{html.escape(', '.join(analysis.scopes) or '(none)')}</p>"
        ),
    ]
    for line in _verdict_lines(analysis):
        css = "verdict warn" if line.startswith("WARNING") else "verdict"
        parts.append(f"<div class=\"{css}\">{html.escape(line)}</div>")
    for section_title, headers, rows in report_sections(
        analysis, tolerance_ms=tolerance_ms
    ):
        if not rows:
            continue
        parts.append(f"<h2>{html.escape(section_title)}</h2>")
        if headers and headers[-1] == "bar":
            # Replace the ASCII bar column with a CSS bar, scaled to
            # the section's largest value.
            peak = max(row[1] for row in rows) or 1.0
            html_rows = []
            for row in rows:
                width = 100.0 * row[1] / peak
                bar = (
                    f"<span class=\"bar\" style=\"width:{width:.1f}%"
                    "\"></span>"
                )
                html_rows.append(tuple(row[:-1]) + (bar,))
            parts.append("<table><tr>")
            parts.extend(
                f"<th>{html.escape(str(h))}</th>" for h in headers
            )
            parts.append("</tr>")
            for row in html_rows:
                parts.append("<tr>")
                for cell in row[:-1]:
                    parts.append(f"<td>{_html_cell(cell)}</td>")
                parts.append(f"<td class=\"barbox\">{row[-1]}</td>")
                parts.append("</tr>")
            parts.append("</table>")
        else:
            parts.extend(_html_table(headers, rows))
    telemetry_lines = _telemetry_lines(analysis)
    if telemetry_lines:
        parts.append("<h2>Telemetry</h2><ul>")
        parts.extend(
            f"<li><code>{html.escape(line)}</code></li>"
            for line in telemetry_lines
        )
        parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(
    analysis: TraceAnalysis,
    path: str,
    title: str = "Trace analysis",
    tolerance_ms: float = 0.0,
) -> str:
    """Write the HTML report; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            render_html(analysis, title=title, tolerance_ms=tolerance_ms)
        )
        handle.write("\n")
    return path
