"""Trace exporters: Chrome trace-event (Perfetto) JSON and JSONL.

The Chrome trace-event format is the JSON array/object schema consumed
by ``chrome://tracing`` and https://ui.perfetto.dev: complete spans are
``"ph": "X"`` events with microsecond ``ts``/``dur``, instants are
``"ph": "i"``, and ``"ph": "M"`` metadata events give processes and
threads their names.  This exporter maps a span's ``(process, thread)``
track onto ``(pid, tid)``, so drives appear as processes and arm
assemblies as named threads — exactly the paper's per-arm view.

The JSONL exporter writes one self-describing JSON object per line
(schema ``repro-span/1``) for ad-hoc analysis with ``jq``/pandas.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

__all__ = [
    "SPAN_JSONL_SCHEMA",
    "read_chrome_trace",
    "to_chrome_trace",
    "to_span_records",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
]

SPAN_JSONL_SCHEMA = "repro-span/1"

#: Simulated time is milliseconds; trace-event ``ts``/``dur`` are µs.
_US_PER_MS = 1000.0


def _track_ids(spans) -> Tuple[Dict[str, int], Dict[Tuple[str, str], int]]:
    """Deterministic pid/tid assignment, in first-seen span order."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    for span in spans:
        process, thread = span.track
        if process not in pids:
            pids[process] = len(pids) + 1
        if (process, thread) not in tids:
            tids[(process, thread)] = len(tids) + 1
    return pids, tids


def to_chrome_trace(tracer) -> Dict:
    """Build the trace-event JSON object for ``tracer``'s spans.

    Returns the ``{"traceEvents": [...], ...}`` object form (the
    variant that allows top-level metadata).
    """
    spans = tracer.spans
    pids, tids = _track_ids(spans)
    events: List[Dict] = []
    for process, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
    for (process, thread), tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pids[process],
                "tid": tid,
                "args": {"name": thread},
            }
        )
    for span in spans:
        process, thread = span.track
        event = {
            "name": span.name,
            "cat": span.cat,
            "pid": pids[process],
            "tid": tids[(process, thread)],
            "ts": span.ts * _US_PER_MS,
        }
        if span.dur is None:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = span.dur * _US_PER_MS
        if span.args:
            event["args"] = span.args
        events.append(event)
    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "telemetry": tracer.telemetry.snapshot(),
            "dropped_spans": tracer.dropped_spans,
        },
    }
    return trace


def write_chrome_trace(tracer, path: str) -> str:
    """Write the Chrome trace-event JSON; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer), handle, separators=(",", ":"))
        handle.write("\n")
    return path


def validate_chrome_trace(trace: Dict) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid).

    Checks the invariants Perfetto's importer relies on: the
    ``traceEvents`` list, per-event phase codes, numeric ``ts``, and
    ``dur`` on every complete (``X``) event.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "i", "M", "C"):
            problems.append(f"{where}: unsupported ph {phase!r}")
            continue
        if "name" not in event:
            problems.append(f"{where}: missing name")
        if phase == "M":
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} missing or not an int")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: ts missing or not numeric")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
    return problems


def read_chrome_trace(path: str):
    """Load an exported Chrome trace back into a :class:`Tracer`.

    The inverse of :func:`write_chrome_trace`, for post-hoc analysis
    (``python -m repro report --from-trace``): metadata events restore
    the ``(process, thread)`` track names, ``X``/``i`` events become
    spans/instants, and the embedded telemetry snapshot is merged into
    the tracer's registry.

    Round-trip caveat: exported timestamps are ms × 1000 (trace-event
    µs), so reloaded ``ts``/``dur`` values can differ from the
    originals in the last float bit — analyses of a *loaded* trace
    should reconcile with a small tolerance rather than exactly.
    """
    from repro.obs.tracer import Span, Tracer

    with open(path, encoding="utf-8") as handle:
        trace = json.load(handle)
    problems = validate_chrome_trace(trace)
    if problems:
        raise ValueError(
            f"{path}: not a valid repro trace export: {problems[:3]}"
        )
    processes: Dict[int, str] = {}
    threads: Dict[Tuple[int, int], str] = {}
    for event in trace["traceEvents"]:
        if event.get("ph") != "M":
            continue
        if event["name"] == "process_name":
            processes[event["pid"]] = event["args"]["name"]
        elif event["name"] == "thread_name":
            threads[(event["pid"], event["tid"])] = event["args"]["name"]
    tracer = Tracer()
    for event in trace["traceEvents"]:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        pid, tid = event["pid"], event["tid"]
        track = (
            processes.get(pid, f"process {pid}"),
            threads.get((pid, tid), f"thread {tid}"),
        )
        span = Span(
            event["name"],
            event.get("cat", "instant"),
            event["ts"] / _US_PER_MS,
            event["dur"] / _US_PER_MS if phase == "X" else None,
            track,
            event.get("args"),
        )
        tracer.spans.append(span)
    other = trace.get("otherData", {})
    tracer.telemetry.merge_snapshot(other.get("telemetry", {}))
    tracer.dropped_spans = other.get("dropped_spans", 0)
    return tracer


def to_span_records(tracer) -> List[Dict]:
    """Spans as flat JSONL-ready records (schema ``repro-span/1``)."""
    records = []
    for span in tracer.spans:
        record = {
            "schema": SPAN_JSONL_SCHEMA,
            "name": span.name,
            "cat": span.cat,
            "ts_ms": span.ts,
            "dur_ms": span.dur,
            "process": span.track[0],
            "thread": span.track[1],
        }
        if span.args:
            record["args"] = span.args
        records.append(record)
    return records


def write_span_jsonl(tracer, path: str) -> str:
    """Write one JSON object per span; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in to_span_records(tracer):
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
    return path
