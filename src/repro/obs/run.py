"""Traced experiment drivers for ``python -m repro trace``.

Each driver runs one of the repo's experiments under an ambient
:class:`~repro.obs.tracer.Tracer` and returns a :class:`TraceRun`: the
tracer (ready for export), the experiment's canonical figures, and a
SHA-256 digest of those figures.  The digest is computed from exactly
the values an *untraced* run produces, which is how the determinism
guarantee — tracing changes no figure bit — is checked end to end.

``limit_study`` additionally replays each workload against an
HC-SD-SA(n) drive (default n=4) in the same traced session, so the
exported trace contains per-arm tracks; the extra runs are excluded
from the figures digest, which covers only the standard MD/HC-SD
limit-study results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.tracer import Tracer, tracing

__all__ = ["TRACEABLE_EXPERIMENTS", "TraceRun", "trace_experiment"]

#: Default request count for traced runs: big enough for meaningful
#: arm/phase distributions, small enough that the exported JSON stays
#: viewer-friendly (a full 6000-request limit study is ~¼M spans).
DEFAULT_TRACE_REQUESTS = 1000


@dataclass
class TraceRun:
    """Everything a traced experiment produced."""

    name: str
    tracer: Tracer
    #: Canonical, JSON-able figures of the experiment (the values an
    #: untraced run reports).
    figures: List = field(default_factory=list)
    summary: List[str] = field(default_factory=list)

    @property
    def figures_sha256(self) -> str:
        return figures_digest(self.figures)


def figures_digest(figures: List) -> str:
    """SHA-256 of the canonical JSON form of ``figures``.

    An empty figure list is a driver bug, not a degenerate input: every
    traceable experiment produces at least one canonical figure, and
    hashing ``[]`` would let a broken driver pass determinism checks
    with a vacuous digest.
    """
    if not figures:
        raise ValueError(
            "figures_digest: empty figure list (the experiment driver "
            "produced no canonical figures)"
        )
    payload = json.dumps(figures, sort_keys=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def _run_summary(run) -> List[float]:
    return [
        run.mean_response_ms,
        run.percentile(90),
        run.power.total_watts,
    ]


def limit_study_figures(results: Dict) -> List:
    """Canonical figure tuples for a :func:`run_limit_study` result."""
    return [
        [name, _run_summary(result.md) + _run_summary(result.hcsd)]
        for name, result in sorted(results.items())
    ]


def _trace_limit_study(requests: int, n_workers: int, actuators: int):
    from repro.experiments.configs import build_hcsd_system
    from repro.experiments.limit_study import run_limit_study
    from repro.experiments.runner import run_trace
    from repro.sim.engine import Environment
    from repro.workloads.commercial import COMMERCIAL_WORKLOADS

    results = run_limit_study(requests=requests, n_workers=n_workers)
    summary = [
        f"{name}: MD mean {result.md.mean_response_ms:.2f} ms, "
        f"HC-SD mean {result.hcsd.mean_response_ms:.2f} ms"
        for name, result in results.items()
    ]
    if actuators > 1:
        # Extra per-arm visibility: the same traces against an
        # HC-SD-SA(n) drive.  Run in-process so the spans land directly
        # in the ambient tracer; excluded from the figures digest.
        for workload in COMMERCIAL_WORKLOADS.values():
            env = Environment()
            sa_run = run_trace(
                env,
                build_hcsd_system(env, workload, actuators=actuators),
                workload.generate(requests),
            )
            summary.append(
                f"{workload.name}: {sa_run.label} mean "
                f"{sa_run.mean_response_ms:.2f} ms"
            )
    return limit_study_figures(results), summary


def _trace_parallel_study(requests: int, n_workers: int, actuators: int):
    from repro.experiments.parallel_study import run_parallel_study

    results = run_parallel_study(requests=requests, n_workers=n_workers)
    figures = [
        [name, n, _run_summary(run)]
        for name, result in sorted(results.items())
        for n, run in sorted(result.by_actuators.items())
    ]
    summary = [
        f"{name}: SA(4) mean {result.by_actuators[4].mean_response_ms:.2f}"
        f" ms vs HC-SD {result.by_actuators[1].mean_response_ms:.2f} ms"
        for name, result in results.items()
        if 4 in result.by_actuators and 1 in result.by_actuators
    ]
    return figures, summary


def _trace_bottleneck(requests: int, n_workers: int, actuators: int):
    from repro.experiments.bottleneck import run_bottleneck_study

    results = run_bottleneck_study(requests=requests, n_workers=n_workers)
    figures = [
        [name, label, run.mean_response_ms]
        for name, result in sorted(results.items())
        for label, run in sorted(result.runs.items())
    ]
    summary = [
        f"{name}: rotation primary bottleneck = "
        f"{result.rotation_is_primary}"
        for name, result in results.items()
    ]
    return figures, summary


def _trace_rpm_study(requests: int, n_workers: int, actuators: int):
    from repro.experiments.rpm_study import run_rpm_study

    results = run_rpm_study(requests=requests, n_workers=n_workers)
    figures = [
        [name, label, _run_summary(run)]
        for name, result in sorted(results.items())
        for label, run in sorted(result.runs.items())
    ]
    summary = [f"{name}: {len(result.runs)} design points"
               for name, result in results.items()]
    return figures, summary


def _trace_rebuild(requests: int, n_workers: int, actuators: int):
    """A RAID-5 degraded-mode and rebuild scenario (no paper figure).

    Exercises the array's failure path end to end: degraded reads that
    fan out over the survivors, then a row-by-row rebuild onto a
    replacement drive — the trace shows reconstruction reads and
    rebuild writes as a dedicated track.
    """
    from repro.core.parallel_disk import ParallelDisk
    from repro.core.taxonomy import DashConfig
    from repro.disk.request import IORequest
    from repro.disk.scheduler import FCFSScheduler
    from repro.disk.specs import BARRACUDA_ES
    from repro.raid.array import DiskArray
    from repro.raid.layout import Raid5Layout
    from repro.sim.engine import Environment

    disks = 4
    unit = 2048
    rows = 32
    env = Environment()

    def member(index: int) -> ParallelDisk:
        return ParallelDisk(
            env,
            BARRACUDA_ES,
            config=DashConfig(arm_assemblies=actuators),
            scheduler=FCFSScheduler(),
            label=f"raid5-{index}",
        )

    drives = [member(index) for index in range(disks)]
    layout = Raid5Layout(disks, unit * rows, stripe_unit=unit)
    array = DiskArray(env, drives, layout, label="RAID5-rebuild")
    array.fail_drive(1)
    degraded_reads = min(max(requests // 10, 8), 128)

    def scenario():
        for index in range(degraded_reads):
            lba = (index * 3 * unit) % layout.capacity_sectors()
            yield array.submit(
                IORequest(
                    lba=lba, size=8, is_read=True, arrival_time=env.now
                )
            )
        yield array.rebuild(member(disks))

    env.process(scenario())
    env.run()
    figures = [
        ["degraded_reads", degraded_reads],
        ["rebuild_rows", rows],
        ["rebuild_progress", array.rebuild_progress],
        ["elapsed_ms", env.now],
    ]
    summary = [
        f"{degraded_reads} degraded reads, {rows}-row rebuild finished "
        f"at {env.now:.1f} ms simulated"
    ]
    return figures, summary


TRACEABLE_EXPERIMENTS = {
    "limit_study": _trace_limit_study,
    "parallel_study": _trace_parallel_study,
    "bottleneck": _trace_bottleneck,
    "rpm_study": _trace_rpm_study,
    "rebuild": _trace_rebuild,
}


def trace_experiment(
    name: str,
    requests: int = DEFAULT_TRACE_REQUESTS,
    n_workers: int = 1,
    actuators: int = 4,
    tracer: Optional[Tracer] = None,
) -> TraceRun:
    """Run experiment ``name`` under a tracer and return the results.

    ``actuators`` sets the arm count of the supplementary HC-SD-SA(n)
    runs (``limit_study``) and of the RAID members (``rebuild``).
    """
    try:
        driver = TRACEABLE_EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from "
            f"{sorted(TRACEABLE_EXPERIMENTS)}"
        ) from None
    if actuators < 1:
        raise ValueError(f"actuators must be >= 1, got {actuators}")
    with tracing(tracer) as active:
        figures, summary = driver(requests, n_workers, actuators)
    return TraceRun(
        name=name, tracer=active, figures=figures, summary=summary
    )
