"""``repro.obs`` — request-lifecycle tracing and telemetry.

The observability subsystem makes the paper's analytical decomposition
of response time (queue vs. seek vs. rotational latency vs. transfer,
§7.1–§7.2) directly visible from a single run instead of being
inferred from aggregate histograms after the fact.

Five pieces:

* :class:`~repro.obs.tracer.Tracer` — a low-overhead span recorder
  with per-request, per-drive and per-arm attribution.  The default
  everywhere is the zero-cost :class:`~repro.obs.tracer.NullTracer`,
  so untraced runs execute the exact same arithmetic (figures are
  bit-identical with tracing on or off).
* :class:`~repro.obs.registry.TelemetryRegistry` — counters, gauges
  and distribution collectors built on
  :class:`~repro.sim.stats.OnlineStats` /
  :class:`~repro.sim.stats.BucketHistogram`, mergeable across worker
  processes.
* :class:`~repro.obs.metrics.MetricsRegistry` — *live* operational
  metrics (Prometheus-style counters / gauges / fixed-bucket
  histograms with labeled families), a zero-cost
  :data:`~repro.obs.metrics.NULL_METRICS` default, text-exposition
  and JSONL exporters, and atomic per-worker snapshot files merged
  across serve processes (``python -m repro metrics [--watch]``).
* Exporters — Chrome trace-event / Perfetto JSON
  (:func:`~repro.obs.export.write_chrome_trace`) and a JSONL span log
  (:func:`~repro.obs.export.write_span_jsonl`), so a limit-study run
  opens in ``ui.perfetto.dev`` with drives as processes and arms as
  tracks.
* Analytics — :func:`~repro.obs.analysis.analyze` turns a recorded
  span stream into utilization, queue-depth timelines, per-request
  phase breakdowns and bottleneck attribution, with an exact (zero
  tolerance) reconciliation against the metrics pipeline;
  :mod:`repro.obs.report` renders it as text or self-contained HTML
  (``python -m repro report``).

See ``docs/observability.md`` for the span schema and a walkthrough.
"""

from repro.obs.analysis import (
    TraceAnalysis,
    analyze,
    reconcile_with_collector,
)
from repro.obs.export import (
    read_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    append_snapshot_jsonl,
    current_metrics,
    merge_worker_snapshots,
    metrics_for,
    metrics_session,
    parse_prometheus,
    render_prometheus,
    set_current_metrics,
    write_prometheus,
    write_worker_snapshot,
)
from repro.obs.report import render_html, render_text, write_html_report
from repro.obs.registry import NULL_REGISTRY, TelemetryRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    PHASES,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_current_tracer,
    tracer_for,
    tracing,
)

__all__ = [
    "NULL_METRICS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
    "TelemetryRegistry",
    "TraceAnalysis",
    "analyze",
    "append_snapshot_jsonl",
    "current_metrics",
    "current_tracer",
    "merge_worker_snapshots",
    "metrics_for",
    "metrics_session",
    "parse_prometheus",
    "read_chrome_trace",
    "reconcile_with_collector",
    "render_html",
    "render_prometheus",
    "render_text",
    "set_current_metrics",
    "set_current_tracer",
    "to_chrome_trace",
    "tracer_for",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_html_report",
    "write_prometheus",
    "write_span_jsonl",
    "write_worker_snapshot",
]
