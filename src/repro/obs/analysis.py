"""Post-hoc trace analytics: utilization, queueing, phase attribution.

Where :mod:`repro.obs.tracer` *records* what the simulator did, this
module turns a recorded span stream into the quantities storage papers
actually argue with:

* **Per-track utilization** — busy time, busy fraction and idle-gap
  distribution for every ``(process, thread)`` track (each drive's
  arms, caches and rebuild streams), over the trace's global window.
* **Queue-depth and in-flight timelines** — reconstructed by sweeping
  the boundaries of ``queue`` spans (waiting requests) and ``array``
  envelope spans (submitted-but-incomplete logical requests).
* **Per-request phase breakdowns** — queue / overhead / seek /
  rotation / transfer / cache milliseconds for every physical request,
  grouped from span ``args["req"]`` attribution.
* **Bottleneck attribution** — phases ranked by aggregate time, plus
  the paper's ½S/½R cross-check computed directly from the trace.

Exactness.  The drives record spans *prospectively* with the very
floats they pass to the engine, and the engine fires a timeout at
``now + delay`` with no intermediate arithmetic.  A request's response
time can therefore be reconstructed bit-exactly from its spans as
``(service_start + sum(phase durations, in recorded order)) -
arrival``: ``service_start`` is the exact dispatch instant (the first
service span's ``ts``), the left-to-right sum reproduces the exact
timeout the drive issued, and ``arrival`` is the queue span's ``ts``.
:func:`reconcile_with_collector` asserts this invariant against the
response times a live :class:`~repro.metrics.collector.RequestCollector`
measured — the cross-check that the analysis layer and the metrics
layer agree on every single request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.stats import BucketHistogram, OnlineStats

__all__ = [
    "BottleneckAttribution",
    "DepthTimeline",
    "IDLE_GAP_EDGES_MS",
    "ReconciliationReport",
    "RequestBreakdown",
    "ScalingCrossCheck",
    "TraceAnalysis",
    "TrackUtilization",
    "WORK_CATEGORIES",
    "analyze",
    "bottleneck_ranking",
    "crosscheck_scaling",
    "depth_timeline",
    "phase_totals",
    "reconcile_internal",
    "reconcile_with_collector",
    "request_breakdowns",
    "track_utilization",
]

#: Span categories that occupy hardware (count toward busy time).
#: ``queue`` is waiting, ``array`` is a logical envelope around member
#: work, ``instant`` is a point annotation — none of them is work.
WORK_CATEGORIES = (
    "overhead",
    "seek",
    "rotation",
    "transfer",
    "cache",
    "rebuild",
    "retry",
)

#: Bucket edges (ms) for idle-gap histograms: sub-revolution gaps up
#: to multi-second lulls.
IDLE_GAP_EDGES_MS = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
                     100.0, 500.0, 1000.0)


def _merge_intervals(
    intervals: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Union of half-open intervals, sorted and coalesced."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


@dataclass
class TrackUtilization:
    """Busy-time accounting for one ``(process, thread)`` track."""

    process: str
    thread: str
    spans: int
    busy_ms: float
    #: Global trace window the utilization is computed over.
    window_start: float
    window_end: float
    #: Idle gaps (ms) between coalesced busy intervals, including the
    #: lead-in from the window start and tail-out to the window end.
    idle_gaps: List[float] = field(default_factory=list)

    @property
    def window_ms(self) -> float:
        return max(0.0, self.window_end - self.window_start)

    @property
    def utilization(self) -> float:
        """Busy fraction of the window (0 when the window is empty)."""
        return self.busy_ms / self.window_ms if self.window_ms > 0 else 0.0

    @property
    def idle_ms(self) -> float:
        return max(0.0, self.window_ms - self.busy_ms)

    def idle_gap_histogram(
        self, edges: Sequence[float] = IDLE_GAP_EDGES_MS
    ) -> BucketHistogram:
        histogram = BucketHistogram(list(edges))
        for gap in self.idle_gaps:
            histogram.add(gap)
        return histogram


def _trace_window(spans) -> Tuple[float, float]:
    """The ``[first start, last end]`` window across every span."""
    start = None
    end = None
    for span in spans:
        if start is None or span.ts < start:
            start = span.ts
        finish = span.ts + (span.dur or 0.0)
        if end is None or finish > end:
            end = finish
    if start is None:
        return (0.0, 0.0)
    return (start, end)


def track_utilization(
    spans, window: Optional[Tuple[float, float]] = None
) -> List[TrackUtilization]:
    """Busy time, utilization and idle gaps per work track.

    Only :data:`WORK_CATEGORIES` spans count as busy; overlapping
    spans on one track (e.g. a preposition move during another arm's
    rotation window) are coalesced so no instant is double-billed.
    ``window`` defaults to the global trace window, which makes
    utilizations directly comparable across tracks — an arm that never
    worked shows up as 0, not as absent.
    """
    if window is None:
        window = _trace_window(spans)
    window_start, window_end = window
    by_track: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, str], int] = {}
    for span in spans:
        if span.dur is None or span.cat not in WORK_CATEGORIES:
            continue
        track = span.track
        by_track.setdefault(track, []).append(
            (span.ts, span.ts + span.dur)
        )
        counts[track] = counts.get(track, 0) + 1
    results = []
    for track, intervals in by_track.items():
        merged = _merge_intervals(intervals)
        busy = sum(end - start for start, end in merged)
        gaps: List[float] = []
        cursor = window_start
        for start, end in merged:
            if start > cursor:
                gaps.append(start - cursor)
            cursor = max(cursor, end)
        if window_end > cursor:
            gaps.append(window_end - cursor)
        results.append(
            TrackUtilization(
                process=track[0],
                thread=track[1],
                spans=counts[track],
                busy_ms=busy,
                window_start=window_start,
                window_end=window_end,
                idle_gaps=gaps,
            )
        )
    results.sort(key=lambda item: (item.process, item.thread))
    return results


@dataclass
class DepthTimeline:
    """A step function of concurrent intervals (queue depth, in-flight).

    ``steps`` is ``[(time, depth), ...]``: the depth that holds *from*
    each time until the next step.
    """

    label: str
    steps: List[Tuple[float, int]] = field(default_factory=list)
    intervals: int = 0

    @property
    def max_depth(self) -> int:
        return max((depth for _, depth in self.steps), default=0)

    @property
    def mean_depth(self) -> float:
        """Time-weighted mean depth over the timeline's own extent."""
        if len(self.steps) < 2:
            return 0.0
        total = 0.0
        span = self.steps[-1][0] - self.steps[0][0]
        if span <= 0:
            return 0.0
        for (time, depth), (next_time, _) in zip(
            self.steps, self.steps[1:]
        ):
            total += depth * (next_time - time)
        return total / span


def depth_timeline(
    intervals: Iterable[Tuple[float, float]], label: str = ""
) -> DepthTimeline:
    """Sweep ``[start, end)`` intervals into a concurrency step function."""
    deltas: Dict[float, int] = {}
    count = 0
    for start, end in intervals:
        count += 1
        deltas[start] = deltas.get(start, 0) + 1
        deltas[end] = deltas.get(end, 0) - 1
    steps: List[Tuple[float, int]] = []
    depth = 0
    for time in sorted(deltas):
        depth += deltas[time]
        steps.append((time, depth))
    return DepthTimeline(label=label, steps=steps, intervals=count)


def queue_depth_timelines(spans) -> Dict[str, DepthTimeline]:
    """Per-process queue-depth step functions from ``queue`` spans."""
    by_process: Dict[str, List[Tuple[float, float]]] = {}
    for span in spans:
        if span.cat != "queue" or span.dur is None:
            continue
        by_process.setdefault(span.track[0], []).append(
            (span.ts, span.ts + span.dur)
        )
    return {
        process: depth_timeline(intervals, label=process)
        for process, intervals in sorted(by_process.items())
    }


def inflight_timelines(spans) -> Dict[str, DepthTimeline]:
    """Per-array in-flight logical requests from ``array`` envelopes."""
    by_process: Dict[str, List[Tuple[float, float]]] = {}
    for span in spans:
        if span.cat != "array" or span.dur is None:
            continue
        by_process.setdefault(span.track[0], []).append(
            (span.ts, span.ts + span.dur)
        )
    return {
        process: depth_timeline(intervals, label=process)
        for process, intervals in sorted(by_process.items())
    }


@dataclass
class RequestBreakdown:
    """One physical request's lifecycle, reassembled from its spans."""

    process: str
    req: int
    arrival: float
    service_start: float
    queue_ms: float
    #: Per-category service milliseconds (overhead/seek/rotation/
    #: transfer/cache), in recorded order.
    phases: Dict[str, float]

    @property
    def service_ms(self) -> float:
        """Exact service total: phase durations summed in span order."""
        total = 0.0
        for duration in self._ordered_durations:
            total += duration
        return total

    @property
    def response_ms(self) -> float:
        """Bit-exact reconstruction of the request's response time.

        The drive dispatched one timeout of exactly
        ``sum(phase durations)`` at exactly ``service_start``, so the
        completion instant is ``service_start + service_ms`` and the
        response is that minus the arrival — the same floats the
        engine and the collector computed.
        """
        return (self.service_start + self.service_ms) - self.arrival

    # populated by request_breakdowns(); kept off the dataclass repr
    _ordered_durations: List[float] = field(
        default_factory=list, repr=False
    )


def request_breakdowns(spans) -> List[RequestBreakdown]:
    """Group drive-level spans into per-request phase breakdowns.

    Only requests observed end to end — a ``queue`` span plus at least
    one service span — are returned; rebuild rows and array envelopes
    are attributed elsewhere.  Results are ordered by service start.
    """
    queue: Dict[Tuple[str, int], Tuple[float, float]] = {}
    service: Dict[Tuple[str, int], List[Tuple[float, str, float]]] = {}
    for span in spans:
        if span.dur is None or not span.args:
            continue
        req = span.args.get("req")
        if req is None:
            continue
        key = (span.track[0], req)
        if span.cat == "queue":
            queue[key] = (span.ts, span.dur)
        elif span.cat in WORK_CATEGORIES and span.cat != "rebuild":
            # Recorded order == phase order (overhead, seek, rotation,
            # transfer); appending preserves it for the exact sum.
            service.setdefault(key, []).append(
                (span.ts, span.cat, span.dur)
            )
    breakdowns = []
    for key, phases in service.items():
        queued = queue.get(key)
        if queued is None:
            continue
        arrival, queue_ms = queued
        per_category: Dict[str, float] = {}
        for _, category, duration in phases:
            per_category[category] = (
                per_category.get(category, 0.0) + duration
            )
        breakdown = RequestBreakdown(
            process=key[0],
            req=key[1],
            arrival=arrival,
            service_start=phases[0][0],
            queue_ms=queue_ms,
            phases=per_category,
        )
        breakdown._ordered_durations = [dur for _, _, dur in phases]
        breakdowns.append(breakdown)
    breakdowns.sort(key=lambda item: (item.service_start, item.req))
    return breakdowns


def phase_totals(spans) -> Dict[str, float]:
    """Aggregate milliseconds per span category (instants excluded)."""
    totals: Dict[str, float] = {}
    for span in spans:
        if span.dur is None:
            continue
        totals[span.cat] = totals.get(span.cat, 0.0) + span.dur
    return totals


def bottleneck_ranking(
    totals: Dict[str, float],
    exclude: Sequence[str] = ("array",),
) -> List[Tuple[str, float]]:
    """Categories ranked by aggregate time, largest first."""
    return sorted(
        (
            (category, total)
            for category, total in totals.items()
            if category not in exclude
        ),
        key=lambda item: (-item[1], item[0]),
    )


@dataclass
class BottleneckAttribution:
    """Phase ranking plus the derived primary-bottleneck verdict."""

    #: ``(category, total_ms)``, largest first, ``array`` excluded.
    ranking: List[Tuple[str, float]]

    @property
    def total_ms(self) -> float:
        return sum(total for _, total in self.ranking)

    @property
    def top_phase(self) -> Optional[str]:
        return self.ranking[0][0] if self.ranking else None

    @property
    def top_service_phase(self) -> Optional[str]:
        """The dominant phase excluding queueing delay.

        Queueing amplifies whatever the underlying bottleneck is, so
        the attribution the paper argues about is over *service*
        phases; for the HC-SD baseline this names rotational latency.
        """
        for category, _ in self.ranking:
            if category not in ("queue", "overhead"):
                return category
        return None

    def share(self, category: str) -> float:
        total = self.total_ms
        if total <= 0:
            return 0.0
        for name, value in self.ranking:
            if name == category:
                return value / total
        return 0.0


def attribute_bottleneck(spans) -> BottleneckAttribution:
    """Rank phases by aggregate time across ``spans``."""
    return BottleneckAttribution(
        ranking=bottleneck_ranking(phase_totals(spans))
    )


def _scope_of(process: str) -> str:
    """The run-scope prefix of a span's process name.

    Scoped processes are ``<scope path>/<component label>``.  Run
    labels may themselves contain slashes — the paper's ``(1/2)S``
    scaling points, the RPM study's ``HC-SD/7200`` — while component
    (drive/array) labels never do, so the scope is everything before
    the *last* separator.
    """
    return process.rsplit("/", 1)[0] if "/" in process else process


def scope_response_stats(spans) -> Dict[str, OnlineStats]:
    """Mean/min/max logical response time per run scope.

    Array envelope spans carry the exact response time of each logical
    request as their duration; grouping them by the run scope the
    experiment drivers install reproduces each run's response-time
    summary without touching a collector.
    """
    stats: Dict[str, OnlineStats] = {}
    for span in spans:
        if span.cat != "array" or span.dur is None:
            continue
        scope = _scope_of(span.track[0])
        collector = stats.get(scope)
        if collector is None:
            collector = stats[scope] = OnlineStats()
        collector.add(span.dur)
    return stats


@dataclass
class ScalingCrossCheck:
    """The paper's ½S vs ½R comparison, measured from the trace."""

    half_seek_mean_ms: float
    half_rotation_mean_ms: float

    @property
    def rotation_is_primary(self) -> bool:
        """Halving rotation helps more than halving seeks (§7.1)."""
        return self.half_rotation_mean_ms < self.half_seek_mean_ms


def crosscheck_scaling(spans) -> Optional[ScalingCrossCheck]:
    """Check ½S/½R directly from a traced bottleneck study.

    Returns ``None`` when the trace does not contain both scaling
    scopes (i.e. it is not a bottleneck-experiment trace).
    """
    stats = scope_response_stats(spans)
    half_seek = stats.get("(1/2)S")
    half_rotation = stats.get("(1/2)R")
    if half_seek is None or half_rotation is None:
        return None
    return ScalingCrossCheck(
        half_seek_mean_ms=half_seek.mean,
        half_rotation_mean_ms=half_rotation.mean,
    )


@dataclass
class ReconciliationReport:
    """Outcome of matching reconstructed responses against a reference."""

    label: str
    requests: int
    reference: int
    max_abs_error_ms: float
    problems: List[str] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        return not self.problems and self.max_abs_error_ms == 0.0

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = (
            "exact"
            if self.exact
            else f"max |error| {self.max_abs_error_ms:.3g} ms"
        )
        state = "OK" if self.ok else "FAILED"
        return (
            f"{self.label}: {self.requests} requests vs "
            f"{self.reference} reference samples — {state} ({verdict})"
        )


def _match_sorted(
    reconstructed: List[float],
    reference: List[float],
    label: str,
    tolerance_ms: float,
) -> ReconciliationReport:
    report = ReconciliationReport(
        label=label,
        requests=len(reconstructed),
        reference=len(reference),
        max_abs_error_ms=0.0,
    )
    if len(reconstructed) != len(reference):
        report.problems.append(
            f"{label}: {len(reconstructed)} reconstructed requests vs "
            f"{len(reference)} reference samples"
        )
        return report
    worst = 0.0
    for ours, theirs in zip(sorted(reconstructed), sorted(reference)):
        worst = max(worst, abs(ours - theirs))
    report.max_abs_error_ms = worst
    if worst > tolerance_ms:
        report.problems.append(
            f"{label}: responses diverge by up to {worst:.6g} ms "
            f"(tolerance {tolerance_ms:g} ms)"
        )
    return report


def reconcile_with_collector(
    breakdowns: Sequence[RequestBreakdown],
    response_times: Sequence[float],
    label: str = "collector",
    tolerance_ms: float = 0.0,
) -> ReconciliationReport:
    """Match per-request span sums against collector response times.

    The default tolerance is **zero**: for a live traced run the
    reconstruction is bit-exact (see the module docstring), so any
    nonzero difference means the instrumentation and the metrics
    pipeline disagree about what happened.
    """
    return _match_sorted(
        [breakdown.response_ms for breakdown in breakdowns],
        list(response_times),
        label,
        tolerance_ms,
    )


def reconcile_internal(
    spans, tolerance_ms: float = 0.0
) -> List[ReconciliationReport]:
    """Cross-check drive-level breakdowns against array envelopes.

    For every run scope whose logical and physical request counts
    match 1:1 (every layout except multi-phase RAID fan-out), the
    multiset of reconstructed drive-level responses must equal the
    multiset of array envelope durations.  Scopes with fan-out are
    skipped — slices there legitimately outnumber logical requests.
    """
    envelopes: Dict[str, List[float]] = {}
    for span in spans:
        if span.cat != "array" or span.dur is None:
            continue
        envelopes.setdefault(_scope_of(span.track[0]), []).append(span.dur)
    reconstructed: Dict[str, List[float]] = {}
    for breakdown in request_breakdowns(spans):
        reconstructed.setdefault(_scope_of(breakdown.process), []).append(
            breakdown.response_ms
        )
    reports = []
    for scope in sorted(envelopes):
        ours = reconstructed.get(scope, [])
        theirs = envelopes[scope]
        if len(ours) != len(theirs):
            continue  # fan-out scope: slices != logical requests
        reports.append(
            _match_sorted(ours, theirs, scope, tolerance_ms)
        )
    return reports


class TraceAnalysis:
    """Lazy, cached analytics over one span stream.

    Build from a tracer (:meth:`from_tracer`) or any span sequence; an
    optional telemetry snapshot rides along for reporting.  Use
    :meth:`filter` to narrow the analysis to one run scope (process
    prefix) — e.g. ``analysis.filter("HC-SD")`` for the paper's
    baseline attribution.
    """

    def __init__(
        self,
        spans,
        telemetry: Optional[Dict] = None,
        dropped_spans: int = 0,
    ):
        self.spans = list(spans)
        self.telemetry = telemetry or {}
        self.dropped_spans = dropped_spans
        self._cache: Dict[str, object] = {}

    @classmethod
    def from_tracer(cls, tracer) -> "TraceAnalysis":
        return cls(
            tracer.spans,
            telemetry=tracer.telemetry.snapshot(),
            dropped_spans=tracer.dropped_spans,
        )

    def filter(self, process_prefix: str) -> "TraceAnalysis":
        """A new analysis restricted to processes under ``prefix``."""
        return TraceAnalysis(
            [
                span
                for span in self.spans
                if span.track[0].startswith(process_prefix)
            ],
            telemetry=self.telemetry,
            dropped_spans=self.dropped_spans,
        )

    def _cached(self, key: str, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    @property
    def window(self) -> Tuple[float, float]:
        return self._cached("window", lambda: _trace_window(self.spans))

    @property
    def scopes(self) -> List[str]:
        return self._cached(
            "scopes",
            lambda: sorted(
                {_scope_of(span.track[0]) for span in self.spans}
            ),
        )

    @property
    def utilization(self) -> List[TrackUtilization]:
        return self._cached(
            "utilization", lambda: track_utilization(self.spans)
        )

    @property
    def queue_depth(self) -> Dict[str, DepthTimeline]:
        return self._cached(
            "queue_depth", lambda: queue_depth_timelines(self.spans)
        )

    @property
    def inflight(self) -> Dict[str, DepthTimeline]:
        return self._cached(
            "inflight", lambda: inflight_timelines(self.spans)
        )

    @property
    def breakdowns(self) -> List[RequestBreakdown]:
        return self._cached(
            "breakdowns", lambda: request_breakdowns(self.spans)
        )

    @property
    def attribution(self) -> BottleneckAttribution:
        return self._cached(
            "attribution", lambda: attribute_bottleneck(self.spans)
        )

    @property
    def scaling_crosscheck(self) -> Optional[ScalingCrossCheck]:
        return self._cached(
            "scaling", lambda: crosscheck_scaling(self.spans)
        )

    @property
    def response_stats(self) -> Dict[str, OnlineStats]:
        return self._cached(
            "response_stats", lambda: scope_response_stats(self.spans)
        )

    def reconcile(self, tolerance_ms: float = 0.0):
        return reconcile_internal(self.spans, tolerance_ms=tolerance_ms)


def analyze(tracer) -> TraceAnalysis:
    """Analytics over everything ``tracer`` recorded."""
    return TraceAnalysis.from_tracer(tracer)
