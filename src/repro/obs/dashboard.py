"""Terminal dashboard for live metrics (``repro metrics --watch``).

Renders a merged metrics snapshot as aligned text tables — workers
first (heartbeat age), then gauges, counters and histogram summaries
— and polls the per-worker snapshot files under a queue directory at
a fixed interval.  Pure presentation: all collection and merge
semantics live in :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.metrics.report import format_table
from repro.obs.metrics import MetricsRegistry

__all__ = ["format_dashboard", "watch_metrics"]

#: ANSI "clear screen + home" used between --watch refreshes.
_CLEAR = "\x1b[2J\x1b[H"


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def format_dashboard(
    source: Union[MetricsRegistry, Dict],
    workers: Optional[List[Dict]] = None,
    title: str = "repro live metrics",
    now: Optional[float] = None,
) -> str:
    """One text frame: worker heartbeats, gauges, counters and
    histogram summaries from a registry or snapshot dict."""
    snapshot = source if isinstance(source, dict) else source.snapshot()
    families = snapshot.get("families", {})
    reference = time.time() if now is None else now
    stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(reference))
    sections: List[str] = [f"{title} — {stamp}"]

    if workers:
        rows = [
            [
                meta.get("worker", "?"),
                meta.get("pid", "?"),
                max(0.0, reference - float(meta.get("written_at", 0.0))),
            ]
            for meta in workers
        ]
        sections.append(
            format_table(
                ("worker", "pid", "last seen (s)"),
                rows,
                title="Workers",
                float_format="{:.1f}",
            )
        )

    kinds: Dict[str, List[Tuple[str, Dict]]] = {
        "gauge": [], "counter": [], "histogram": []
    }
    for name in sorted(families):
        entry = families[name]
        kinds.get(entry.get("kind"), []).append((name, entry))

    for kind, heading in (("gauge", "Gauges"), ("counter", "Counters")):
        rows = [
            [name, _label_text(item.get("labels", {})), item["value"]]
            for name, entry in kinds[kind]
            for item in entry.get("series", ())
        ]
        if rows:
            sections.append(
                format_table(
                    ("metric", "labels", "value"), rows, title=heading
                )
            )

    histogram_rows = []
    for name, entry in kinds["histogram"]:
        for item in entry.get("series", ()):
            count = item.get("count", 0)
            total = item.get("sum", 0.0)
            histogram_rows.append(
                [
                    name,
                    _label_text(item.get("labels", {})),
                    count,
                    total / count if count else 0.0,
                    total,
                ]
            )
    if histogram_rows:
        sections.append(
            format_table(
                ("histogram", "labels", "count", "mean", "sum"),
                histogram_rows,
                title="Histograms",
            )
        )

    if len(sections) == 1:
        sections.append("(no metrics recorded yet)")
    return "\n\n".join(sections) + "\n"


def watch_metrics(
    queue_dir: str,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    stream=None,
    clear: bool = True,
) -> int:
    """Poll the queue's merged metrics and redraw the dashboard every
    ``interval_s`` seconds until Ctrl-C (or ``iterations`` frames, for
    tests and smoke runs).  Returns the number of frames drawn."""
    from repro.serve.service import merged_queue_metrics

    out = stream if stream is not None else sys.stdout
    frames = 0
    try:
        while iterations is None or frames < iterations:
            registry, workers = merged_queue_metrics(queue_dir)
            frame = format_dashboard(
                registry, workers, title=f"repro live metrics [{queue_dir}]"
            )
            if clear:
                out.write(_CLEAR)
            out.write(frame)
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
