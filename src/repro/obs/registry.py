"""Counters, gauges and distribution collectors for telemetry.

A :class:`TelemetryRegistry` is a flat, name-keyed store of metrics.
Distribution metrics reuse the single-pass collectors from
:mod:`repro.sim.stats`, so every metric kind supports an exact
pairwise :meth:`~TelemetryRegistry.merge_snapshot` — the property the
experiment executor relies on to combine per-worker telemetry without
re-running anything.

Snapshots are plain JSON-compatible dicts (and therefore picklable),
which is what crosses the process boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.stats import BucketHistogram, OnlineStats

__all__ = ["Counter", "Gauge", "NULL_REGISTRY", "TelemetryRegistry"]


class Counter:
    """A monotonically increasing integer/float count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A last-write-wins scalar (e.g. rebuild progress)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


def _stats_to_dict(stats: OnlineStats) -> Dict:
    return {
        "count": stats.count,
        "mean": stats._mean,
        "m2": stats._m2,
        "min": stats.minimum,
        "max": stats.maximum,
        "total": stats.total,
    }


def _stats_from_dict(payload: Dict) -> OnlineStats:
    stats = OnlineStats()
    stats.count = payload["count"]
    stats._mean = payload["mean"]
    stats._m2 = payload["m2"]
    stats.minimum = payload["min"]
    stats.maximum = payload["max"]
    stats.total = payload["total"]
    return stats


class TelemetryRegistry:
    """Name-keyed counters, gauges, online stats and histograms.

    Accessors are get-or-create, so instrumentation sites never need
    registration boilerplate::

        registry.counter("cache.read_hits").inc()
        registry.stats("run.elapsed_ms").add(elapsed)
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._stats: Dict[str, OnlineStats] = {}
        self._histograms: Dict[str, BucketHistogram] = {}

    # -- get-or-create accessors ------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def stats(self, name: str) -> OnlineStats:
        metric = self._stats.get(name)
        if metric is None:
            metric = self._stats[name] = OnlineStats()
        return metric

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> BucketHistogram:
        metric = self._histograms.get(name)
        if metric is None:
            if edges is None:
                raise ValueError(
                    f"histogram {name!r} does not exist yet; supply edges"
                )
            metric = self._histograms[name] = BucketHistogram(list(edges))
        return metric

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._stats)
            + len(self._histograms)
        )

    # -- snapshots and merging --------------------------------------------
    def snapshot(self) -> Dict:
        """A JSON-compatible (and picklable) copy of every metric."""
        return {
            "counters": {
                name: metric.value for name, metric in self._counters.items()
            },
            "gauges": {
                name: metric.value for name, metric in self._gauges.items()
            },
            "stats": {
                name: _stats_to_dict(stats)
                for name, stats in self._stats.items()
            },
            "histograms": {
                name: {"edges": list(hist.edges), "counts": list(hist.counts)}
                for name, hist in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add; stats merge exactly (parallel
        Welford); gauges are last-write-wins, matching their scalar
        semantics.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, payload in snapshot.get("stats", {}).items():
            merged = self.stats(name).merge(_stats_from_dict(payload))
            self._stats[name] = merged
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, payload["edges"])
            if hist.edges != list(payload["edges"]):
                raise ValueError(
                    f"histogram {name!r}: incompatible edges in snapshot"
                )
            hist.counts = [
                a + b for a, b in zip(hist.counts, payload["counts"])
            ]
            hist.total += sum(payload["counts"])

    def summary_lines(self) -> List[str]:
        """Human-readable one-liners, sorted by metric name."""
        lines = []
        for name in sorted(self._counters):
            lines.append(f"counter {name} = {self._counters[name].value}")
        for name in sorted(self._gauges):
            lines.append(f"gauge {name} = {self._gauges[name].value:g}")
        for name in sorted(self._stats):
            stats = self._stats[name]
            lines.append(
                f"stats {name}: n={stats.count} mean={stats.mean:.3f} "
                f"min={stats.minimum:.3f} max={stats.maximum:.3f}"
            )
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            lines.append(f"histogram {name}: n={hist.total}")
        return lines


class _NullMetric:
    """Accepts any update and stores nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, value: float) -> None:
        pass

    def extend(self, values) -> None:
        pass


_NULL_METRIC = _NullMetric()


class _NullRegistry:
    """Registry stand-in for :class:`~repro.obs.tracer.NullTracer`."""

    __slots__ = ()

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def stats(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name, edges=None) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict:
        return {}

    def merge_snapshot(self, snapshot: Dict) -> None:
        pass

    def summary_lines(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = _NullRegistry()
