"""repro — a reproduction of *Intra-Disk Parallelism: An Idea Whose
Time Has Come* (Sankar, Gurumurthi, Stan; ISCA 2008).

The package is a complete storage-system simulator in Python:

* :mod:`repro.sim` — discrete-event kernel (SimPy-style).
* :mod:`repro.disk` — conventional disk substrate: zoned geometry,
  seek/rotation mechanics, on-board cache, queue schedulers, published
  drive specs.
* :mod:`repro.core` — the paper's contribution: the DASH taxonomy and
  multi-actuator (intra-disk parallel) drive models.
* :mod:`repro.power` — electromechanical power models and per-mode
  energy accounting.
* :mod:`repro.raid` — array layouts (JBOD, concatenation, RAID-0/5)
  and the array controller.
* :mod:`repro.workloads` — traces, the DiskSim-style synthetic
  generator, and models of the paper's four commercial workloads.
* :mod:`repro.metrics` — the paper's CDF/PDF buckets and reporting.
* :mod:`repro.cost` — the Table-9a cost data and analysis.
* :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    from repro.sim import Environment
    from repro.workloads import WEBSEARCH
    from repro.experiments import build_hcsd_system, run_trace

    trace = WEBSEARCH.generate(5000)
    env = Environment()
    system = build_hcsd_system(env, WEBSEARCH, actuators=4)
    result = run_trace(env, system, trace)
    print(result.mean_response_ms, result.power.total_watts)
"""

from repro.disk.request import IORequest
from repro.core.taxonomy import DashConfig
from repro.core.parallel_disk import ParallelDisk
from repro.disk.drive import ConventionalDrive
from repro.sim.engine import Environment

__version__ = "1.0.0"

__all__ = [
    "ConventionalDrive",
    "DashConfig",
    "Environment",
    "IORequest",
    "ParallelDisk",
    "__version__",
]
