"""Closed-loop workload driver: N clients with think time.

Trace replay (the open-loop driver in :mod:`repro.experiments.runner`)
issues requests at fixed timestamps regardless of completions.  Many
real systems instead behave *closed-loop*: a fixed population of
clients each keeps one request outstanding, thinking for a while after
each completion before issuing the next.  Closed loops self-throttle —
response times degrade gracefully instead of diverging — which makes
them the right tool for interactive-system what-ifs on top of this
package's drives and arrays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.disk.request import IORequest
from repro.metrics.collector import RequestCollector
from repro.sim.engine import Environment

__all__ = ["ClosedLoopClients", "ClosedLoopResult"]


@dataclass
class ClosedLoopResult:
    """Aggregate measurements of a closed-loop run."""

    clients: int
    completed: int
    elapsed_ms: float
    collector: RequestCollector
    per_client_completed: List[int] = field(default_factory=list)

    @property
    def throughput_iops(self) -> float:
        if self.elapsed_ms <= 0:
            return 0.0
        return 1000.0 * self.completed / self.elapsed_ms

    @property
    def mean_response_ms(self) -> float:
        return self.collector.mean_response_ms


class ClosedLoopClients:
    """A population of synchronous clients over one storage system.

    Parameters
    ----------
    env, storage:
        Simulation environment and any object with ``submit`` returning
        a completion event (a drive or a :class:`~repro.raid.array.DiskArray`).
    clients:
        Number of concurrent clients (each keeps one request in
        flight).
    think_time_ms:
        Mean exponential think time between a completion and the
        client's next request (0 = closed loop at full tilt).
    capacity_sectors:
        Address space the clients cover.
    read_fraction / request_size_sectors:
        Request mix.
    """

    def __init__(
        self,
        env: Environment,
        storage,
        clients: int,
        capacity_sectors: int,
        think_time_ms: float = 10.0,
        read_fraction: float = 0.6,
        request_size_sectors: int = 8,
        seed: Optional[int] = 1234,
    ):
        if clients <= 0:
            raise ValueError(f"clients must be positive, got {clients}")
        if think_time_ms < 0:
            raise ValueError(
                f"think_time_ms must be non-negative, got {think_time_ms}"
            )
        if capacity_sectors <= request_size_sectors:
            raise ValueError("capacity must exceed the request size")
        self.env = env
        self.storage = storage
        self.clients = clients
        self.capacity_sectors = capacity_sectors
        self.think_time_ms = think_time_ms
        self.read_fraction = read_fraction
        self.request_size_sectors = request_size_sectors
        self._rng = random.Random(seed)
        self.collector = RequestCollector()
        self.per_client_completed = [0] * clients
        self._stop = False

    def run(self, requests_per_client: int) -> ClosedLoopResult:
        """Run until every client has completed its quota."""
        if requests_per_client <= 0:
            raise ValueError(
                "requests_per_client must be positive, got "
                f"{requests_per_client}"
            )
        for client_id in range(self.clients):
            self.env.process(
                self._client(client_id, requests_per_client)
            )
        self.env.run()
        return ClosedLoopResult(
            clients=self.clients,
            completed=self.collector.completed,
            elapsed_ms=self.env.now,
            collector=self.collector,
            per_client_completed=list(self.per_client_completed),
        )

    def _client(self, client_id: int, quota: int):
        limit = self.capacity_sectors - self.request_size_sectors - 1
        for _ in range(quota):
            if self.think_time_ms > 0:
                yield self.env.timeout(
                    self._rng.expovariate(1.0 / self.think_time_ms)
                )
            request = IORequest(
                lba=self._rng.randint(0, limit),
                size=self.request_size_sectors,
                is_read=self._rng.random() < self.read_fraction,
                arrival_time=self.env.now,
            )
            completion = self.storage.submit(request)
            yield completion
            self.collector.record(request)
            self.per_client_completed[client_id] += 1
