"""Bursty (on/off Markov-modulated) arrival workloads.

Server I/O is rarely smooth: arrivals come in ON periods of dense
traffic separated by OFF lulls.  Burstiness is what dynamic power
management (DRPM) exploits — and what stresses queue behaviour beyond
what a Poisson stream of the same mean rate does.

:class:`BurstyWorkload` generates an on/off-modulated stream: during
an ON period requests arrive with exponential inter-arrival
``burst_interarrival_ms``; ON and OFF period lengths are exponential.
The long-run mean rate is therefore

    rate = on_fraction / burst_interarrival_ms,
    on_fraction = mean_on / (mean_on + mean_off)

and the index of dispersion (burstiness) grows with the OFF/ON
contrast.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.disk.request import IORequest
from repro.workloads.trace import Trace

__all__ = ["BurstyWorkload"]


class BurstyWorkload:
    """On/off-modulated random workload over a flat address space.

    Parameters
    ----------
    capacity_sectors:
        Address space of the target storage.
    burst_interarrival_ms:
        Mean inter-arrival *within* an ON period.
    mean_on_ms / mean_off_ms:
        Mean ON / OFF period durations (exponential).
    read_fraction, request_size_sectors, footprint_fraction:
        As for :class:`~repro.workloads.synthetic.SyntheticWorkload`.
    """

    def __init__(
        self,
        capacity_sectors: int,
        burst_interarrival_ms: float = 2.0,
        mean_on_ms: float = 200.0,
        mean_off_ms: float = 800.0,
        read_fraction: float = 0.6,
        request_size_sectors: int = 8,
        footprint_fraction: float = 1.0,
        seed: Optional[int] = 97,
    ):
        if capacity_sectors <= request_size_sectors:
            raise ValueError("capacity must exceed the request size")
        if burst_interarrival_ms <= 0:
            raise ValueError("burst_interarrival_ms must be positive")
        if mean_on_ms <= 0 or mean_off_ms < 0:
            raise ValueError(
                "mean_on_ms must be positive and mean_off_ms non-negative"
            )
        if not 0.0 < footprint_fraction <= 1.0:
            raise ValueError(
                f"footprint_fraction must be in (0, 1], got "
                f"{footprint_fraction}"
            )
        self.capacity_sectors = capacity_sectors
        self.burst_interarrival_ms = burst_interarrival_ms
        self.mean_on_ms = mean_on_ms
        self.mean_off_ms = mean_off_ms
        self.read_fraction = read_fraction
        self.request_size_sectors = request_size_sectors
        self.footprint_sectors = max(
            request_size_sectors + 2,
            int(capacity_sectors * footprint_fraction),
        )
        self.seed = seed

    @property
    def mean_rate_per_ms(self) -> float:
        """Long-run arrival rate (requests/ms)."""
        on_fraction = self.mean_on_ms / (
            self.mean_on_ms + self.mean_off_ms
        )
        return on_fraction / self.burst_interarrival_ms

    @property
    def effective_interarrival_ms(self) -> float:
        return 1.0 / self.mean_rate_per_ms

    def generate(self, count: int, name: Optional[str] = None) -> Trace:
        """Produce ``count`` requests as a :class:`Trace`."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        rng = random.Random(self.seed)
        limit = self.footprint_sectors - self.request_size_sectors - 1
        requests = []
        clock = 0.0
        burst_end = rng.expovariate(1.0 / self.mean_on_ms)
        while len(requests) < count:
            gap = rng.expovariate(1.0 / self.burst_interarrival_ms)
            clock += gap
            if clock > burst_end and self.mean_off_ms > 0:
                # The ON period ended: insert an OFF lull, then start a
                # new ON period from where the lull ends.
                clock = burst_end + rng.expovariate(
                    1.0 / self.mean_off_ms
                )
                burst_end = clock + rng.expovariate(
                    1.0 / self.mean_on_ms
                )
            requests.append(
                IORequest(
                    lba=rng.randint(0, limit),
                    size=self.request_size_sectors,
                    is_read=rng.random() < self.read_fraction,
                    arrival_time=clock,
                )
            )
        return Trace(
            requests,
            name=name
            or (
                f"bursty-on{self.mean_on_ms:g}-off{self.mean_off_ms:g}"
                f"-{count}"
            ),
        )
