"""Models of the paper's four commercial I/O traces.

The original traces (UMass Financial/Websearch; IBM TPC-C/TPC-H) are
proprietary, so this module generates synthetic equivalents calibrated
to everything the paper publishes about them:

* Table 2: request count, disk count, per-disk capacity, RPM, platters
  of the original array each trace was collected on.
* §7.1: TPC-H's 8.76 ms mean inter-arrival time; the fact that the
  other three workloads are intense enough to saturate a single
  Barracuda-class drive while their original arrays service them
  comfortably; the dominance of rotational latency over (queue-
  scheduled) seek time, which requires spatial locality.
* Standard characterisations of these trace families (OLTP traces are
  write-heavy with small requests; the Websearch trace is ~99 % reads;
  TPC-H is scan-dominated with large, substantially sequential reads).

Each model produces per-*source-disk* requests: addresses are relative
to one disk of the original array, exactly like the real traces.  The
MD experiments route them JBOD-style; the HC-SD experiments concatenate
the source address spaces onto the single drive (§7.1).

Spatial locality is a per-disk mixture: a ``hot_fraction`` of accesses
fall in Gaussian hot regions around per-disk centres, the remainder
uniformly across the disk.

Temporal locality follows the burst structure of transaction
processing: the stream stays with one (disk, hot-region) pair for a
geometrically distributed run of requests (``region_run_mean``) before
switching, the way consecutive I/Os of one transaction hit one
table/index extent.  This keeps queue-scheduled *seeks* short even on
the concatenated single-drive layout, leaving rotational latency as
the dominant mechanical delay — the paper's central limit-study
finding (§7.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from math import log
from typing import Dict, List, Optional, Tuple

import dataclasses

from repro.disk.request import IORequest, new_request
from repro.disk.specs import CHEETAH_10K, DriveSpec, GB, TPCH_DRIVE
from repro.workloads.trace import Trace

__all__ = [
    "COMMERCIAL_WORKLOADS",
    "CommercialWorkload",
    "FINANCIAL",
    "TPCC",
    "TPCH",
    "WEBSEARCH",
]


@dataclass(frozen=True)
class CommercialWorkload:
    """One commercial workload: published facts plus calibrated knobs.

    ``paper_requests``, ``disks``, ``disk_capacity_gb``, ``rpm`` and
    ``platters`` come straight from Table 2.  The remaining fields are
    this reproduction's calibration (see module docstring).
    """

    name: str
    paper_requests: int
    disks: int
    disk_capacity_gb: float
    rpm: int
    platters: int
    base_spec: DriveSpec
    mean_interarrival_ms: float
    read_fraction: float
    request_size_sectors: int
    #: Spread of request sizes: size is drawn uniformly from
    #: ``[size, size * size_spread]`` in sector multiples of 8.
    size_spread: float
    sequential_fraction: float
    hotspots_per_disk: int
    hot_fraction: float
    #: Hot-region standard deviation as a fraction of the disk.
    hot_sigma: float
    seed: int
    #: Mean length of a run of consecutive requests to the same
    #: (disk, hot-region) pair (geometric); models transaction bursts.
    region_run_mean: float = 12.0

    @property
    def disk_capacity_sectors(self) -> int:
        return int(self.disk_capacity_gb * GB) // 512

    def md_drive_spec(self) -> DriveSpec:
        """The drive the original array was built from (Table 2)."""
        return dataclasses.replace(
            self.base_spec,
            name=f"{self.name}-md-drive",
            capacity_bytes=int(self.disk_capacity_gb * GB),
            rpm=self.rpm,
            platters=self.platters,
        )

    def generate(
        self, count: int = 20000, seed: Optional[int] = None
    ) -> Trace:
        """Generate ``count`` requests of this workload.

        ``count`` scales the paper's multi-million-request traces down
        to tractable lengths; the stream is statistically stationary,
        so any prefix preserves the workload's character.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        rng = random.Random(self.seed if seed is None else seed)
        capacity = self.disk_capacity_sectors
        centers = self._hotspot_centers(rng, capacity)
        sigma = self.hot_sigma * capacity
        switch_probability = 1.0 / max(1.0, self.region_run_mean)
        # Per-request loop invariants, hoisted (including _draw_size's
        # bounds, which depend only on the workload's calibration).
        arrival_rate = 1.0 / self.mean_interarrival_ms
        hot_fraction = self.hot_fraction
        sequential_fraction = self.sequential_fraction
        read_fraction = self.read_fraction
        disks = self.disks
        hotspots_per_disk = self.hotspots_per_disk
        size_low = self.request_size_sectors
        size_high = self._max_size()
        size_fixed = size_high <= size_low
        size_steps = 0 if size_fixed else (size_high - size_low) // 8
        size_draws = size_steps + 1
        random_value = rng.random
        # Draw-kernel inlining, stream-exact by construction:
        # ``randrange(n)``/``randint(0, n)`` reduce to one
        # ``_randbelow(n)``/``_randbelow(n + 1)`` call (the stdlib fast
        # path, minus two wrapper frames), and ``expovariate(rate)`` is
        # ``-log(1 - random()) / rate`` — the same underlying draws in
        # the same order, so every seed reproduces the same trace (and
        # the same figures digest) as the wrapped calls.
        randbelow = rng._randbelow
        gauss = rng.gauss
        requests: List[IORequest] = []
        clock = 0.0
        last_end: Dict[int, int] = {}
        disk = randbelow(disks)
        hotspot = randbelow(hotspots_per_disk)
        for _ in range(count):
            clock += -log(1.0 - random_value()) / arrival_rate
            if random_value() < switch_probability:
                disk = randbelow(disks)
                hotspot = randbelow(hotspots_per_disk)
            # Sizes come in 8-sector (4 KB page) multiples; the size
            # draw happens whenever the spread is non-degenerate, even
            # for a zero step count, exactly like _draw_size, so the
            # RNG stream (and every downstream draw) is unchanged.
            size = (
                size_low
                if size_fixed
                else size_low + 8 * randbelow(size_draws)
            )
            limit = capacity - size - 1
            if random_value() < hot_fraction:
                target_disk = disk
                previous = last_end.get(target_disk)
                if previous is not None and previous <= limit and (
                    random_value() < sequential_fraction
                ):
                    lba = previous
                else:
                    center = centers[target_disk][hotspot]
                    lba = int(gauss(center, sigma))
                    if lba > limit:
                        lba = limit
                    if lba < 0:
                        lba = 0
            else:
                target_disk = randbelow(disks)
                lba = randbelow(limit + 1)
            requests.append(
                new_request(
                    lba,
                    size,
                    random_value() < read_fraction,
                    clock,
                    target_disk,
                )
            )
            last_end[target_disk] = lba + size
        return Trace(requests, name=f"{self.name}-{count}")

    def _hotspot_centers(
        self, rng: random.Random, capacity: int
    ) -> List[List[int]]:
        """Per-disk hot-region centres, away from the disk edges."""
        centers: List[List[int]] = []
        for _ in range(self.disks):
            centers.append(
                [
                    rng.randint(capacity // 10, capacity - capacity // 10)
                    for _ in range(self.hotspots_per_disk)
                ]
            )
        return centers

    def _max_size(self) -> int:
        return max(
            self.request_size_sectors,
            int(self.request_size_sectors * self.size_spread),
        )

    def _draw_size(self, rng: random.Random) -> int:
        low = self.request_size_sectors
        high = self._max_size()
        if high <= low:
            return low
        # Sizes come in 8-sector (4 KB page) multiples.
        steps = (high - low) // 8
        return low + 8 * rng.randint(0, max(0, steps))

    def scaled(self, interarrival_scale: float) -> "CommercialWorkload":
        """A copy with the arrival intensity scaled (sensitivity knob)."""
        if interarrival_scale <= 0:
            raise ValueError(
                f"scale must be positive, got {interarrival_scale}"
            )
        return replace(
            self,
            mean_interarrival_ms=self.mean_interarrival_ms
            * interarrival_scale,
        )


#: OLTP trace from a large financial institution (UMass repository):
#: write-dominated small random I/O over a 24-disk array; intense
#: enough that a single drive saturates badly (paper Fig. 2).
FINANCIAL = CommercialWorkload(
    name="financial",
    paper_requests=5_334_945,
    disks=24,
    disk_capacity_gb=19.07,
    rpm=10000,
    platters=4,
    base_spec=CHEETAH_10K,
    mean_interarrival_ms=4.3,
    read_fraction=0.23,
    request_size_sectors=8,
    size_spread=2.0,
    sequential_fraction=0.05,
    hotspots_per_disk=4,
    hot_fraction=0.92,
    hot_sigma=0.002,
    seed=101,
)

#: Internet search-engine trace (UMass): almost pure random reads.
WEBSEARCH = CommercialWorkload(
    name="websearch",
    paper_requests=4_579_809,
    disks=6,
    disk_capacity_gb=19.07,
    rpm=10000,
    platters=4,
    base_spec=CHEETAH_10K,
    mean_interarrival_ms=5.2,
    read_fraction=0.99,
    request_size_sectors=16,
    size_spread=2.0,
    sequential_fraction=0.02,
    hotspots_per_disk=3,
    hot_fraction=0.90,
    hot_sigma=0.003,
    seed=202,
)

#: TPC-C (20 warehouses, 8 clients, DB2): random small I/O, mixed
#: read/write, strong buffer-pool-filtered locality.
TPCC = CommercialWorkload(
    name="tpcc",
    paper_requests=6_155_547,
    disks=4,
    disk_capacity_gb=37.17,
    rpm=10000,
    platters=4,
    base_spec=CHEETAH_10K,
    mean_interarrival_ms=5.3,
    read_fraction=0.65,
    request_size_sectors=8,
    size_spread=1.0,
    sequential_fraction=0.03,
    hotspots_per_disk=6,
    hot_fraction=0.92,
    hot_sigma=0.002,
    seed=303,
)

#: TPC-H power test (22 queries back-to-back, DB2 EE): scan-dominated
#: large sequential reads; mean inter-arrival 8.76 ms (paper §7.1), so
#: even the single drive keeps up.
TPCH = CommercialWorkload(
    name="tpch",
    paper_requests=4_228_725,
    disks=15,
    disk_capacity_gb=35.96,
    rpm=7200,
    platters=6,
    base_spec=TPCH_DRIVE,
    mean_interarrival_ms=8.76,
    read_fraction=0.92,
    request_size_sectors=48,
    size_spread=3.0,
    sequential_fraction=0.65,
    hotspots_per_disk=3,
    hot_fraction=0.88,
    hot_sigma=0.004,
    seed=404,
)

#: Name → workload lookup in the paper's presentation order.
COMMERCIAL_WORKLOADS: Dict[str, CommercialWorkload] = {
    workload.name: workload
    for workload in (FINANCIAL, WEBSEARCH, TPCC, TPCH)
}
