"""Trace analysis: arrival, mix, and locality characterisation.

Tools for inspecting a :class:`~repro.workloads.trace.Trace` the way a
storage study would before simulating it: arrival burstiness,
read/write mix, request-size distribution, spatial footprint and
hot-region concentration.  Used by the CLI's ``workloads`` view and by
the test suite to verify the commercial models carry the properties
the calibration claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.stats import OnlineStats, percentile
from repro.workloads.trace import Trace

__all__ = ["TraceProfile", "profile_trace"]


@dataclass
class TraceProfile:
    """Computed characteristics of one trace."""

    name: str
    requests: int
    duration_ms: float
    mean_interarrival_ms: float
    #: Coefficient of variation of inter-arrival times (1 ≈ Poisson;
    #: >1 bursty).
    interarrival_cv: float
    read_fraction: float
    mean_size_sectors: float
    p90_size_sectors: float
    sequential_fraction: float
    #: Unique 1 MB-aligned regions touched, per source disk.
    footprint_mb_by_disk: Dict[int, int]
    #: Fraction of requests landing in the busiest 10 % of touched
    #: 1 MB regions (hot-region concentration).
    hot10_fraction: float

    def summary_lines(self) -> List[str]:
        total_footprint = sum(self.footprint_mb_by_disk.values())
        return [
            f"trace            : {self.name}",
            f"requests         : {self.requests}"
            f" over {self.duration_ms / 1000.0:.1f} s",
            f"inter-arrival    : {self.mean_interarrival_ms:.2f} ms "
            f"(CV {self.interarrival_cv:.2f})",
            f"mix              : {self.read_fraction:.0%} reads, "
            f"mean {self.mean_size_sectors:.0f} sectors "
            f"(p90 {self.p90_size_sectors:.0f})",
            f"sequentiality    : {self.sequential_fraction:.0%}",
            f"footprint        : {total_footprint} MB across "
            f"{len(self.footprint_mb_by_disk)} disk(s)",
            f"hot concentration: busiest 10% of regions take "
            f"{self.hot10_fraction:.0%} of requests",
        ]


_REGION_SECTORS = 2048  # 1 MB regions


def profile_trace(trace: Trace) -> TraceProfile:
    """Compute a :class:`TraceProfile` for ``trace`` (single pass plus
    a sort over the touched regions)."""
    if len(trace) == 0:
        raise ValueError("cannot profile an empty trace")

    interarrivals = OnlineStats()
    previous_time = None
    sizes: List[float] = []
    region_counts: Dict[tuple, int] = {}
    footprint: Dict[int, set] = {}
    for request in trace:
        if previous_time is not None:
            interarrivals.add(request.arrival_time - previous_time)
        previous_time = request.arrival_time
        sizes.append(request.size)
        region = (
            request.source_disk,
            request.lba // _REGION_SECTORS,
        )
        region_counts[region] = region_counts.get(region, 0) + 1
        footprint.setdefault(request.source_disk, set()).add(region[1])

    if interarrivals.count > 0 and interarrivals.mean > 0:
        cv = interarrivals.stddev / interarrivals.mean
    else:
        cv = 0.0

    counts = sorted(region_counts.values(), reverse=True)
    top = max(1, len(counts) // 10)
    hot10 = sum(counts[:top]) / len(trace)

    return TraceProfile(
        name=trace.name,
        requests=len(trace),
        duration_ms=trace.duration_ms,
        mean_interarrival_ms=trace.mean_interarrival_ms,
        interarrival_cv=cv,
        read_fraction=trace.read_fraction,
        mean_size_sectors=trace.mean_size_sectors,
        p90_size_sectors=percentile(sizes, 90),
        sequential_fraction=trace.sequential_fraction(),
        footprint_mb_by_disk={
            disk: len(regions) for disk, regions in footprint.items()
        },
        hot10_fraction=hot10,
    )
