"""Streaming readers and writers for on-disk trace formats.

Three ASCII formats cover the traces the paper's studies were driven
by (§7.1, Table 2) plus what modern tooling produces:

``disksim``
    This repo's native format (see :mod:`repro.workloads.trace`):
    ``<arrival-ms> <disk> <lba> <size-sectors> <R|W>`` with ``#``
    comments.

``spc1``
    The SPC-1 / UMass trace-repository CSV convention the paper's
    Financial and Websearch traces are published in::

        ASU,LBA,Size,Opcode,Timestamp

    ``ASU`` (application storage unit) maps to ``source_disk``,
    ``Size`` is in bytes (rounded up to whole sectors), ``Opcode`` is
    ``r``/``R``/``w``/``W`` and ``Timestamp`` is in seconds.

``blktrace``
    The default ``blkparse`` per-event text output::

        <maj,min> <cpu> <seq> <time-s> <pid> <action> <rwbs> \
            <sector> + <nsectors> [process]

    Only one event per request is replayed (default action ``Q``, the
    queue-insertion event — the closest analogue of an open-loop
    arrival); devices map to ``source_disk`` in order of first
    appearance.  Lines that are not per-event records (blkparse
    summaries, other actions, zero-sector barriers) are skipped and
    counted.

Every reader is a generator over :class:`~repro.disk.request.IORequest`
— nothing is materialized, so a multi-million-request trace can be
converted, profiled or replayed at a flat memory ceiling.  ``.gz``
paths are handled transparently by
:func:`repro.workloads.trace.open_trace_text`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Iterator, Optional, Union

from repro.disk.request import IORequest
from repro.workloads.trace import (
    Trace,
    format_request_line,
    open_trace_text,
    parse_request_line,
)

__all__ = [
    "TRACE_FORMATS",
    "convert_trace",
    "detect_trace_format",
    "iter_trace_requests",
    "stat_trace",
    "write_trace_requests",
]

#: Formats readers/writers exist for, in documentation order.
TRACE_FORMATS = ("disksim", "spc1", "blktrace")

_SUFFIX_FORMATS = {
    ".trace": "disksim",
    ".dsim": "disksim",
    ".txt": "disksim",
    ".spc": "spc1",
    ".spc1": "spc1",
    ".csv": "spc1",
    ".blktrace": "blktrace",
    ".blkparse": "blktrace",
}

_MS_PER_S = 1000.0
_SECTOR_BYTES = 512


def detect_trace_format(path: Union[str, os.PathLike]) -> str:
    """Infer a trace format from the path suffix (``.gz`` stripped).

    Unknown suffixes default to the native ``disksim`` format, which
    fails loudly on the first malformed line rather than guessing.
    """
    text = str(path)
    if text.endswith(".gz"):
        text = text[: -len(".gz")]
    suffix = os.path.splitext(text)[1].lower()
    return _SUFFIX_FORMATS.get(suffix, "disksim")


def _skip(skipped: Dict[str, int], reason: str) -> None:
    # ``.get`` rather than ``+=``: callers may pass dicts predating a
    # newly introduced reason key.
    skipped[reason] = skipped.get(reason, 0) + 1


def _iter_disksim(
    handle: Iterable[str], where: str, skipped: Dict[str, int]
) -> Iterator[IORequest]:
    for line_number, line in enumerate(handle, start=1):
        text = line.strip()
        if not text:
            _skip(skipped, "blank")
            continue
        if text.startswith("#"):
            skipped["comments"] += 1
            continue
        yield parse_request_line(text, where=f"{where}:{line_number}")


def _iter_spc1(
    handle: Iterable[str], where: str, skipped: Dict[str, int]
) -> Iterator[IORequest]:
    for line_number, line in enumerate(handle, start=1):
        text = line.strip()
        if not text:
            _skip(skipped, "blank")
            continue
        if text.startswith("#"):
            skipped["comments"] += 1
            continue
        fields = text.split(",")
        if len(fields) < 5:
            raise ValueError(
                f"{where}:{line_number}: expected 5 comma-separated "
                f"SPC-1 fields (ASU,LBA,Size,Opcode,Timestamp), got "
                f"{len(fields)}: {text!r}"
            )
        asu, lba, size_bytes, opcode, timestamp = (
            field.strip() for field in fields[:5]
        )
        kind = opcode.upper()
        if kind not in ("R", "W"):
            raise ValueError(
                f"{where}:{line_number}: SPC-1 opcode must be r or w, "
                f"got {opcode!r}"
            )
        size = max(1, (int(size_bytes) + _SECTOR_BYTES - 1) // _SECTOR_BYTES)
        yield IORequest(
            lba=int(lba),
            size=size,
            is_read=kind == "R",
            arrival_time=float(timestamp) * _MS_PER_S,
            source_disk=int(asu),
        )


def _iter_blktrace(
    handle: Iterable[str],
    where: str,
    skipped: Dict[str, int],
    action: str = "Q",
) -> Iterator[IORequest]:
    device_ids: Dict[str, int] = {}
    for line in handle:
        fields = line.split()
        if not fields:
            _skip(skipped, "blank")
            continue
        # Per-event records have at least: dev cpu seq time pid action
        # rwbs sector + nsectors.  Everything else (the blkparse
        # per-CPU summary block, truncated lines) is skipped.
        if len(fields) < 10 or fields[8] != "+":
            skipped["non_event"] += 1
            continue
        try:
            timestamp = float(fields[3])
            sector = int(fields[7])
            nsectors = int(fields[9])
        except ValueError:
            skipped["non_event"] += 1
            continue
        if fields[5] != action:
            skipped["other_action"] += 1
            continue
        rwbs = fields[6].upper()
        if "R" in rwbs:
            is_read = True  # plain reads and readahead ('RA') alike
        elif "W" in rwbs or "D" in rwbs:
            is_read = False  # writes; discards modelled as writes
        else:
            skipped["no_data"] += 1
            continue
        if nsectors <= 0:
            skipped["no_data"] += 1
            continue
        device = fields[0]
        source = device_ids.setdefault(device, len(device_ids))
        yield IORequest(
            lba=sector,
            size=nsectors,
            is_read=is_read,
            arrival_time=timestamp * _MS_PER_S,
            source_disk=source,
        )


_READERS: Dict[str, Callable] = {
    "disksim": _iter_disksim,
    "spc1": _iter_spc1,
    "blktrace": _iter_blktrace,
}


def iter_trace_requests(
    path: Union[str, os.PathLike],
    trace_format: Optional[str] = None,
    skipped: Optional[Dict[str, int]] = None,
) -> Iterator[IORequest]:
    """Stream the requests of a trace file, one at a time.

    ``trace_format`` defaults to :func:`detect_trace_format`;
    ``skipped``, when given, accumulates per-reason counts of lines
    the reader ignored (comments, non-event blktrace records, ...).
    """
    chosen = trace_format or detect_trace_format(path)
    try:
        reader = _READERS[chosen]
    except KeyError:
        raise ValueError(
            f"unknown trace format {chosen!r}; choose from "
            f"{', '.join(TRACE_FORMATS)}"
        ) from None
    counts = skipped if skipped is not None else _new_skip_counts()
    with open_trace_text(path, "r") as handle:
        yield from reader(handle, str(path), counts)


def _new_skip_counts() -> Dict[str, int]:
    return {
        "blank": 0,
        "comments": 0,
        "non_event": 0,
        "other_action": 0,
        "no_data": 0,
    }


def _format_spc1_line(request: IORequest) -> str:
    opcode = "r" if request.is_read else "w"
    return (
        f"{request.source_disk},{request.lba},"
        f"{request.size * _SECTOR_BYTES},{opcode},"
        f"{request.arrival_time / _MS_PER_S:.6f}"
    )


def write_trace_requests(
    path: Union[str, os.PathLike],
    requests: Iterable[IORequest],
    trace_format: str = "disksim",
    name: str = "trace",
) -> int:
    """Stream ``requests`` to ``path`` in ``trace_format``; returns the
    request count.  ``blktrace`` is read-only (it is a kernel event
    log, not a replay format)."""
    if trace_format == "disksim":
        formatter = format_request_line
        header = [f"# trace: {name}", "# arrival_ms disk lba size kind"]
    elif trace_format == "spc1":
        formatter = _format_spc1_line
        header = []
    else:
        raise ValueError(
            f"cannot write format {trace_format!r}; choose from "
            "disksim, spc1"
        )
    count = 0
    with open_trace_text(path, "w") as handle:
        for line in header:
            handle.write(line + "\n")
        for request in requests:
            handle.write(formatter(request) + "\n")
            count += 1
    return count


def convert_trace(
    src: Union[str, os.PathLike],
    dst: Union[str, os.PathLike],
    in_format: Optional[str] = None,
    out_format: Optional[str] = None,
    sort: bool = False,
    limit: Optional[int] = None,
    name: Optional[str] = None,
) -> Dict:
    """Convert a trace file between formats, streaming by default.

    ``sort=True`` materializes the trace to reorder non-monotone
    arrivals (stable, so equal arrivals keep file order); without it
    the conversion is a flat-memory pass and out-of-order inputs are
    passed through untouched (the replay layer validates arrival
    order).  ``limit`` truncates to the first N requests.  Returns a
    summary dict (requests written, skipped-line counts, formats).
    """
    if limit is not None and limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")
    chosen_in = in_format or detect_trace_format(src)
    chosen_out = out_format or detect_trace_format(dst)
    skipped = _new_skip_counts()
    stream: Iterable[IORequest] = iter_trace_requests(
        src, chosen_in, skipped=skipped
    )
    if limit is not None:
        stream = _truncate(stream, limit)
    trace_name = name or _stem(dst)
    if sort:
        stream = Trace(stream, name=trace_name, sort=True)
    written = write_trace_requests(
        dst, stream, trace_format=chosen_out, name=trace_name
    )
    return {
        "src": str(src),
        "dst": str(dst),
        "in_format": chosen_in,
        "out_format": chosen_out,
        "requests": written,
        "sorted": sort,
        "skipped": {k: v for k, v in skipped.items() if v},
    }


def _truncate(
    stream: Iterable[IORequest], limit: int
) -> Iterator[IORequest]:
    for index, request in enumerate(stream):
        if index >= limit:
            return
        yield request


def _stem(path: Union[str, os.PathLike]) -> str:
    base = os.path.basename(str(path))
    if base.endswith(".gz"):
        base = base[: -len(".gz")]
    return os.path.splitext(base)[0]


def stat_trace(
    path: Union[str, os.PathLike],
    trace_format: Optional[str] = None,
) -> Dict:
    """One streaming pass over a trace file: the same summary a
    :class:`~repro.workloads.trace.Trace` reports, without
    materializing, plus skipped-line counts and a monotonicity flag."""
    chosen = trace_format or detect_trace_format(path)
    skipped = _new_skip_counts()
    count = 0
    reads = 0
    size_total = 0
    first_arrival = 0.0
    last_arrival = 0.0
    monotone = True
    disks = set()
    last_end: Dict[int, int] = {}
    sequential = 0
    for request in iter_trace_requests(path, chosen, skipped=skipped):
        if count == 0:
            first_arrival = request.arrival_time
        elif request.arrival_time < last_arrival:
            monotone = False
        last_arrival = request.arrival_time
        count += 1
        if request.is_read:
            reads += 1
        size_total += request.size
        disks.add(request.source_disk)
        if last_end.get(request.source_disk) == request.lba:
            sequential += 1
        last_end[request.source_disk] = request.end_lba
    duration = last_arrival - first_arrival if count else 0.0
    return {
        "name": _stem(path),
        "path": str(path),
        "format": chosen,
        "requests": count,
        "duration_ms": duration,
        "mean_interarrival_ms": duration / (count - 1) if count > 1 else 0.0,
        "read_fraction": reads / count if count else 0.0,
        "mean_size_sectors": size_total / count if count else 0.0,
        "disks": len(disks),
        "sequential_fraction": (
            sequential / (count - 1) if count > 1 else 0.0
        ),
        "monotone": monotone,
        "skipped": {k: v for k, v in skipped.items() if v},
    }
