"""DiskSim-style synthetic workload generator.

Reproduces the generator configuration of the paper's §7.3: a Poisson
(exponential inter-arrival) open request stream in which 60 % of
requests are reads and 20 % of requests are sequential with their
predecessor, the remainder falling uniformly at random across the
storage footprint.  Inter-arrival means of 8, 4 and 1 ms model light,
moderate and heavy I/O loads.
"""

from __future__ import annotations

from typing import Optional

from repro.disk.request import IORequest
from repro.sim.distributions import (
    BernoulliStream,
    ExponentialStream,
    UniformStream,
)
from repro.workloads.trace import Trace

__all__ = ["SyntheticWorkload"]


class SyntheticWorkload:
    """Parameterised synthetic request-stream generator.

    Parameters
    ----------
    capacity_sectors:
        Footprint of the target storage system; random requests fall
        uniformly in ``[0, capacity - max_size)``.
    mean_interarrival_ms:
        Mean of the exponential inter-arrival distribution.
    read_fraction:
        Probability a request is a read (paper: 0.6).
    sequential_fraction:
        Probability a request starts exactly where the previous one
        ended (paper: 0.2).
    request_size_sectors:
        Fixed request size (the paper's generator uses a constant
        size; 8 sectors = 4 KB is the classic OLTP value).
    footprint_fraction:
        Fraction of the capacity the random requests cover, starting
        from LBA 0 (the outer, fastest zones).  Server deployments
        commonly short-stroke drives — the paper's own motivation
        notes that "only a fraction of the space within a drive" is
        used to boost performance (§1) — and the arrays of §7.3 are
        far larger than any realistic dataset.
    seed:
        Base seed; all internal streams derive from it.
    """

    def __init__(
        self,
        capacity_sectors: int,
        mean_interarrival_ms: float,
        read_fraction: float = 0.6,
        sequential_fraction: float = 0.2,
        request_size_sectors: int = 8,
        footprint_fraction: float = 1.0,
        seed: Optional[int] = 42,
    ):
        if capacity_sectors <= request_size_sectors:
            raise ValueError(
                "capacity must exceed the request size "
                f"({capacity_sectors} <= {request_size_sectors})"
            )
        if request_size_sectors <= 0:
            raise ValueError(
                f"request size must be positive, got {request_size_sectors}"
            )
        if not 0.0 < footprint_fraction <= 1.0:
            raise ValueError(
                f"footprint_fraction must be in (0, 1], got "
                f"{footprint_fraction}"
            )
        self.capacity_sectors = capacity_sectors
        self.footprint_fraction = footprint_fraction
        footprint = max(
            request_size_sectors + 2,
            int(capacity_sectors * footprint_fraction),
        )
        self.footprint_sectors = min(footprint, capacity_sectors)
        self.mean_interarrival_ms = mean_interarrival_ms
        self.read_fraction = read_fraction
        self.sequential_fraction = sequential_fraction
        self.request_size_sectors = request_size_sectors
        self.seed = seed
        base = seed if seed is not None else 0
        self._interarrival = ExponentialStream(
            mean_interarrival_ms, seed=base
        )
        self._reads = BernoulliStream(read_fraction, seed=base + 1)
        self._sequential = BernoulliStream(
            sequential_fraction, seed=base + 2
        )
        self._location = UniformStream(
            0,
            self.footprint_sectors - request_size_sectors - 1,
            seed=base + 3,
        )

    def generate(self, count: int, name: Optional[str] = None) -> Trace:
        """Produce ``count`` requests as a :class:`Trace`."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        requests = []
        clock = 0.0
        previous_end = None
        limit = self.footprint_sectors - self.request_size_sectors
        for _ in range(count):
            clock += self._interarrival.sample()
            if (
                previous_end is not None
                and previous_end <= limit
                and self._sequential.sample()
            ):
                lba = previous_end
            else:
                lba = self._location.sample_int()
            request = IORequest(
                lba=lba,
                size=self.request_size_sectors,
                is_read=self._reads.sample(),
                arrival_time=clock,
            )
            requests.append(request)
            previous_end = request.end_lba
        label = name or (
            f"synthetic-ia{self.mean_interarrival_ms:g}ms-{count}"
        )
        return Trace(requests, name=label)
