"""Trace container and ASCII trace file I/O.

The on-disk format follows DiskSim's ASCII trace convention — one
request per line:

    <arrival-time-ms> <disk> <lba> <size-sectors> <R|W>

Lines beginning with ``#`` are comments.  Times must be non-decreasing.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Optional, Union

from repro.disk.request import IORequest

__all__ = ["Trace", "load_trace", "save_trace"]


class Trace:
    """An ordered sequence of I/O requests plus summary statistics."""

    def __init__(
        self,
        requests: Iterable[IORequest],
        name: str = "trace",
        sort: bool = False,
    ):
        self.requests: List[IORequest] = list(requests)
        self.name = name
        if sort:
            # Stable, so simultaneous arrivals keep their input order
            # (and therefore their FCFS tie-break behaviour).
            self.requests.sort(key=lambda request: request.arrival_time)
            return
        for index, (earlier, later) in enumerate(
            zip(self.requests, self.requests[1:])
        ):
            if later.arrival_time < earlier.arrival_time:
                raise ValueError(
                    f"trace {name!r} arrival times not monotone at "
                    f"request {index + 1}: {later.arrival_time} after "
                    f"{earlier.arrival_time}; pass sort=True to reorder"
                )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self.requests)

    def __getitem__(self, index):
        return self.requests[index]

    @property
    def duration_ms(self) -> float:
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_time - self.requests[0].arrival_time

    @property
    def read_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return sum(1 for r in self.requests if r.is_read) / len(self.requests)

    @property
    def mean_interarrival_ms(self) -> float:
        if len(self.requests) < 2:
            return 0.0
        return self.duration_ms / (len(self.requests) - 1)

    @property
    def mean_size_sectors(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.size for r in self.requests) / len(self.requests)

    def disks_touched(self) -> List[int]:
        return sorted({r.source_disk for r in self.requests})

    def sequential_fraction(self) -> float:
        """Fraction of requests contiguous with the previous request on
        the same source disk."""
        if len(self.requests) < 2:
            return 0.0
        last_end = {}
        sequential = 0
        for request in self.requests:
            if last_end.get(request.source_disk) == request.lba:
                sequential += 1
            last_end[request.source_disk] = request.end_lba
        return sequential / (len(self.requests) - 1)

    def summary(self) -> dict:
        return {
            "name": self.name,
            "requests": len(self.requests),
            "duration_ms": self.duration_ms,
            "mean_interarrival_ms": self.mean_interarrival_ms,
            "read_fraction": self.read_fraction,
            "mean_size_sectors": self.mean_size_sectors,
            "disks": len(self.disks_touched()),
            "sequential_fraction": self.sequential_fraction(),
        }


def save_trace(path: Union[str, os.PathLike], trace: Trace) -> None:
    """Write a trace in the ASCII format described in the module docs."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# trace: {trace.name}\n")
        handle.write("# arrival_ms disk lba size kind\n")
        for request in trace:
            kind = "R" if request.is_read else "W"
            handle.write(
                f"{request.arrival_time:.6f} {request.source_disk} "
                f"{request.lba} {request.size} {kind}\n"
            )


def load_trace(
    path: Union[str, os.PathLike], name: Optional[str] = None
) -> Trace:
    """Read a trace written by :func:`save_trace` (or hand-authored)."""
    requests: List[IORequest] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            fields = text.split()
            if len(fields) != 5:
                raise ValueError(
                    f"{path}:{line_number}: expected 5 fields, got "
                    f"{len(fields)}: {text!r}"
                )
            arrival, disk, lba, size, kind = fields
            if kind.upper() not in ("R", "W"):
                raise ValueError(
                    f"{path}:{line_number}: kind must be R or W, got {kind!r}"
                )
            requests.append(
                IORequest(
                    lba=int(lba),
                    size=int(size),
                    is_read=kind.upper() == "R",
                    arrival_time=float(arrival),
                    source_disk=int(disk),
                )
            )
    trace_name = name or os.path.splitext(os.path.basename(str(path)))[0]
    return Trace(requests, name=trace_name)
