"""Trace container and ASCII trace file I/O.

The on-disk format follows DiskSim's ASCII trace convention — one
request per line:

    <arrival-time-ms> <disk> <lba> <size-sectors> <R|W>

Lines beginning with ``#`` are comments.  Times must be non-decreasing.

Paths ending in ``.gz`` are read and written through gzip
transparently (both here and in the streaming readers of
:mod:`repro.workloads.formats`), so multi-million-request fixtures
stay small on disk.
"""

from __future__ import annotations

import gzip
import os
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.disk.request import IORequest

__all__ = ["Trace", "load_trace", "open_trace_text", "save_trace"]


def open_trace_text(
    path: Union[str, os.PathLike], mode: str = "r"
) -> IO[str]:
    """Open a trace file as ASCII text, gunzipping ``.gz`` paths.

    ``mode`` is ``"r"`` or ``"w"``; the gzip layer is chosen purely by
    the ``.gz`` suffix so a converted trace keeps working wherever the
    uncompressed one did.
    """
    if mode not in ("r", "w"):
        raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


class Trace:
    """An ordered sequence of I/O requests plus summary statistics."""

    def __init__(
        self,
        requests: Iterable[IORequest],
        name: str = "trace",
        sort: bool = False,
    ):
        self.requests: List[IORequest] = list(requests)
        self.name = name
        if sort:
            # Stable, so simultaneous arrivals keep their input order
            # (and therefore their FCFS tie-break behaviour).
            self.requests.sort(key=lambda request: request.arrival_time)
        # Sorted and pre-sorted traces share one validation path: a
        # sorted list passes trivially, and any future invariant added
        # here automatically covers both construction modes.
        self._validate_monotone()

    def _validate_monotone(self) -> None:
        for index, (earlier, later) in enumerate(
            zip(self.requests, self.requests[1:])
        ):
            if later.arrival_time < earlier.arrival_time:
                raise ValueError(
                    f"trace {self.name!r} arrival times not monotone at "
                    f"request {index + 1}: {later.arrival_time} after "
                    f"{earlier.arrival_time}; pass sort=True to reorder"
                )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self.requests)

    def __getitem__(self, index):
        return self.requests[index]

    @property
    def duration_ms(self) -> float:
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_time - self.requests[0].arrival_time

    @property
    def read_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return sum(1 for r in self.requests if r.is_read) / len(self.requests)

    @property
    def mean_interarrival_ms(self) -> float:
        if len(self.requests) < 2:
            return 0.0
        return self.duration_ms / (len(self.requests) - 1)

    @property
    def mean_size_sectors(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.size for r in self.requests) / len(self.requests)

    def disks_touched(self) -> List[int]:
        return sorted({r.source_disk for r in self.requests})

    def sequential_fraction(self) -> float:
        """Fraction of requests contiguous with the previous request on
        the same source disk."""
        if len(self.requests) < 2:
            return 0.0
        last_end = {}
        sequential = 0
        for request in self.requests:
            if last_end.get(request.source_disk) == request.lba:
                sequential += 1
            last_end[request.source_disk] = request.end_lba
        return sequential / (len(self.requests) - 1)

    def summary(self) -> dict:
        return {
            "name": self.name,
            "requests": len(self.requests),
            "duration_ms": self.duration_ms,
            "mean_interarrival_ms": self.mean_interarrival_ms,
            "read_fraction": self.read_fraction,
            "mean_size_sectors": self.mean_size_sectors,
            "disks": len(self.disks_touched()),
            "sequential_fraction": self.sequential_fraction(),
        }


def format_request_line(request: IORequest) -> str:
    """One request in the on-disk ASCII format (no trailing newline)."""
    kind = "R" if request.is_read else "W"
    return (
        f"{request.arrival_time:.6f} {request.source_disk} "
        f"{request.lba} {request.size} {kind}"
    )


def parse_request_line(
    text: str, where: str = "<line>"
) -> IORequest:
    """Parse one non-comment trace line; ``where`` labels errors."""
    fields = text.split()
    if len(fields) != 5:
        raise ValueError(
            f"{where}: expected 5 fields, got {len(fields)}: {text!r}"
        )
    arrival, disk, lba, size, kind = fields
    if kind.upper() not in ("R", "W"):
        raise ValueError(f"{where}: kind must be R or W, got {kind!r}")
    return IORequest(
        lba=int(lba),
        size=int(size),
        is_read=kind.upper() == "R",
        arrival_time=float(arrival),
        source_disk=int(disk),
    )


def save_trace(
    path: Union[str, os.PathLike],
    trace: Iterable[IORequest],
    name: Optional[str] = None,
) -> None:
    """Write a trace in the ASCII format described in the module docs.

    ``trace`` may be a :class:`Trace` or any iterable of requests (a
    generator streams straight to disk without materializing); ``.gz``
    paths are gzip-compressed.  ``name`` overrides the header comment
    (defaults to ``trace.name`` when present).
    """
    header = name or getattr(trace, "name", "trace")
    with open_trace_text(path, "w") as handle:
        handle.write(f"# trace: {header}\n")
        handle.write("# arrival_ms disk lba size kind\n")
        for request in trace:
            handle.write(format_request_line(request) + "\n")


def load_trace(
    path: Union[str, os.PathLike], name: Optional[str] = None
) -> Trace:
    """Read a trace written by :func:`save_trace` (or hand-authored)."""
    requests: List[IORequest] = []
    with open_trace_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            requests.append(
                parse_request_line(text, where=f"{path}:{line_number}")
            )
    base = os.path.basename(str(path))
    if base.endswith(".gz"):
        base = base[: -len(".gz")]
    trace_name = name or os.path.splitext(base)[0]
    return Trace(requests, name=trace_name)
