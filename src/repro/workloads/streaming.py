"""Bounded-memory trace streaming.

A :class:`StreamingTrace` is the disk-backed sibling of
:class:`~repro.workloads.trace.Trace`: it yields requests straight
from a trace file (any format in
:mod:`repro.workloads.formats`, gzip transparent) without ever
materializing the full request list, so a multi-million-request
SPC-style trace replays at a flat memory ceiling set by the chunk
size, not the trace length.

The stream is *re-iterable* — every iteration reopens the file — so
one ``StreamingTrace`` can be replayed against many configurations,
exactly like an in-memory ``Trace``.  Arrival-time monotonicity is
validated on the fly as requests are yielded; an out-of-order file
fails loudly at the offending request instead of silently corrupting
response times (use ``repro trace convert --sort`` to repair one).
"""

from __future__ import annotations

import math
import os
from typing import Dict, Iterator, List, Optional, Union

from repro.disk.request import IORequest
from repro.obs.metrics import current_metrics
from repro.workloads.formats import (
    _new_skip_counts,
    detect_trace_format,
    iter_trace_requests,
    stat_trace,
)
from repro.workloads.trace import Trace

__all__ = ["DEFAULT_CHUNK_REQUESTS", "StreamingTrace"]

#: Default replay chunk: large enough to amortize parse overhead,
#: small enough that a chunk of requests is a few MB resident.
DEFAULT_CHUNK_REQUESTS = 65536


class StreamingTrace:
    """A trace file exposed as a bounded-memory request stream."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        trace_format: Optional[str] = None,
        name: Optional[str] = None,
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    ):
        if chunk_requests < 1:
            raise ValueError(
                f"chunk_requests must be >= 1, got {chunk_requests}"
            )
        if not os.path.exists(path):
            raise FileNotFoundError(f"no trace file at {path}")
        self.path = str(path)
        self.trace_format = trace_format or detect_trace_format(path)
        self.name = name or _stem(self.path)
        self.chunk_requests = chunk_requests
        #: Per-reason skipped-line counts of the last *complete*
        #: iteration pass (empty until one finishes).
        self.last_skipped: Dict[str, int] = {}

    def __repr__(self) -> str:
        return (
            f"StreamingTrace({self.path!r}, format={self.trace_format!r}, "
            f"chunk_requests={self.chunk_requests})"
        )

    def __iter__(self) -> Iterator[IORequest]:
        """Yield requests in file order, enforcing monotone arrivals."""
        last_arrival = -math.inf
        skipped = _new_skip_counts()
        for index, request in enumerate(
            iter_trace_requests(
                self.path, self.trace_format, skipped=skipped
            )
        ):
            if request.arrival_time < last_arrival:
                raise ValueError(
                    f"streaming trace {self.name!r} arrival times not "
                    f"monotone at request {index}: "
                    f"{request.arrival_time} after {last_arrival}; "
                    "convert with --sort first"
                )
            last_arrival = request.arrival_time
            yield request
        self.last_skipped = {k: v for k, v in skipped.items() if v}
        metrics = current_metrics()
        if metrics.enabled and self.last_skipped:
            family = metrics.counter(
                "repro_trace_skipped_lines_total",
                "Trace lines the readers ignored, by reason",
                labels=("reason",),
            )
            for reason, count in sorted(self.last_skipped.items()):
                family.labels(reason=reason).inc(count)

    def iter_chunks(
        self, chunk_requests: Optional[int] = None
    ) -> Iterator[List[IORequest]]:
        """Yield lists of at most ``chunk_requests`` requests.

        This is the bounded-memory unit the replay pipeline works in:
        at any instant only one chunk (plus in-flight requests) is
        resident.
        """
        size = chunk_requests or self.chunk_requests
        if size < 1:
            raise ValueError(f"chunk_requests must be >= 1, got {size}")
        chunk: List[IORequest] = []
        append = chunk.append
        for request in self:
            append(request)
            if len(chunk) >= size:
                yield chunk
                chunk = []
                append = chunk.append
        if chunk:
            yield chunk

    def materialize(self, limit: Optional[int] = None) -> Trace:
        """Read (a prefix of) the stream into an in-memory ``Trace``.

        ``limit`` truncates to the first N requests — the hook the
        serial-vs-streamed bit-identity checks use to compare a
        tractable prefix of a huge trace.
        """
        if limit is not None and limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        requests: List[IORequest] = []
        for request in self:
            requests.append(request)
            if limit is not None and len(requests) >= limit:
                break
        return Trace(requests, name=self.name)

    def count(self) -> int:
        """Number of requests in the file (one full streaming pass)."""
        total = 0
        for _ in iter_trace_requests(self.path, self.trace_format):
            total += 1
        return total

    def summary(self) -> Dict:
        """The same summary an in-memory ``Trace`` reports, computed
        in one streaming pass (plus format/monotonicity metadata)."""
        summary = stat_trace(self.path, self.trace_format)
        summary["name"] = self.name
        return summary


def _stem(path: str) -> str:
    base = os.path.basename(path)
    if base.endswith(".gz"):
        base = base[: -len(".gz")]
    return os.path.splitext(base)[0]
