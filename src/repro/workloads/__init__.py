"""Workload substrate: traces and generators.

* :mod:`repro.workloads.trace` — the in-memory trace container plus an
  ASCII on-disk format compatible in spirit with DiskSim's
  (transparently gzip-compressed for ``.gz`` paths).
* :mod:`repro.workloads.formats` — SPC-1 and blktrace readers, format
  detection, and the streaming ``convert``/``stat`` tools.
* :mod:`repro.workloads.streaming` — :class:`StreamingTrace`, the
  bounded-memory generator-backed trace for replaying files larger
  than RAM.
* :mod:`repro.workloads.synthetic` — the DiskSim-style synthetic
  generator used by the paper's §7.3 study (exponential inter-arrival;
  60 % reads, 20 % sequential).
* :mod:`repro.workloads.commercial` — seeded models of the four
  commercial traces (Financial, Websearch, TPC-C, TPC-H) calibrated to
  the published characteristics of Table 2.
"""

from repro.workloads.trace import (
    Trace,
    load_trace,
    open_trace_text,
    save_trace,
)
from repro.workloads.formats import (
    TRACE_FORMATS,
    convert_trace,
    detect_trace_format,
    iter_trace_requests,
    stat_trace,
    write_trace_requests,
)
from repro.workloads.streaming import StreamingTrace
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.closedloop import ClosedLoopClients, ClosedLoopResult
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.analysis import TraceProfile, profile_trace
from repro.workloads.commercial import (
    COMMERCIAL_WORKLOADS,
    CommercialWorkload,
    FINANCIAL,
    TPCC,
    TPCH,
    WEBSEARCH,
)

__all__ = [
    "BurstyWorkload",
    "COMMERCIAL_WORKLOADS",
    "ClosedLoopClients",
    "ClosedLoopResult",
    "CommercialWorkload",
    "FINANCIAL",
    "StreamingTrace",
    "SyntheticWorkload",
    "TPCC",
    "TPCH",
    "TRACE_FORMATS",
    "Trace",
    "TraceProfile",
    "convert_trace",
    "detect_trace_format",
    "iter_trace_requests",
    "load_trace",
    "open_trace_text",
    "profile_trace",
    "save_trace",
    "stat_trace",
    "write_trace_requests",
    "WEBSEARCH",
]
