"""Workload substrate: traces and generators.

* :mod:`repro.workloads.trace` — the in-memory trace container plus an
  ASCII on-disk format compatible in spirit with DiskSim's.
* :mod:`repro.workloads.synthetic` — the DiskSim-style synthetic
  generator used by the paper's §7.3 study (exponential inter-arrival;
  60 % reads, 20 % sequential).
* :mod:`repro.workloads.commercial` — seeded models of the four
  commercial traces (Financial, Websearch, TPC-C, TPC-H) calibrated to
  the published characteristics of Table 2.
"""

from repro.workloads.trace import Trace, load_trace, save_trace
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.closedloop import ClosedLoopClients, ClosedLoopResult
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.analysis import TraceProfile, profile_trace
from repro.workloads.commercial import (
    COMMERCIAL_WORKLOADS,
    CommercialWorkload,
    FINANCIAL,
    TPCC,
    TPCH,
    WEBSEARCH,
)

__all__ = [
    "BurstyWorkload",
    "COMMERCIAL_WORKLOADS",
    "ClosedLoopClients",
    "ClosedLoopResult",
    "CommercialWorkload",
    "FINANCIAL",
    "SyntheticWorkload",
    "TPCC",
    "TPCH",
    "Trace",
    "TraceProfile",
    "profile_trace",
    "WEBSEARCH",
    "load_trace",
    "save_trace",
]
