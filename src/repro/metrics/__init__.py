"""Measurement and reporting layer.

* :mod:`repro.metrics.collector` — attachable per-request collectors
  (response times, rotational latencies, percentiles).
* :mod:`repro.metrics.cdf` — the paper's response-time CDF buckets
  (5 … 200, 200+ ms) and rotational-latency PDF buckets (1 … 11 ms).
* :mod:`repro.metrics.report` — plain-text tables and bar charts for
  the benchmark harness output.
"""

from repro.metrics.cdf import (
    RESPONSE_TIME_EDGES_MS,
    ROTATIONAL_LATENCY_EDGES_MS,
    response_time_cdf,
    rotational_latency_pdf,
)
from repro.metrics.collector import RequestCollector
from repro.metrics.report import format_cdf_table, format_table, hbar

__all__ = [
    "RESPONSE_TIME_EDGES_MS",
    "ROTATIONAL_LATENCY_EDGES_MS",
    "RequestCollector",
    "format_cdf_table",
    "format_table",
    "hbar",
    "response_time_cdf",
    "rotational_latency_pdf",
]
