"""Plain-text rendering for benchmark-harness output.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and readable in a
terminal or a log file.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_cdf_table", "format_table", "hbar"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``float_format``; everything else via
    ``str``.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(widths):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(widths)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_cdf_table(
    edge_labels: Sequence[str],
    series: Sequence[tuple],
    title: Optional[str] = None,
) -> str:
    """Render CDF/PDF series side by side, one column per series.

    ``series`` is a sequence of ``(name, values)`` pairs where each
    ``values`` has one entry per edge label.
    """
    for name, values in series:
        if len(values) != len(edge_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(edge_labels)} edges"
            )
    headers = ["bucket_ms"] + [name for name, _ in series]
    rows = []
    for index, label in enumerate(edge_labels):
        rows.append(
            [label] + [values[index] for _, values in series]
        )
    return format_table(headers, rows, title=title)


def hbar(
    value: float,
    maximum: float,
    width: int = 40,
    fill: str = "#",
) -> str:
    """A fixed-width horizontal bar for quick visual comparison."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if maximum <= 0:
        return ""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    filled = int(round(width * min(value, maximum) / maximum))
    return fill * filled + "." * (width - filled)
