"""ASCII plotting: multi-series CDF/PDF charts for terminal output.

The benchmark harness reports numbers; these charts make the *shape*
visible in a terminal — the same visual comparison the paper's figures
provide.  Series are drawn as distinct glyphs on a shared grid; the
y-axis is the cumulative (or density) fraction, the x-axis the bucket
labels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_chart"]

#: Plot glyphs, assigned to series in order.
GLYPHS = "*o+x#@%&"


def ascii_chart(
    edge_labels: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    height: int = 12,
    title: Optional[str] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render series of per-bucket values as an ASCII chart.

    Parameters
    ----------
    edge_labels:
        X-axis labels, one per bucket.
    series:
        ``(name, values)`` pairs; each ``values`` has one entry per
        edge label.  At most ``len(GLYPHS)`` series.
    height:
        Number of character rows for the y-axis.
    y_max:
        Top of the y-axis; defaults to the max value observed (or 1.0
        for fraction-like data ≤ 1).
    """
    if not edge_labels:
        raise ValueError("need at least one edge label")
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(GLYPHS):
        raise ValueError(
            f"at most {len(GLYPHS)} series supported, got {len(series)}"
        )
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    for name, values in series:
        if len(values) != len(edge_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(edge_labels)} buckets"
            )

    peak = max(max(values) for _, values in series)
    if y_max is None:
        y_max = 1.0 if peak <= 1.0 else peak
    if y_max <= 0:
        y_max = 1.0

    column_width = max(max(len(label) for label in edge_labels) + 1, 4)
    width = column_width * len(edge_labels)
    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for series_index, (_, values) in enumerate(series):
        glyph = GLYPHS[series_index]
        for bucket, value in enumerate(values):
            level = min(
                height - 1,
                int(round((value / y_max) * (height - 1))),
            )
            row = height - 1 - level
            column = bucket * column_width + column_width // 2
            if grid[row][column] == " ":
                grid[row][column] = glyph
            else:
                # Collision: mark shared points distinctly.
                grid[row][column] = "="

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        fraction = (height - 1 - row_index) / (height - 1) * y_max
        lines.append(f"{fraction:5.2f} |" + "".join(row))
    lines.append("      +" + "-" * width)
    label_row = "       "
    for label in edge_labels:
        label_row += label.center(column_width)
    lines.append(label_row.rstrip())
    legend = "  ".join(
        f"{GLYPHS[index]}={name}" for index, (name, _) in enumerate(series)
    )
    lines.append(f"       [{legend}]  (= marks overlap)")
    return "\n".join(lines)
