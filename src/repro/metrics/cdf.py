"""The paper's distribution buckets.

Figure 2/4/5/7 response-time CDFs use bucket edges
``5, 10, 20, 40, 60, 90, 120, 150, 200`` ms plus a ``200+`` bucket;
Figure 5's rotational-latency PDFs use edges
``1, 3, 5, 7, 8, 9, 11`` ms.  These helpers build
:class:`~repro.sim.stats.BucketHistogram` objects with exactly those
edges.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.sim.stats import BucketHistogram

__all__ = [
    "RESPONSE_TIME_EDGES_MS",
    "ROTATIONAL_LATENCY_EDGES_MS",
    "response_time_cdf",
    "rotational_latency_pdf",
]

#: Response-time bucket edges used by every CDF figure in the paper.
RESPONSE_TIME_EDGES_MS: Sequence[float] = (
    5, 10, 20, 40, 60, 90, 120, 150, 200,
)

#: Rotational-latency bucket edges of the paper's Figure 5 PDFs.
ROTATIONAL_LATENCY_EDGES_MS: Sequence[float] = (1, 3, 5, 7, 8, 9, 11)


def response_time_cdf(response_times_ms: Iterable[float]) -> List[float]:
    """Cumulative fractions at the paper's response-time edges.

    Returns one value per bucket (the last is always 1.0 and
    corresponds to ``200+``).
    """
    histogram = BucketHistogram(list(RESPONSE_TIME_EDGES_MS))
    histogram.extend(response_times_ms)
    return histogram.cdf()


def rotational_latency_pdf(latencies_ms: Iterable[float]) -> List[float]:
    """Probability mass at the paper's rotational-latency edges."""
    histogram = BucketHistogram(list(ROTATIONAL_LATENCY_EDGES_MS))
    histogram.extend(latencies_ms)
    return histogram.pdf()
