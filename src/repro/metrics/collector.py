"""Per-request measurement collection.

A :class:`RequestCollector` subscribes to a drive's or array's
``on_complete`` hook and accumulates the distributions the paper
reports: response times (CDFs, percentiles), rotational latencies
(PDFs), seek times, and cache behaviour.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional

from repro.disk.request import IORequest
from repro.metrics.cdf import (
    RESPONSE_TIME_EDGES_MS,
    ROTATIONAL_LATENCY_EDGES_MS,
)
from repro.sim.stats import BucketHistogram, OnlineStats, percentile

__all__ = ["RequestCollector"]


class RequestCollector:
    """Accumulates per-request measurements from completion callbacks.

    Attach with ``drive.on_complete.append(collector)`` (the instance
    is callable) or pass completed requests to :meth:`record` manually.
    """

    def __init__(self, keep_samples: bool = True):
        self.keep_samples = keep_samples
        self.response_times: List[float] = []
        self.rotational_latencies: List[float] = []
        self.seek_times: List[float] = []
        self.response_stats = OnlineStats()
        self.rotational_stats = OnlineStats()
        self.seek_stats = OnlineStats()
        self.response_histogram = BucketHistogram(
            list(RESPONSE_TIME_EDGES_MS)
        )
        self.rotational_histogram = BucketHistogram(
            list(ROTATIONAL_LATENCY_EDGES_MS)
        )
        self.completed = 0
        self.cache_hits = 0
        self.reads = 0
        self.nonzero_seeks = 0

    def __call__(self, request: IORequest) -> None:
        self.record(request)

    def record(self, request: IORequest) -> None:
        # One record() per completed request is the collector's whole
        # hot path; the Welford and histogram updates are inlined with
        # the exact operation order of OnlineStats.add and
        # BucketHistogram.add so merged/streamed results stay
        # bit-identical to the method-call path.
        # ``request.response_time`` inlined (completion - arrival): the
        # property's not-yet-complete guard costs a frame per request
        # and completion hooks only ever see completed requests.
        response = request.completion_time - request.arrival_time
        self.completed += 1
        stats = self.response_stats
        stats.count = count = stats.count + 1
        stats.total += response
        delta = response - stats._mean
        stats._mean = mean = stats._mean + delta / count
        stats._m2 += delta * (response - mean)
        if response < stats.minimum:
            stats.minimum = response
        if response > stats.maximum:
            stats.maximum = response
        histogram = self.response_histogram
        histogram.counts[bisect_left(histogram.edges, response)] += 1
        histogram.total += 1
        if request.is_read:
            self.reads += 1
        if request.cache_hit:
            self.cache_hits += 1
        else:
            rotational = request.rotational_latency
            seek = request.seek_time
            stats = self.rotational_stats
            stats.count = count = stats.count + 1
            stats.total += rotational
            delta = rotational - stats._mean
            stats._mean = mean = stats._mean + delta / count
            stats._m2 += delta * (rotational - mean)
            if rotational < stats.minimum:
                stats.minimum = rotational
            if rotational > stats.maximum:
                stats.maximum = rotational
            histogram = self.rotational_histogram
            histogram.counts[bisect_left(histogram.edges, rotational)] += 1
            histogram.total += 1
            stats = self.seek_stats
            stats.count = count = stats.count + 1
            stats.total += seek
            delta = seek - stats._mean
            stats._mean = mean = stats._mean + delta / count
            stats._m2 += delta * (seek - mean)
            if seek < stats.minimum:
                stats.minimum = seek
            if seek > stats.maximum:
                stats.maximum = seek
            if seek > 0.0:
                self.nonzero_seeks += 1
            if self.keep_samples:
                self.rotational_latencies.append(rotational)
                self.seek_times.append(seek)
        if self.keep_samples:
            self.response_times.append(response)

    def merge(self, other: "RequestCollector") -> "RequestCollector":
        """Return a new collector combining this one and ``other``.

        Stats merge with the parallel Welford formula and histograms
        bucket-wise, so the result is what a single collector would
        have recorded over both request streams.  Samples concatenate
        only when *both* sides kept them; otherwise the merged
        collector has ``keep_samples=False`` and the same shape as any
        sample-free collector (histogram-backed summaries still work).
        Neither input is modified.
        """
        merged = RequestCollector(
            keep_samples=self.keep_samples and other.keep_samples
        )
        merged.response_stats = self.response_stats.merge(
            other.response_stats
        )
        merged.rotational_stats = self.rotational_stats.merge(
            other.rotational_stats
        )
        merged.seek_stats = self.seek_stats.merge(other.seek_stats)
        merged.response_histogram = self.response_histogram.merge(
            other.response_histogram
        )
        merged.rotational_histogram = self.rotational_histogram.merge(
            other.rotational_histogram
        )
        merged.completed = self.completed + other.completed
        merged.cache_hits = self.cache_hits + other.cache_hits
        merged.reads = self.reads + other.reads
        merged.nonzero_seeks = self.nonzero_seeks + other.nonzero_seeks
        if merged.keep_samples:
            merged.response_times = (
                self.response_times + other.response_times
            )
            merged.rotational_latencies = (
                self.rotational_latencies + other.rotational_latencies
            )
            merged.seek_times = self.seek_times + other.seek_times
        return merged

    # -- summaries --------------------------------------------------------
    def response_cdf(self) -> List[float]:
        """Cumulative fractions at the paper's response-time edges."""
        return self.response_histogram.cdf()

    def rotational_pdf(self) -> List[float]:
        """Probability mass at the paper's rotational-latency edges."""
        return self.rotational_histogram.pdf()

    def response_percentile(self, q: float) -> float:
        """Exact percentile (requires ``keep_samples=True``)."""
        if not self.keep_samples:
            raise ValueError("samples were not kept; cannot compute exactly")
        return percentile(self.response_times, q)

    @property
    def mean_response_ms(self) -> float:
        return self.response_stats.mean

    @property
    def mean_rotational_ms(self) -> float:
        return self.rotational_stats.mean

    @property
    def mean_seek_ms(self) -> float:
        return self.seek_stats.mean

    @property
    def nonzero_seek_fraction(self) -> float:
        media = self.completed - self.cache_hits
        return self.nonzero_seeks / media if media else 0.0

    def fraction_within(self, threshold_ms: float) -> float:
        """Fraction of responses at or below ``threshold_ms``.

        Works from retained samples when available, else from the
        histogram edge closest below the threshold.
        """
        if self.completed == 0:
            return 0.0
        if self.keep_samples:
            within = sum(
                1 for value in self.response_times if value <= threshold_ms
            )
            return within / len(self.response_times)
        cdf = self.response_histogram.cdf()
        best = 0.0
        for edge, value in zip(self.response_histogram.edges, cdf):
            if edge <= threshold_ms:
                best = value
        return best

    def summary(self) -> dict:
        summary = {
            "completed": self.completed,
            "mean_response_ms": self.mean_response_ms,
            "max_response_ms": (
                self.response_stats.maximum if self.completed else 0.0
            ),
            "mean_rotational_ms": self.mean_rotational_ms,
            "mean_seek_ms": self.mean_seek_ms,
            "cache_hit_fraction": (
                self.cache_hits / self.completed if self.completed else 0.0
            ),
        }
        if self.keep_samples and self.response_times:
            summary["p90_response_ms"] = self.response_percentile(90)
        return summary
