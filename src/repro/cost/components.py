"""Component cost data (paper Table 9a).

Per-component supply prices (US dollars, volume basis) obtained by the
paper's authors from component manufacturers, together with the
multiplicity rules that roll them up into whole-drive material costs
for a four-platter drive with ``k`` actuators.  The multiplicities are
chosen to reproduce the paper's own arithmetic exactly:

* media scales with platters; spindle motor and controller are fixed;
* VCM, pivot bearing and preamplifier scale with actuators;
* heads scale with ``2 × platters × actuators`` (every surface gets a
  head on every assembly);
* head suspensions scale at 4 per actuator (the paper's Table 9a rate);
* the motor driver is affine in actuators — a spindle-driver base plus
  a per-VCM-driver increment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = [
    "COMPONENT_COSTS",
    "ComponentCost",
    "CostRange",
    "drive_material_cost",
]


@dataclass(frozen=True)
class CostRange:
    """A low–high price range in US dollars."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(
                f"need 0 <= low <= high, got {self.low}/{self.high}"
            )

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __add__(self, other: "CostRange") -> "CostRange":
        return CostRange(self.low + other.low, self.high + other.high)

    def __mul__(self, factor: float) -> "CostRange":
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return CostRange(self.low * factor, self.high * factor)

    __rmul__ = __mul__

    def __str__(self) -> str:
        return f"${self.low:.1f}-${self.high:.1f}"

    @classmethod
    def zero(cls) -> "CostRange":
        return cls(0.0, 0.0)


@dataclass(frozen=True)
class ComponentCost:
    """One Table-9a row: unit price plus its multiplicity rule.

    ``count(platters, actuators)`` returns how many units a drive
    needs; ``extra(actuators)`` adds any affine correction (used only
    by the motor driver, whose per-actuator increment differs from its
    unit price).
    """

    name: str
    unit: CostRange
    count: Callable[[int, int], float]
    extra: Callable[[int], CostRange] = lambda actuators: CostRange.zero()

    def drive_cost(self, platters: int, actuators: int) -> CostRange:
        return self.unit * self.count(platters, actuators) + self.extra(
            actuators
        )


def _motor_driver_extra(actuators: int) -> CostRange:
    # Base spindle-driver cost (2, 2) + per-actuator VCM-driver
    # increment (1.5, 2): k=1 ⇒ 3.5–4, k=2 ⇒ 5–6, k=4 ⇒ 8–10 (Table 9a).
    return CostRange(2.0, 2.0) + CostRange(1.5, 2.0) * actuators


#: Table 9a, in presentation order.
COMPONENT_COSTS: List[ComponentCost] = [
    ComponentCost(
        "media", CostRange(6.0, 7.0), lambda platters, actuators: platters
    ),
    ComponentCost(
        "spindle_motor", CostRange(5.0, 10.0), lambda platters, actuators: 1
    ),
    ComponentCost(
        "voice_coil_motor",
        CostRange(1.0, 2.0),
        lambda platters, actuators: actuators,
    ),
    ComponentCost(
        "head_suspension",
        CostRange(0.50, 0.90),
        lambda platters, actuators: 4 * actuators,
    ),
    ComponentCost(
        "head",
        CostRange(3.0, 3.0),
        lambda platters, actuators: 2 * platters * actuators,
    ),
    ComponentCost(
        "pivot_bearing",
        CostRange(3.0, 3.0),
        lambda platters, actuators: actuators,
    ),
    ComponentCost(
        "disk_controller",
        CostRange(4.0, 5.0),
        lambda platters, actuators: 1,
    ),
    ComponentCost(
        "motor_driver",
        CostRange(0.0, 0.0),
        lambda platters, actuators: 0,
        extra=_motor_driver_extra,
    ),
    ComponentCost(
        "preamplifier",
        CostRange(1.2, 1.2),
        lambda platters, actuators: actuators,
    ),
]


def drive_material_cost(
    platters: int = 4, actuators: int = 1
) -> CostRange:
    """Total material cost of one drive (Table 9a bottom row).

    For a four-platter drive this reproduces the paper's totals:
    $67.7–80.8 conventional, $100.4–116.6 for two actuators,
    $165.8–188.2 for four.
    """
    if platters <= 0:
        raise ValueError(f"platters must be positive, got {platters}")
    if actuators <= 0:
        raise ValueError(f"actuators must be positive, got {actuators}")
    total = CostRange.zero()
    for component in COMPONENT_COSTS:
        total = total + component.drive_cost(platters, actuators)
    return total


def cost_breakdown(
    platters: int = 4, actuators: int = 1
) -> Dict[str, CostRange]:
    """Per-component costs for one drive configuration."""
    return {
        component.name: component.drive_cost(platters, actuators)
        for component in COMPONENT_COSTS
    }
