"""Iso-performance cost comparison (paper Figure 9b).

The §7.3 array study found three storage configurations that deliver
equivalent performance: four conventional drives, two 2-actuator
drives, and one 4-actuator drive.  This module prices those
configurations from the Table-9a material costs and reports the
relative savings the paper highlights (≈27 % for the 2-actuator pair,
≈40 % for the single 4-actuator drive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cost.components import CostRange, drive_material_cost

__all__ = ["ConfigurationCost", "iso_performance_comparison"]

#: The iso-performance configurations of Figure 9b:
#: (label, drive count, actuators per drive).
ISO_PERFORMANCE_CONFIGS: Sequence[Tuple[str, int, int]] = (
    ("4x conventional", 4, 1),
    ("2x 2-actuator", 2, 2),
    ("1x 4-actuator", 1, 4),
)


@dataclass(frozen=True)
class ConfigurationCost:
    """Priced storage configuration."""

    label: str
    drives: int
    actuators_per_drive: int
    per_drive: CostRange
    total: CostRange

    @property
    def mean_total(self) -> float:
        return self.total.mean

    def savings_vs(self, baseline: "ConfigurationCost") -> float:
        """Fractional mean-cost saving relative to ``baseline``."""
        if baseline.mean_total <= 0:
            raise ValueError("baseline cost must be positive")
        return 1.0 - self.mean_total / baseline.mean_total


def configuration_cost(
    label: str, drives: int, actuators_per_drive: int, platters: int = 4
) -> ConfigurationCost:
    if drives <= 0:
        raise ValueError(f"drives must be positive, got {drives}")
    per_drive = drive_material_cost(
        platters=platters, actuators=actuators_per_drive
    )
    return ConfigurationCost(
        label=label,
        drives=drives,
        actuators_per_drive=actuators_per_drive,
        per_drive=per_drive,
        total=per_drive * drives,
    )


def iso_performance_comparison(
    platters: int = 4,
    configs: Sequence[Tuple[str, int, int]] = ISO_PERFORMANCE_CONFIGS,
) -> List[ConfigurationCost]:
    """Price the iso-performance configurations (Figure 9b).

    The first configuration is the conventional baseline the savings
    are measured against.
    """
    return [
        configuration_cost(label, drives, actuators, platters=platters)
        for label, drives, actuators in configs
    ]
