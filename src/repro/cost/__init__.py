"""Cost-benefit analysis of intra-disk parallel drives (paper §9).

* :mod:`repro.cost.components` — the published component cost table
  (Table 9a), encoded as data with the per-actuator multiplicities.
* :mod:`repro.cost.analysis` — drive cost roll-ups and the
  iso-performance configuration comparison (Figure 9b).
"""

from repro.cost.components import (
    COMPONENT_COSTS,
    ComponentCost,
    CostRange,
    drive_material_cost,
)
from repro.cost.analysis import (
    ConfigurationCost,
    iso_performance_comparison,
)

__all__ = [
    "COMPONENT_COSTS",
    "ComponentCost",
    "ConfigurationCost",
    "CostRange",
    "drive_material_cost",
    "iso_performance_comparison",
]
