"""Peak-power / thermal-envelope analysis (paper §7.2).

Peak power matters to the drive designer, who "has to design the drive
to operate within a certain power/thermal envelope for reliability
purposes".  The base HC-SD-SA(n) design's restriction that only one
arm assembly moves at a time is exactly what keeps its *operating*
peak at the conventional drive's level even though the hardware could
draw far more (Table 1's 34 W worst case with all four VCMs active).

This module makes that argument executable: an envelope per form
factor, and a check of a drive design's operating peak — parameterised
by how many VCMs its service policy allows to move simultaneously —
against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.disk.specs import DriveSpec
from repro.power.models import DrivePowerModel

__all__ = [
    "EnvelopeCheck",
    "ThermalEnvelope",
    "check_design",
    "CONVENTIONAL_35IN_ENVELOPE",
]


@dataclass(frozen=True)
class ThermalEnvelope:
    """A sustained-power budget for one drive bay / form factor."""

    name: str
    max_watts: float

    def __post_init__(self) -> None:
        if self.max_watts <= 0:
            raise ValueError(
                f"max_watts must be positive, got {self.max_watts}"
            )

    def admits(self, watts: float) -> bool:
        return watts <= self.max_watts


#: A 3.5-inch server bay engineered for a conventional drive of the
#: Barracuda-ES class: its own peak (13 W) plus a small margin.
CONVENTIONAL_35IN_ENVELOPE = ThermalEnvelope(
    name="3.5in-server-bay", max_watts=15.0
)


@dataclass
class EnvelopeCheck:
    """Result of checking one design against one envelope."""

    design: str
    envelope: ThermalEnvelope
    operating_peak_watts: float
    hardware_peak_watts: float
    fits: bool
    #: Largest simultaneous-VCM count the envelope would admit.
    max_admissible_vcms: int

    def summary(self) -> str:
        verdict = "fits" if self.fits else "EXCEEDS"
        return (
            f"{self.design}: operating peak "
            f"{self.operating_peak_watts:.1f} W {verdict} "
            f"{self.envelope.name} ({self.envelope.max_watts:.1f} W); "
            f"hardware worst case {self.hardware_peak_watts:.1f} W; "
            f"envelope admits {self.max_admissible_vcms} concurrent VCM(s)"
        )


def check_design(
    spec: DriveSpec,
    max_concurrent_vcms: int = 1,
    envelope: Optional[ThermalEnvelope] = None,
) -> EnvelopeCheck:
    """Check a drive design's operating peak against an envelope.

    ``max_concurrent_vcms`` encodes the service policy: 1 for the base
    SA(n) design (single arm in motion), up to ``spec.actuators`` for
    the MA relaxation.
    """
    if max_concurrent_vcms < 0:
        raise ValueError(
            f"max_concurrent_vcms must be >= 0, got {max_concurrent_vcms}"
        )
    if max_concurrent_vcms > spec.actuators:
        raise ValueError(
            f"policy allows {max_concurrent_vcms} concurrent VCMs but the "
            f"design has only {spec.actuators} assemblies"
        )
    envelope = envelope or CONVENTIONAL_35IN_ENVELOPE
    model = DrivePowerModel.from_spec(spec)
    operating_peak = model.seek_watts(max_concurrent_vcms)
    hardware_peak = model.peak_watts()
    headroom = envelope.max_watts - model.idle_watts
    if model.vcm_watts > 0:
        admissible = int(headroom // model.vcm_watts)
    else:
        admissible = spec.actuators
    admissible = max(0, min(admissible, spec.actuators))
    return EnvelopeCheck(
        design=spec.name,
        envelope=envelope,
        operating_peak_watts=operating_peak,
        hardware_peak_watts=hardware_peak,
        fits=envelope.admits(operating_peak),
        max_admissible_vcms=admissible,
    )
