"""Disk power modelling (the paper's augmentation of DiskSim [44]).

* :mod:`repro.power.models` — component power models: spindle motor
  (∝ diameter^4.6 · RPM^2.8 · platters, per the paper's citation [18]),
  voice-coil motor, electronics, calibrated to the paper's Table 1
  (Barracuda-class peak 13 W; 4-actuator variant 34 W).
* :mod:`repro.power.accounting` — per-mode energy accounting over a
  simulation run (idle / seek / rotational latency / transfer), the
  breakdown of the paper's Figures 3 and 6.
"""

from repro.power.models import (
    DrivePowerModel,
    SPM_DIAMETER_EXPONENT,
    SPM_RPM_EXPONENT,
)
from repro.power.accounting import PowerBreakdown, array_power, drive_power
from repro.power.thermal import (
    CONVENTIONAL_35IN_ENVELOPE,
    EnvelopeCheck,
    ThermalEnvelope,
    check_design,
)

__all__ = [
    "CONVENTIONAL_35IN_ENVELOPE",
    "DrivePowerModel",
    "EnvelopeCheck",
    "ThermalEnvelope",
    "check_design",
    "PowerBreakdown",
    "SPM_DIAMETER_EXPONENT",
    "SPM_RPM_EXPONENT",
    "array_power",
    "drive_power",
]
