"""Per-mode energy accounting over a simulation run.

The paper's Figures 3 and 6 report *average power* stacked by the four
disk operating modes: idle, seek, rotational latency, and data
transfer.  The accountant combines a drive's mode residencies
(:class:`~repro.disk.drive.DriveStats`) with its power model into that
breakdown:

    avg_power = Σ_mode  P_mode · t_mode / t_elapsed

For the serialised drive models the mode times partition the run
exactly.  The overlapped extensions can spend more summed arm-seek time
than wall-clock time (several VCMs moving at once); the accountant then
charges VCM energy per active arm while normalising the base-power
residencies, so energy remains conserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.disk.drive import ConventionalDrive, DriveStats
from repro.power.models import DrivePowerModel

__all__ = ["PowerBreakdown", "array_power", "drive_power"]


@dataclass
class PowerBreakdown:
    """Average power (Watts) attributed to each operating mode."""

    idle_watts: float
    seek_watts: float
    rotational_watts: float
    transfer_watts: float

    @property
    def total_watts(self) -> float:
        return (
            self.idle_watts
            + self.seek_watts
            + self.rotational_watts
            + self.transfer_watts
        )

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            self.idle_watts + other.idle_watts,
            self.seek_watts + other.seek_watts,
            self.rotational_watts + other.rotational_watts,
            self.transfer_watts + other.transfer_watts,
        )

    def as_dict(self) -> dict:
        return {
            "idle": self.idle_watts,
            "seek": self.seek_watts,
            "rotational": self.rotational_watts,
            "transfer": self.transfer_watts,
            "total": self.total_watts,
        }

    @classmethod
    def zero(cls) -> "PowerBreakdown":
        return cls(0.0, 0.0, 0.0, 0.0)

    @classmethod
    def from_stats(
        cls,
        stats: DriveStats,
        elapsed_ms: float,
        model: DrivePowerModel,
    ) -> "PowerBreakdown":
        """Average power over ``elapsed_ms`` given mode residencies."""
        if elapsed_ms <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed_ms}")
        seek_ms = stats.seek_ms
        rotational_ms = stats.rotational_latency_ms
        transfer_ms = stats.transfer_ms
        busy_ms = seek_ms + rotational_ms + transfer_ms
        # Overlapped designs can accumulate more summed mode time than
        # wall time; normalise residencies for the base power while
        # charging VCM energy for the full summed seek time.
        vcm_energy_mj = model.vcm_watts * seek_ms
        if busy_ms > elapsed_ms:
            scale = elapsed_ms / busy_ms
            seek_ms *= scale
            rotational_ms *= scale
            transfer_ms *= scale
            busy_ms = elapsed_ms
        idle_ms = elapsed_ms - busy_ms
        base = model.idle_watts
        return cls(
            idle_watts=base * idle_ms / elapsed_ms,
            seek_watts=(base * seek_ms + vcm_energy_mj) / elapsed_ms,
            rotational_watts=model.rotational_watts
            * rotational_ms
            / elapsed_ms,
            transfer_watts=(
                model.transfer_watts * transfer_ms / elapsed_ms
            ),
        )


def drive_power(
    drive: ConventionalDrive,
    elapsed_ms: float,
    model: Optional[DrivePowerModel] = None,
) -> PowerBreakdown:
    """Average-power breakdown for one drive over a run."""
    model = model or DrivePowerModel.from_spec(drive.spec)
    return PowerBreakdown.from_stats(drive.stats, elapsed_ms, model)


def array_power(
    drives: Iterable[ConventionalDrive], elapsed_ms: float
) -> PowerBreakdown:
    """Summed breakdown across the drives of a storage system.

    This is the quantity of the paper's Figure 3: total storage-system
    average power, stacked by mode.
    """
    total = PowerBreakdown.zero()
    for drive in drives:
        total = total + drive_power(drive, elapsed_ms)
    return total
