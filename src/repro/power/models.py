"""Component power models for disk drives.

The paper's power analysis rests on three scaling facts (from its
reference [18], Sato et al.):

* spindle power grows with roughly the **4.6th power of platter
  diameter**,
* roughly **cubically with RPM** (we use 2.8, within the cubic range
  the paper quotes), and
* **linearly with platter count**;

plus the calibration points of Table 1: a modern Barracuda-ES-class
drive peaks at **13 W**, and the hypothetical 4-actuator extension at
**34 W** with all four VCMs active.  Solving those two points gives a
7 W active VCM and 6 W for spindle + electronics, which this module
uses as its anchors at (3.7", 7200 RPM, 4 platters).

Old mainframe drives (IBM 3380: 6 600 W) had dramatically less
efficient motors and electronics; a per-spec ``technology_factor``
covers that era gap so the Table-1 comparison reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.specs import DriveSpec

__all__ = [
    "DrivePowerModel",
    "SPM_DIAMETER_EXPONENT",
    "SPM_RPM_EXPONENT",
    "VCM_DIAMETER_EXPONENT",
]

#: Spindle power ∝ diameter^4.6 (paper §3, citing [18]).
SPM_DIAMETER_EXPONENT = 4.6
#: Spindle power ≈ cubic in RPM; 2.8 is the standard fitted exponent.
SPM_RPM_EXPONENT = 2.8
#: VCM power grows with arm/platter size; windage+inertia give ≈ d^2.5.
VCM_DIAMETER_EXPONENT = 2.5

# Calibration anchors at the Barracuda-ES operating point
# (3.7 inches, 7200 RPM, 4 platters): peak = SPM + electronics + VCM.
_REFERENCE_DIAMETER_IN = 3.7
_REFERENCE_RPM = 7200.0
_REFERENCE_PLATTERS = 4
_SPM_REFERENCE_W = 4.0
_ELECTRONICS_W = 2.0
_VCM_REFERENCE_W = 7.0
#: Extra electronics/channel power while data streams over the channel.
_TRANSFER_EXTRA_W = 1.5


@dataclass(frozen=True)
class DrivePowerModel:
    """Per-component power for one drive design.

    All values in Watts.  ``vcm_watts`` is the power of *one* active
    voice-coil motor; a multi-actuator drive multiplies by the number
    of assemblies simultaneously in motion.
    """

    spm_watts: float
    vcm_watts: float
    electronics_watts: float
    transfer_extra_watts: float
    actuators: int

    @classmethod
    def from_spec(cls, spec: DriveSpec) -> "DrivePowerModel":
        """Derive the model from a drive specification."""
        diameter_ratio = spec.diameter_inches / _REFERENCE_DIAMETER_IN
        rpm_ratio = spec.rpm / _REFERENCE_RPM
        spm = (
            _SPM_REFERENCE_W
            * spec.technology_factor
            * diameter_ratio ** SPM_DIAMETER_EXPONENT
            * rpm_ratio ** SPM_RPM_EXPONENT
            * (spec.platters / _REFERENCE_PLATTERS)
        )
        vcm = (
            _VCM_REFERENCE_W
            * spec.technology_factor
            * diameter_ratio ** VCM_DIAMETER_EXPONENT
        )
        electronics = _ELECTRONICS_W * spec.technology_factor
        return cls(
            spm_watts=spm,
            vcm_watts=vcm,
            electronics_watts=electronics,
            transfer_extra_watts=_TRANSFER_EXTRA_W,
            actuators=spec.actuators,
        )

    # -- mode powers ---------------------------------------------------------
    @property
    def idle_watts(self) -> float:
        """Platters spinning, arms parked: SPM + electronics."""
        return self.spm_watts + self.electronics_watts

    @property
    def rotational_watts(self) -> float:
        """During rotational-latency waits the arms are stationary, so
        the VCM draws nothing — numerically the idle power (paper
        §7.2, TPC-C discussion)."""
        return self.idle_watts

    def seek_watts(self, active_vcms: int = 1) -> float:
        """Idle power plus one VCM per assembly in motion."""
        if active_vcms < 0:
            raise ValueError(f"active_vcms must be >= 0, got {active_vcms}")
        return self.idle_watts + self.vcm_watts * active_vcms

    @property
    def transfer_watts(self) -> float:
        return self.idle_watts + self.transfer_extra_watts

    def peak_watts(self, active_vcms: int = None) -> float:
        """Worst case: every assembly's VCM in motion at once.

        For the Barracuda anchor this reproduces Table 1 exactly:
        13 W conventional, 34 W with four actuators.
        """
        if active_vcms is None:
            active_vcms = self.actuators
        return self.seek_watts(active_vcms)
