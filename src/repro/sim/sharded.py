"""Conservative parallel discrete-event simulation of one experiment.

``ShardedEngine`` partitions a :class:`~repro.raid.array.DiskArray`
simulation into one engine shard per drive group.  Each shard is a
forked worker process that inherits the fully constructed environment
and simulates *only its own drives* — generators, seek/rotation
tables, spindle phases, armed faults and all — while the parent keeps
the controller: the producer, the array's mapping/completion logic,
retry policies, fault replay and rebuild.  The two sides exchange
events over per-shard queues and the controller merges completions
deterministically, so the figures are bit-identical to the serial
kernel (see ``docs/parallelism.md`` for the full derivation).

Protocol sketch
---------------

* **Lookahead.**  ``L = min(drive.min_service_ms())`` over the array:
  no request dispatched at ``t`` can complete before ``t + L`` (drive
  geometry gives a positive floor — controller overhead plus one
  sector over the bus or off the fastest zone).
* **Dispatch-time completion reports.**  Drives stamp every
  measurement field *at dispatch* (all phase durations are fixed
  then), so a shard can describe a completion — time, fields and all —
  the moment it is scheduled, before it fires.
* **Windows.**  The controller's window limit is
  ``min(pending-submission floors t+L, reported completion times)``.
  Everything at or below the limit is known, so reported completions
  up to the limit are injected into the controller schedule (ordered by
  ``(time, priority, seq)`` — completion time, then dispatch time,
  then submission sequence) and the controller drains its own events
  up to the limit in global time order.  Shards then advance to the
  limit; with feedback (retry resubmission, RAID-5 phase-1 writes,
  drive-failure aborts) a shard additionally *holds* before firing an
  unacknowledged completion, so controller reactions always reach it
  in its local future.
* **Run-ahead.**  Feedback-free runs (``array.needs_lockstep`` false)
  degenerate to two rounds: ship every submission, let all shards run
  to exhaustion in parallel at full serial-kernel speed, then inject
  and drain.  This is the speedup path for the paper's big RAID sweeps.

Workers are forked, never spawned: they must inherit the exact
pre-run state (spindle phases, RNG-free but counter-derived labels,
armed faults).  When ``fork`` is unavailable the caller falls back to
the serial kernel.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import metrics_for
from repro.sim.calqueue import CalendarQueue
from repro.sim.engine import NORMAL, URGENT, Environment, Event

__all__ = [
    "ShardedEngine",
    "conservative_lookahead",
    "shard_drive_groups",
    "sharding_available",
]

_INF = float("inf")


def sharding_available() -> bool:
    """True when fork-based shard workers can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_drive_groups(drive_count: int, shards: int) -> List[List[int]]:
    """Partition drive indices into ``shards`` striped groups.

    Striping (drive ``i`` goes to shard ``i % shards``) balances RAID
    workloads, where adjacent stripe units land on adjacent drives.
    """
    if drive_count < 1:
        raise ValueError(f"drive_count must be >= 1, got {drive_count}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, drive_count)
    return [list(range(s, drive_count, shards)) for s in range(shards)]


def conservative_lookahead(drives: Sequence) -> float:
    """The provable PDES lookahead for an array: min service floor."""
    lookahead = min(drive.min_service_ms() for drive in drives)
    if not lookahead > 0.0:
        raise ValueError(
            f"conservative lookahead must be positive, got {lookahead}"
        )
    return lookahead


# ---------------------------------------------------------------------------
# Controller-side proxies
# ---------------------------------------------------------------------------


class _ShardProxy:
    """Controller-side stand-in for a drive owned by a shard worker.

    Submissions and fault arming are validated against the *shadow*
    (the real drive object the worker forked from) and forwarded as
    cross-shard messages; everything else — label, spec, geometry,
    stats — delegates to the shadow, whose final state is copied back
    from the worker when the run finishes.
    """

    def __init__(self, engine: "ShardedEngine", shard: int, index: int,
                 shadow: Any):
        self._engine = engine
        self._shard = shard
        self._index = index
        self._shadow = shadow

    def submit(self, request: Any) -> Event:
        # Mirror ConventionalDrive.submit's eager capacity check so a
        # bad extent raises in the submitting frame, as serially.
        if request.lba + request.size > self._shadow.geometry.total_sectors:
            raise ValueError(
                f"{request} exceeds drive capacity "
                f"({self._shadow.geometry.total_sectors} sectors)"
            )
        return self._engine._submit(self._shard, self._index, request)

    def inject_media_error(
        self, attempts: int = 1, lba: Optional[int] = None
    ) -> None:
        # Same validation as the real drive, then forward; the worker
        # arms the fault (and counts it) at the same simulated instant.
        shadow = self._shadow
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if lba is not None and not (
            0 <= lba < shadow.geometry.total_sectors
        ):
            raise ValueError(
                f"lba {lba} outside [0, {shadow.geometry.total_sectors})"
            )
        self._engine._control(
            self._shard, self._index, ("media_error", attempts, lba)
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._shadow, name)


class _ShardArmProxy(_ShardProxy):
    """Proxy flavour for multi-actuator drives (``deconfigure_arm``).

    Defined as a subclass so ``hasattr(drive, "deconfigure_arm")`` duck
    checks (the fault injector's) resolve exactly as they would on the
    real drive class.
    """

    def deconfigure_arm(self, arm_id: int) -> None:
        shadow = self._shadow
        matches = [arm for arm in shadow.arms if arm.arm_id == arm_id]
        if not matches:
            raise ValueError(
                f"no arm with id {arm_id}; have "
                f"{[arm.arm_id for arm in shadow.arms]}"
            )
        arm = matches[0]
        if arm.failed:
            return
        if shadow.healthy_arm_count <= 1:
            raise ValueError(
                "cannot deconfigure the last healthy arm assembly"
            )
        # Update the shadow silently (no telemetry: the worker records
        # the event once) so controller-side guards — the injector's
        # healthy_arm_count check for a later failure — see live state.
        arm.failed = True
        self._engine._control(
            self._shard, self._index, ("deconfigure_arm", arm_id)
        )


# ---------------------------------------------------------------------------
# Shard worker (runs in a forked child process)
# ---------------------------------------------------------------------------


def _shard_worker_main(
    conn: Any,
    env: Environment,
    drives: List[Any],
    lockstep: bool,
) -> None:
    """Event loop of one shard: simulate ``drives``, nothing else.

    The worker inherits the pre-run environment by fork.  It first
    narrows the inherited schedule to its own drives' serve loops, then
    answers ``advance`` rounds: apply submissions/control ops shipped
    by the controller, run the local schedule up to the window bound,
    and report every *scheduled* completion (known in full at
    dispatch).  In lockstep mode it refuses to fire a completion the
    controller has not acknowledged, so controller feedback can never
    arrive in the shard's local past.
    """
    try:
        # -- narrow the inherited schedule to this shard's drives.
        # At fork time nothing has run: the schedule holds only the
        # Initialize events of processes created before the run (drive
        # serve loops, the trace producer, fault replay).  Keep our
        # serve loops; the controller runs everything else.  The
        # narrowed schedule is rebuilt as the same queue kind the
        # controller runs — sharded and serial share one scheduler
        # implementation (repro.sim.calqueue).
        servers = {drive._server for drive in drives}
        kept = [
            entry
            for entry in env._queue.entries()
            if entry[3].callbacks
            and getattr(entry[3].callbacks[0], "__self__", None) in servers
        ]
        env._queue = type(env._queue)(kept)
        env._calendar = (
            env._queue if type(env._queue) is CalendarQueue else None
        )
        env._stale_events = 0

        # -- per-process observability: fresh span/telemetry state, and
        # re-wire the construction-time cache counters which captured
        # Counter objects from the pre-fork registry.
        tracer = drives[0].tracer
        if tracer.enabled:
            tracer.clear()
            for drive in drives:
                drive._wire_cache_telemetry()

        drive_by_index: Dict[int, Any] = {}
        index_of: Dict[int, int] = {}
        server_to_drive = {drive._server: drive for drive in drives}

        seq_of: Dict[int, int] = {}       # request_id -> submission seq
        consumed: List[int] = []          # seqs whose submission fired
        scheduled: List[Tuple] = []       # completion reports this round
        held: Dict[Any, Tuple[float, int]] = {}  # drive -> (time, seq)
        eid_base = env._eid

        def make_listener(drive: Any) -> Callable:
            def listener(request: Any, total: float) -> None:
                seq = seq_of.pop(request.request_id, None)
                if seq is None:
                    return
                dispatch = env._now
                completes = dispatch + total
                scheduled.append((
                    seq,
                    completes,
                    dispatch,
                    request.seek_time,
                    request.rotational_latency,
                    request.transfer_time,
                    request.cache_hit,
                    request.arm_id,
                    request.media_error,
                    request.retries,
                ))
                if lockstep:
                    held[drive] = (completes, seq)
            return listener

        for drive in drives:
            drive.dispatch_listener = make_listener(drive)

        def apply_submission(seq: int, index: int, request: Any,
                             at: float) -> None:
            drive = drive_by_index[index]

            def fire(_event: Event, d=drive, r=request, s=seq) -> None:
                consumed.append(s)
                d.submit(r)

            event = Event(env)
            event._ok = True
            event.callbacks.append(fire)
            env.schedule_at(event, at)

        def apply_control(index: int, op: Tuple, at: float) -> None:
            drive = drive_by_index[index]

            def fire(_event: Event, d=drive, o=op) -> None:
                if o[0] == "media_error":
                    d.inject_media_error(attempts=o[1], lba=o[2])
                elif o[0] == "deconfigure_arm":
                    d.deconfigure_arm(o[1])
                else:  # pragma: no cover - protocol safety
                    raise RuntimeError(f"unknown control op {o[0]!r}")

            event = Event(env)
            event._ok = True
            event.callbacks.append(fire)
            # Urgent: state changes apply before same-instant dispatches,
            # matching the serial replay process firing first.
            env.schedule_at(event, at, URGENT)

        def advance(bound: float) -> None:
            queue = env._queue
            if not lockstep:
                env.run_bounded(bound)
                return
            while queue:
                head_time = queue.peek_time()
                if head_time > bound:
                    break
                if held:
                    hold_min = min(at for at, _seq in held.values())
                    if head_time >= hold_min:
                        # Only break for the held completion itself:
                        # same-time events scheduled before it still
                        # fire, exactly as serially.
                        waiter = queue.peek_event()._waiter
                        drive = server_to_drive.get(waiter)
                        if drive is not None:
                            hold = held.get(drive)
                            if hold is not None and head_time >= hold[0]:
                                break
                env.step()

        # -- handshake: learn our drive indices, then serve rounds.
        message = conn.recv()
        if message[0] != "bind":  # pragma: no cover - protocol safety
            raise RuntimeError(f"expected bind, got {message[0]!r}")
        for index, position in zip(message[1], range(len(drives))):
            drive_by_index[index] = drives[position]
            index_of[position] = index

        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "advance":
                _, bound, subs, controls, acks = message
                for seq in acks:
                    for drive, (at, held_seq) in list(held.items()):
                        if held_seq == seq:
                            del held[drive]
                            break
                for seq, index, request, at in subs:
                    seq_of[request.request_id] = seq
                    apply_submission(seq, index, request, at)
                for index, op, at in controls:
                    apply_control(index, op, at)
                advance(bound)
                idle = not env._queue and not held
                conn.send((
                    "report",
                    consumed,
                    scheduled,
                    idle,
                    env._now,
                    env._eid - eid_base,
                ))
                consumed = []
                scheduled = []
            elif kind == "finish":
                state = []
                for position, drive in enumerate(drives):
                    arms = getattr(drive, "arms", None)
                    arm_state = None
                    if arms is not None:
                        arm_state = [
                            (
                                arm.cylinder,
                                arm.busy_until,
                                arm.failed,
                                arm.requests_serviced,
                                arm.seek_time_ms,
                                arm.seeks,
                            )
                            for arm in arms
                        ]
                    state.append((
                        index_of[position],
                        drive.stats,
                        arm_state,
                        getattr(drive, "repositions", 0),
                    ))
                payload = tracer.payload() if tracer.enabled else None
                conn.send((
                    "done", state, payload, env._eid - eid_base, env._now
                ))
                return
            else:  # pragma: no cover - protocol safety
                raise RuntimeError(f"unknown message {kind!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Controller-side coordinator
# ---------------------------------------------------------------------------


class _Pending:
    """One submitted-but-not-yet-injected physical request."""

    __slots__ = ("seq", "shard", "index", "request", "completion",
                 "submitted", "state", "report")

    def __init__(self, seq, shard, index, request, completion, submitted):
        self.seq = seq
        self.shard = shard
        self.index = index
        self.request = request
        self.completion = completion
        self.submitted = submitted
        #: "shipped" -> "queued" (floor dropped) -> "scheduled".
        self.state = "shipped"
        self.report: Optional[Tuple] = None


class ShardedEngine:
    """Drive a ``DiskArray`` run across forked engine shards.

    Usage (what :func:`repro.experiments.runner.run_trace` does)::

        engine = ShardedEngine(env, system, shards=4)
        engine.run()          # replaces env.run(); blocks to completion

    The constructor only validates; ``run()`` forks the workers, swaps
    the array's member drives for cross-shard proxies, runs the window
    protocol to exhaustion, then restores the drives with their final
    worker-side state (stats, arm state, merged trace payloads) so
    everything downstream — power accounting, reliability reports,
    ``repro report`` — reads exactly what the serial kernel would have
    produced.
    """

    def __init__(self, env: Environment, system: Any, shards: int):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not system.drives:
            raise ValueError("sharded run needs at least one drive")
        if not sharding_available():
            raise RuntimeError(
                "sharded execution requires the fork start method; "
                "use the serial kernel on this platform"
            )
        self.env = env
        self.system = system
        self.groups = shard_drive_groups(len(system.drives), shards)
        self.shards = len(self.groups)
        self.lookahead = conservative_lookahead(system.drives)
        self.lockstep = bool(system.needs_lockstep)
        self.windows = 0
        self.window_stall_ms = 0.0
        self.backlog_peak = 0
        self.shard_events: List[int] = [0] * self.shards
        # Wall-clock metrics only: live metrics never touch simulated
        # time, so figures stay bit-identical with metrics on or off.
        self._metrics = metrics_for(env)
        self._seq = 0
        self._pending: Dict[int, _Pending] = {}
        self._scheduled: Dict[int, _Pending] = {}
        #: Per drive index: an injected completion time the shard has
        #: not yet confirmed firing.  A request queued behind it
        #: dispatches no earlier, so its (still unreported) completion
        #: is bounded below by this plus the lookahead — the floor
        #: that keeps the window sound between acknowledging a
        #: completion and receiving the follow-on dispatch report.
        #: Cleared when a report arrives for a window whose bound
        #: covered the completion: by then the shard has fired it and
        #: reported any dispatch it triggered.
        self._unresolved: Dict[int, float] = {}
        self._outbox_subs: List[List[Tuple]] = [[] for _ in self.groups]
        self._outbox_ctls: List[List[Tuple]] = [[] for _ in self.groups]
        self._outbox_acks: List[List[int]] = [[] for _ in self.groups]
        self._runahead_shipped = False
        self._shard_of_drive: Dict[int, int] = {
            index: shard
            for shard, group in enumerate(self.groups)
            for index in group
        }

    # -- proxy callbacks ----------------------------------------------------
    def _submit(self, shard: int, index: int, request: Any) -> Event:
        if self._runahead_shipped:
            # Run-ahead shipped the complete submission schedule in the
            # first window; a later submission means the controller
            # reacted to a completion in a run classified feedback-free.
            raise RuntimeError(
                "drive submission after the run-ahead window: this run "
                "needs lockstep but was classified feedback-free "
                "(is an external actor missing declare_external_feedback?)"
            )
        completion = Event(self.env)
        seq = self._seq
        self._seq += 1
        record = _Pending(
            seq, shard, index, request, completion, self.env._now
        )
        self._pending[seq] = record
        self._outbox_subs[shard].append(
            (seq, index, request, self.env._now)
        )
        return completion

    def _control(self, shard: int, index: int, op: Tuple) -> None:
        self._outbox_ctls[shard].append((index, op, self.env._now))

    # -- window protocol ----------------------------------------------------
    def _window_limit(self) -> float:
        """Everything below this time is known to the controller."""
        if not self.lockstep:
            # Run-ahead: with no feedback the window is unbounded —
            # the whole submission schedule ships at once and shards
            # run to exhaustion in parallel.
            return _INF
        limit = _INF
        lookahead = self.lookahead
        unresolved = self._unresolved
        for record in self._pending.values():
            if record.state == "shipped":
                # Not yet applied in the shard: it dispatches no
                # earlier than its submission time.
                floor = record.submitted + lookahead
            else:
                # Consumed but queued behind the drive's in-flight
                # request.  While that request's completion is still
                # unacknowledged it bounds the limit itself (it is in
                # the scheduled set); once injected, the queued
                # request dispatches at or after it, so the unresolved
                # injection time + L is the conservative floor until
                # the shard confirms the follow-on dispatch.
                at = unresolved.get(record.index)
                if at is None:
                    continue
                floor = at + lookahead
            if floor < limit:
                limit = floor
        for record in self._scheduled.values():
            if record.report[1] < limit:
                limit = record.report[1]
        return limit

    def _inject(self, record: _Pending) -> None:
        """Materialise one shard completion in the controller schedule."""
        (_seq, completes, _dispatch, seek, rotation, transfer, cache_hit,
         arm_id, media_error, retries) = record.report
        request = record.request
        request.seek_time = seek
        request.rotational_latency = rotation
        request.transfer_time = transfer
        request.cache_hit = cache_hit
        request.arm_id = arm_id
        request.media_error = media_error
        request.retries = retries
        request.completion_time = completes
        completion = record.completion
        completion._ok = True
        completion._value = request
        # A fresh sequence number places the completion after events
        # already scheduled for the same instant — where the serial
        # kernel's completion timeout (scheduled at dispatch) sits
        # relative to work created later at that time.
        self.env.schedule_at(completion, completes, NORMAL)
        self._outbox_acks[record.shard].append(record.seq)
        self._unresolved[record.index] = completes
        del self._scheduled[record.seq]

    def _inject_ready(self) -> float:
        """Inject every known-safe completion; return the final limit."""
        while True:
            limit = self._window_limit()
            ready = [
                record
                for record in self._scheduled.values()
                if record.report[1] <= limit
            ]
            if not ready:
                return limit
            # Deterministic merge: completion time, then dispatch time,
            # then submission sequence — the serial kernel's order for
            # simultaneous completions (its completion timeouts take
            # event ids in dispatch order, and dispatches in submission
            # order).
            ready.sort(key=lambda r: (r.report[1], r.report[2], r.seq))
            for record in ready:
                self._inject(record)

    def _drain(self, limit: float) -> None:
        """Fire controller events up to ``limit`` in global time order.

        Proxy submissions created mid-drain add new lookahead floors,
        so the bound is re-evaluated as the queue advances; it can only
        tighten, and only above the time already reached.
        """
        env = self.env
        queue = env._queue
        seq_before = self._seq
        while queue and queue.peek_time() <= limit:
            env.step()
            if self._seq != seq_before:
                seq_before = self._seq
                fresh = self._window_limit()
                if fresh < limit:
                    limit = fresh

    def run(self) -> None:
        """Run the simulation to exhaustion across the shards."""
        env = self.env
        system = self.system
        self._eid_at_entry = env._eid
        context = multiprocessing.get_context("fork")
        workers: List[Any] = []
        channels: List[Any] = []
        # Fork first: workers must inherit the untouched pre-run state.
        for group in self.groups:
            drives = [system.drives[index] for index in group]
            parent_conn, child_conn = context.Pipe()
            worker = context.Process(
                target=_shard_worker_main,
                args=(child_conn, env, drives, self.lockstep),
                daemon=True,
            )
            worker.start()
            child_conn.close()
            workers.append(worker)
            channels.append(parent_conn)
        originals = list(system.drives)
        swapped: Dict[int, _ShardProxy] = {}
        try:
            for shard, group in enumerate(self.groups):
                channels[shard].send(("bind", group))
            for index, drive in enumerate(originals):
                proxy_class = (
                    _ShardArmProxy
                    if hasattr(drive, "deconfigure_arm")
                    else _ShardProxy
                )
                proxy = proxy_class(
                    self, self._shard_of_drive[index], index, drive
                )
                system.drives[index] = proxy
                swapped[index] = proxy
            self._rounds(channels)
            self._finish(channels, originals, swapped)
        finally:
            for index, proxy in swapped.items():
                if system.drives[index] is proxy:
                    system.drives[index] = originals[index]
            for conn in channels:
                conn.close()
            for worker in workers:
                worker.join(timeout=30.0)
                if worker.is_alive():  # pragma: no cover - safety net
                    worker.terminate()
                    worker.join(timeout=5.0)

    def _rounds(self, channels: List[Any]) -> None:
        env = self.env
        idle = [False] * self.shards
        high_water = env._now
        while True:
            limit = self._inject_ready()
            self._drain(limit)
            if env._now > high_water:
                high_water = env._now
            bound = self._window_limit()
            if (
                not self._pending
                and not self._scheduled
                and not env._queue
                and all(idle)
            ):
                break
            self.windows += 1
            # Any unresolved injection this window's bound covers will
            # have fired (its ack ships below) and reported its
            # follow-on dispatch by the time the reports are in.
            resolving = [
                index
                for index, completes in self._unresolved.items()
                if completes <= bound
            ]
            for shard, conn in enumerate(channels):
                conn.send((
                    "advance",
                    bound,
                    self._outbox_subs[shard],
                    self._outbox_ctls[shard],
                    self._outbox_acks[shard],
                ))
                self._outbox_subs[shard] = []
                self._outbox_ctls[shard] = []
                self._outbox_acks[shard] = []
            if not self.lockstep:
                self._runahead_shipped = True
            stall_start = time.perf_counter()
            for shard, conn in enumerate(channels):
                message = self._recv(conn, shard)
                if message[0] != "report":  # pragma: no cover - safety
                    raise RuntimeError(
                        f"shard {shard}: expected report, got {message[0]!r}"
                    )
                _, consumed, scheduled, shard_idle, clock, events = message
                idle[shard] = shard_idle
                self.shard_events[shard] = events
                for seq in consumed:
                    record = self._pending.get(seq)
                    if record is not None and record.state == "shipped":
                        record.state = "queued"
                for report in scheduled:
                    record = self._pending.pop(report[0])
                    record.state = "scheduled"
                    record.report = report
                    self._scheduled[record.seq] = record
            for index in resolving:
                self._unresolved.pop(index, None)
            if len(self._scheduled) > self.backlog_peak:
                self.backlog_peak = len(self._scheduled)
            stall_ms = (time.perf_counter() - stall_start) * 1000.0
            self.window_stall_ms += stall_ms
            if self._metrics.enabled:
                self._metrics.histogram(
                    "repro_shard_window_stall_ms",
                    "Wall-clock wait for all shard reports, per window",
                ).observe(stall_ms)
        env._now = high_water

    def _finish(
        self,
        channels: List[Any],
        originals: List[Any],
        swapped: Dict[int, _ShardProxy],
    ) -> None:
        env = self.env
        system = self.system
        tracer = originals[0].tracer
        final_now = env._now
        for shard, conn in enumerate(channels):
            conn.send(("finish",))
            message = self._recv(conn, shard)
            if message[0] != "done":  # pragma: no cover - safety
                raise RuntimeError(
                    f"shard {shard}: expected done, got {message[0]!r}"
                )
            _, state, payload, events, clock = message
            self.shard_events[shard] = events
            if clock > final_now:
                final_now = clock
            for index, stats, arm_state, repositions in state:
                drive = originals[index]
                drive.stats = stats
                if arm_state is not None:
                    for arm, fields in zip(drive.arms, arm_state):
                        (arm.cylinder, arm.busy_until, arm.failed,
                         arm.requests_serviced, arm.seek_time_ms,
                         arm.seeks) = fields
                    drive.repositions = repositions
            if payload is not None and tracer.enabled:
                tracer.merge_payload(payload)
        # The serial clock ends on the last event anywhere; restore the
        # high-water mark so run elapsed time (and power residency)
        # match the serial kernel bit for bit.
        env._now = max(env._now, final_now)
        if tracer.enabled:
            telemetry = tracer.telemetry
            # The engine-level counters a serial env.run() would have
            # recorded, with shard-side events folded in.
            telemetry.counter("engine.runs").inc()
            telemetry.counter("engine.events").inc(
                (env._eid - self._eid_at_entry) + sum(self.shard_events)
            )
            telemetry.gauge("engine.sim_time_ms").set(env._now)
            telemetry.gauge("shards.count").set(self.shards)
            telemetry.gauge("shards.lookahead_ms").set(self.lookahead)
            telemetry.counter("shards.windows").inc(self.windows)
            telemetry.stats("shards.window_stall_ms").add(
                self.window_stall_ms
            )
            total_events = sum(self.shard_events) or 1
            for shard, events in enumerate(self.shard_events):
                telemetry.counter(f"shards.shard{shard}.events").inc(
                    events
                )
                telemetry.stats("shards.utilization").add(
                    events / total_events
                )
        metrics = self._metrics
        if metrics.enabled:
            metrics.counter(
                "repro_shard_windows_total",
                "Synchronization windows executed",
            ).inc(self.windows)
            metrics.counter(
                "repro_shard_stall_ms_total",
                "Total wall-clock lookahead wait across windows",
            ).inc(self.window_stall_ms)
            metrics.gauge(
                "repro_shard_count", "Shards in the last sharded run"
            ).set(self.shards)
            metrics.gauge(
                "repro_shard_lookahead_ms",
                "Provable lookahead of the last sharded run (sim ms)",
            ).set(self.lookahead)
            mode = metrics.gauge(
                "repro_shard_mode",
                "1 for the synchronization mode of the last run",
                labels=("mode",),
            )
            mode.labels(mode="lockstep").set(1 if self.lockstep else 0)
            mode.labels(mode="runahead").set(0 if self.lockstep else 1)
            metrics.gauge(
                "repro_shard_backlog_peak",
                "Peak merged-completion backlog (scheduled, unfired)",
            ).set(self.backlog_peak)
            events_total = metrics.counter(
                "repro_shard_events_total",
                "Events executed inside shard workers",
                labels=("shard",),
            )
            for shard, events in enumerate(self.shard_events):
                events_total.labels(shard=shard).inc(events)

    def _recv(self, conn: Any, shard: int) -> Tuple:
        try:
            message = conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard {shard} worker exited unexpectedly"
            ) from None
        if message[0] == "error":
            raise RuntimeError(
                f"shard {shard} worker failed:\n{message[1]}"
            )
        return message
