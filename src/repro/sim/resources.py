"""Shared resources for processes: counted resources and object stores.

These mirror the SimPy primitives the storage models need:

* :class:`Resource` — a counted semaphore (e.g. a data channel that only
  one head may drive at a time).
* :class:`Store` — an unbounded FIFO buffer of objects (e.g. a request
  queue between a workload generator and a disk controller).
* :class:`PriorityStore` — a store whose ``get`` returns the smallest
  item first (used for priority request queues).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["PriorityStore", "Release", "Request", "Resource", "Store"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager so that ``with resource.request() as req``
    releases the slot automatically.
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Release(Event):
    """Immediate-succeed event returned by :meth:`Resource.release`."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.request = request
        if request in resource._users:
            resource._users.remove(request)
            resource._trigger()
        elif request in resource._queue:
            request.cancel()
        self.succeed()


class Resource:
    """A counted resource with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: List[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue(self) -> List[Request]:
        """Requests waiting for a slot (read-only view)."""
        return list(self._queue)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> Release:
        return Release(self, request)

    def _trigger(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.pop(0)
            self._users.append(req)
            req.succeed(req)


class StoreGet(Event):
    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._getters.append(self)
        store._trigger()


class StorePut(Event):
    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._putters.append(self)
        store._trigger()


class Store:
    """Unbounded (or bounded) FIFO buffer of arbitrary objects."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: List[StoreGet] = []
        self._putters: List[StorePut] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters:
                if self._do_put(self._putters[0]):
                    self._putters.pop(0)
                    progress = True
                else:
                    break
            while self._getters:
                if self._do_get(self._getters[0]):
                    self._getters.pop(0)
                    progress = True
                else:
                    break


class PriorityStore(Store):
    """A store whose ``get`` yields the smallest item first.

    Items must be mutually comparable; wrap with ``(priority, seq, item)``
    tuples when the payload itself is not orderable.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    def _do_put(self, event: StorePut) -> bool:
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self._heap:
            event.succeed(heapq.heappop(self._heap))
            return True
        return False
