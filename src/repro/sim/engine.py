"""Core discrete-event engine: environment, events, processes.

The engine is deliberately small and deterministic:

* Simulated time is a float (this package uses milliseconds throughout).
* Events are totally ordered by ``(time, priority, sequence)``, so two
  events scheduled for the same instant fire in scheduling order.  The
  schedule itself is a calendar queue (:mod:`repro.sim.calqueue`) that
  preserves that total order bit-for-bit; ``ENGINE_QUEUE=heap`` selects
  the pre-PR 10 binary heap and ``ENGINE_QUEUE=differential`` runs both
  in lockstep with every pop cross-checked.
* A :class:`Process` wraps a generator.  The generator yields events;
  when a yielded event triggers, the process is resumed with the event's
  value (or the event's exception is thrown into it).

Three fast paths keep the hot loop lean without changing the total
order or any observable value:

* **Timeout pooling** — :meth:`Environment.timeout` recycles fired
  timeouts through a free list, so the steady-state cost of a timeout
  is a handful of slot stores plus one heap push.  A recycled timeout
  is *engine-owned* once it has fired: holding a reference to it past
  the resumption it caused is undefined (the drives and runners in
  this package never do).  Timeouts that anything else still watches —
  a :class:`Condition` membership, an explicit ``callbacks`` entry, a
  ``run(until=...)`` stop hook — are never recycled.
* **Single-waiter direct dispatch** — when exactly one process waits
  on an event and nothing else registered a callback, the waiter is
  parked in the event's ``_waiter`` slot instead of a callbacks list
  and resumed directly at dispatch.  The waiter slot is only ever used
  when the callbacks list is empty, so it is always the would-be-first
  callback and dispatch order is unchanged.
* **Lazy deletion** — an interrupt can orphan the event its victim was
  waiting on; the dead heap entry stays put and is discarded when it
  surfaces.  Orphans are counted so :attr:`Environment.scheduled_events`
  (the live queue depth) never drifts.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.calqueue import CalendarQueue, make_queue

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Default priority for ordinary events.
NORMAL = 1
#: Priority used for "urgent" bookkeeping events (fire before NORMAL ones
#: scheduled at the same instant).
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three states: *pending* (just created),
    *triggered* (a value or exception has been set and the event is on
    the schedule), and *processed* (its callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "_waiter",
                 "_stale")

    #: Overridden per-instance (as a slot) on pool-managed timeouts;
    #: plain events fall back to this class attribute.
    _pooled = False

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: Set by a waiter to mark a failure as handled, suppressing the
        #: crash-the-run behaviour for unhandled failures.
        self.defused = False
        #: Sole waiting process when no callbacks list is in play.
        self._waiter: Optional["Process"] = None
        #: True for a heap entry nothing watches any more (lazy deletion).
        self._stale = False

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid += 1
        # Inlined calendar push (sorted-drain mode only): one insort in
        # place of the push() frame.  ``_cursor > _nbuckets`` uniquely
        # marks sorted mode, where every entry merges into the drain
        # segment; any other queue state (ring mode, heap escape hatch,
        # differential oracle) takes the generic method.
        calendar = env._calendar
        if calendar is not None and calendar._cursor > calendar._nbuckets:
            current = calendar._current
            insort(current, (-env._now, -1, -env._eid, self))
            if len(current) > calendar._spill_limit:
                calendar._rest += len(current)
                calendar._overflow.extend(current)
                del current[:]
                calendar._reseed()
        else:
            env._queue.push(env._now, NORMAL, env._eid, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (already triggered) event."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self, NORMAL, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._ok is None
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    Instances built through :meth:`Environment.timeout` are pool-managed:
    once fired and consumed they may be recycled for a later timeout.
    Directly constructed instances are never recycled.
    """

    __slots__ = ("delay", "_pooled")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + _schedule: this constructor runs once
        # per simulated I/O phase, so every skipped call counts.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self._waiter = None
        self._stale = False
        self._pooled = False
        self.delay = delay
        env._eid += 1
        # Inlined calendar push (sorted-drain mode); see Event.succeed.
        calendar = env._calendar
        if calendar is not None and calendar._cursor > calendar._nbuckets:
            current = calendar._current
            insort(current, (-env._now - delay, -1, -env._eid, self))
            if len(current) > calendar._spill_limit:
                calendar._rest += len(current)
                calendar._overflow.extend(current)
                del current[:]
                calendar._reseed()
        else:
            env._queue.push(env._now + delay, NORMAL, env._eid, self)


class Initialize(Event):
    """Internal: first resumption of a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self.defused = False
        self._waiter = None
        self._stale = False
        env._eid += 1
        env._queue.push(env._now, URGENT, env._eid, self)


class Process(Event):
    """A running generator; also an event that triggers on termination."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = None
        self.defused = False
        self._waiter = None
        self._stale = False
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._ok is not None:
            raise SimulationError("cannot interrupt a terminated process")
        if self._target is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT, 0.0)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            # Detach from the event that woke us.  When this resumption
            # was caused by the target itself, its callbacks are already
            # None and both branches are skipped; an interrupt leaves
            # the old target live, and detaching may orphan it.
            target = self._target
            if target is not None:
                if target._waiter is self:
                    target._waiter = None
                    if not target.callbacks:
                        target._stale = True
                        env._stale_events += 1
                elif target.callbacks is not None:
                    try:
                        target.callbacks.remove(self._resume)
                    except ValueError:
                        pass
                    else:
                        if not target.callbacks and target._waiter is None:
                            target._stale = True
                            env._stale_events += 1
            self._target = None
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env._eid += 1
                # Inlined calendar push (sorted-drain mode); see
                # Event.succeed.
                calendar = env._calendar
                if (
                    calendar is not None
                    and calendar._cursor > calendar._nbuckets
                ):
                    current = calendar._current
                    insort(current, (-env._now, -1, -env._eid, self))
                    if len(current) > calendar._spill_limit:
                        calendar._rest += len(current)
                        calendar._overflow.extend(current)
                        del current[:]
                        calendar._reseed()
                else:
                    env._queue.push(env._now, NORMAL, env._eid, self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._eid += 1
                env._queue.push(env._now, NORMAL, env._eid, self)
                break
            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._ok = False
                self._value = exc
                env._schedule(self, NORMAL, 0.0)
                break
            callbacks = next_event.callbacks
            if callbacks is not None:
                # Event still pending or triggered-but-unprocessed: wait.
                self._target = next_event
                if callbacks or next_event._waiter is not None:
                    callbacks.append(self._resume)
                else:
                    # Sole watcher: park in the waiter slot instead of
                    # the (empty) callbacks list.  Revive the entry if
                    # an interrupt had orphaned it earlier.
                    next_event._waiter = self
                    if next_event._stale:
                        next_event._stale = False
                        env._stale_events -= 1
                break
            # Event already processed: continue immediately with its value.
            event = next_event
        env._active_process = None


class ConditionValue:
    """Mapping-like view of the events collected by a condition."""

    def __init__(self, events: List[Event]):
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over several child events."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if self._evaluate(self._events, 0) and not self._events:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
                if event._stale:
                    event._stale = False
                    env._stale_events -= 1

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # Only *processed* events belong in the result: a Timeout
            # is "triggered" from creation but has not occurred until
            # its callbacks run.  The event firing right now is already
            # marked processed by Environment.step().
            done = [
                e
                for e in self._events
                if e.processed and e._ok
            ]
            self.succeed(ConditionValue(done))


class AllOf(Condition):
    """Triggers when every child event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Triggers when at least one child event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= 1, events)


class EmptySchedule(Exception):
    """Internal: raised by :meth:`Environment.step` when nothing remains."""


class Environment:
    """Owns simulated time and the pending-event schedule.

    ``tracer`` optionally attaches an observability tracer
    (:mod:`repro.obs`) to this environment: components built against
    the environment resolve it via ``repro.obs.tracer_for`` and the
    engine itself records run-level telemetry (events dispatched,
    final simulated time) when a tracer is enabled.  ``None`` (the
    default) falls back to the ambient tracer, which is the zero-cost
    null tracer unless a traced session is active.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        tracer: Any = None,
        queue: Optional[str] = None,
    ):
        self._now = float(initial_time)
        #: The pending-event schedule.  ``queue`` selects the scheduler
        #: kind (``"calendar"``/``"heap"``/``"differential"``); ``None``
        #: defers to the ``ENGINE_QUEUE`` environment variable, which
        #: defaults to the calendar queue.
        self._queue = make_queue(queue)
        #: The queue again when it is a plain CalendarQueue, else None.
        #: Hot paths branch on this to inline sorted-mode pushes and
        #: pops; anything that replaces ``_queue`` (the shard workers'
        #: schedule narrowing) must refresh this alias too.
        self._calendar = (
            self._queue if type(self._queue) is CalendarQueue else None
        )
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Free list of fired timeouts available for reuse.
        self._timeout_pool: List[Timeout] = []
        #: Heap entries nothing watches any more (lazy deletion).
        self._stale_events = 0
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def scheduled_events(self) -> int:
        """Events currently on the schedule that something still watches.

        Stale entries — heap slots orphaned by an interrupt and awaiting
        lazy deletion — are excluded, so queue-depth telemetry does not
        drift on long runs.  For the cumulative count that the bench
        reports events/sec against, see :attr:`total_events`.
        """
        return len(self._queue) - self._stale_events

    @property
    def total_events(self) -> int:
        """Total events ever scheduled (the bench's events/sec basis)."""
        return self._eid

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A pool-managed timeout: recycled once fired and consumed.

        Holding a reference to the returned timeout past the resumption
        it causes is undefined; timeouts held by conditions or explicit
        callbacks are detected and never recycled.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            timeout._ok = True
            timeout.defused = False
            self._eid += 1
            # Inlined calendar push (sorted-drain mode); see
            # Event.succeed.  This is the hottest push site: every
            # steady-state mechanical delay reschedules through here.
            calendar = self._calendar
            if calendar is not None and calendar._cursor > calendar._nbuckets:
                current = calendar._current
                insort(
                    current, (-self._now - delay, -1, -self._eid, timeout)
                )
                if len(current) > calendar._spill_limit:
                    calendar._rest += len(current)
                    calendar._overflow.extend(current)
                    del current[:]
                    calendar._reseed()
            else:
                self._queue.push(
                    self._now + delay, NORMAL, self._eid, timeout
                )
            return timeout
        timeout = Timeout(self, delay, value)
        timeout._pooled = True
        return timeout

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._eid += 1
        self._queue.push(self._now + delay, priority, self._eid, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.peek_time()

    def schedule_at(
        self, event: Event, time: float, priority: int = NORMAL
    ) -> None:
        """Place an already-triggered ``event`` on the schedule at an
        absolute ``time``.

        This is the cross-shard injection primitive used by the sharded
        coordinator (:mod:`repro.sim.sharded`): a completion that fired
        inside a shard is re-materialised in the controller environment
        at its exact firing time, taking a fresh sequence number so it
        orders after events already scheduled for the same instant —
        exactly where the serial kernel would have placed it relative
        to work created later.  ``time`` may be earlier than ``now``;
        the caller is the time authority and guarantees it drains the
        schedule in time order.
        """
        if event._ok is None:
            raise SimulationError(
                "schedule_at() requires a triggered event; set its "
                "outcome before scheduling"
            )
        self._eid += 1
        self._queue.push(time, priority, self._eid, event)

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            self._now, _, _, event = self._queue.pop()
        except IndexError:
            raise EmptySchedule() from None
        if event._stale:
            event._stale = False
            self._stale_events -= 1
        waiter = event._waiter
        callbacks, event.callbacks = event.callbacks, None
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            # Unhandled failure: crash the run, as SimPy does.
            raise event._value
        if waiter is not None and event._pooled and not callbacks:
            event.callbacks = callbacks
            self._timeout_pool.append(event)

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or schedule exhaustion).

        If ``until`` is an event, returns that event's value once it
        triggers.  If it is a number, runs until simulated time reaches
        it.  If ``None``, runs until no events remain.
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before now ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                # Urgent so the clock stops before same-time events fire.
                self._eid += 1
                self._queue.push(at, URGENT, self._eid, stop)
            stop.callbacks.append(_StopSignal.throw)
        # Inlined step() loop: one event dispatch per iteration with the
        # queue pop and the timeout free list bound to locals.  This
        # loop is the hottest frame of every simulation, so it avoids
        # the per-event attribute lookups of the public step() API; the
        # queue signals exhaustion by raising IndexError from pop(),
        # which costs nothing on the non-raising iterations.  On the
        # default calendar queue the pop itself is inlined too: the
        # drain segment is a plain list with the least entry last, so
        # one ``list.pop()`` replaces the method call, the un-negation
        # of the unused key fields, and the result-tuple round trip.
        queue = self._queue
        calendar = self._calendar
        pop = queue.pop
        pool_append = self._timeout_pool.append
        eid_at_entry = self._eid
        try:
            while True:
                if calendar is not None:
                    current = calendar._current
                    if not current:
                        if not calendar._ensure():
                            break
                        current = calendar._current
                    entry = current.pop()
                    self._now = -entry[0]
                    event = entry[3]
                else:
                    try:
                        self._now, _, _, event = pop()
                    except IndexError:
                        break
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    callbacks = event.callbacks
                    if not callbacks:
                        # Single-waiter fast path: resume the owning
                        # process directly, then recycle the timeout.
                        event.callbacks = None
                        if event._stale:
                            event._stale = False
                            self._stale_events -= 1
                        waiter._resume(event)
                        if event._ok is False and not event.defused:
                            raise event._value
                        if event._pooled:
                            event.callbacks = callbacks
                            pool_append(event)
                        continue
                    # Waiter plus later callbacks: the waiter attached
                    # first, so it is dispatched first.
                    event.callbacks = None
                    if event._stale:
                        event._stale = False
                        self._stale_events -= 1
                    waiter._resume(event)
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event.defused:
                        raise event._value
                    continue
                callbacks, event.callbacks = event.callbacks, None
                if event._stale:
                    event._stale = False
                    self._stale_events -= 1
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
            # Schedule exhausted.
            if stop is not None and stop.callbacks is not None:
                if isinstance(until, Event):
                    raise SimulationError(
                        "run(until=event): event was never triggered"
                    ) from None
        except _StopSignal as signal:
            return signal.value
        finally:
            self._record_run_telemetry(eid_at_entry)
        return None

    def run_bounded(self, bound: float) -> int:
        """Fire every event scheduled at or before ``bound``; return how
        many fired.

        This is the window barrier of the sharded kernel: a shard
        advances its local clock through one conservative window and
        stops, leaving events beyond ``bound`` untouched.  Unlike
        ``run(until=...)`` no stop event is scheduled, so calling this
        in a loop perturbs neither event ids nor the timeout pool — a
        run split into arbitrary ``run_bounded`` segments fires exactly
        the events, in exactly the order, of one ``run()``.  The clock
        is left at the last fired event, not advanced to ``bound``.

        The timeout free list stays per-environment (per-shard): a
        timeout recycled here can only be reused by this environment,
        so pooling across window barriers cannot leak state between
        shards.  Run-level telemetry is not recorded — the caller owns
        the run lifecycle.
        """
        # Inlined step() loop, as in run(): see the comments there.  The
        # window barrier is the queue's pop_bounded, which returns None
        # once the head passes ``bound`` (or nothing remains).
        pop_bounded = self._queue.pop_bounded
        pool_append = self._timeout_pool.append
        fired = 0
        while True:
            entry = pop_bounded(bound)
            if entry is None:
                break
            self._now, _, _, event = entry
            fired += 1
            waiter = event._waiter
            if waiter is not None:
                event._waiter = None
                callbacks = event.callbacks
                if not callbacks:
                    event.callbacks = None
                    if event._stale:
                        event._stale = False
                        self._stale_events -= 1
                    waiter._resume(event)
                    if event._ok is False and not event.defused:
                        raise event._value
                    if event._pooled:
                        event.callbacks = callbacks
                        pool_append(event)
                    continue
                event.callbacks = None
                if event._stale:
                    event._stale = False
                    self._stale_events -= 1
                waiter._resume(event)
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
                continue
            callbacks, event.callbacks = event.callbacks, None
            if event._stale:
                event._stale = False
                self._stale_events -= 1
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event.defused:
                raise event._value
        return fired

    def _record_run_telemetry(self, eid_at_entry: int) -> None:
        """Engine-level counters for an enabled tracer (no-op otherwise)."""
        tracer = self.tracer
        if tracer is None:
            from repro.obs.tracer import current_tracer

            tracer = current_tracer()
        if not tracer.enabled:
            return
        telemetry = tracer.telemetry
        telemetry.counter("engine.runs").inc()
        telemetry.counter("engine.events").inc(self._eid - eid_at_entry)
        telemetry.gauge("engine.sim_time_ms").set(self._now)


class _StopSignal(Exception):
    """Internal control-flow exception used by :meth:`Environment.run`."""

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value

    @staticmethod
    def throw(event: Event) -> None:
        if event._ok:
            raise _StopSignal(event._value)
        event.defused = True
        raise event._value
