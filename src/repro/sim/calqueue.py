"""Calendar-queue event schedulers for the DES engine.

The engine orders events by ``(time, priority, eid)`` tuples.  Until
PR 10 the schedule was a binary heap (`heapq`); this module provides
the calendar/ladder queue that replaced it, the heap retained as an
escape hatch, and a differential wrapper that cross-checks every pop
against the heap oracle.  All three expose one interface:

``push(time, priority, eid, event)``
    Insert one schedule entry.
``pop()``
    Remove and return the least entry as a ``(time, priority, eid,
    event)`` tuple; raises ``IndexError`` when empty.
``pop_bounded(bound)``
    Pop the least entry only if its time is ``<= bound``; returns
    ``None`` otherwise (or when empty).  The window barrier of
    :meth:`Environment.run_bounded`.
``peek_time()`` / ``peek_event()``
    Time (``inf`` when empty) / event of the least entry, not removed.
``entries()``
    Snapshot of all entries as raw tuples, in no particular order —
    the shard workers use it to narrow an inherited schedule.
``__len__``
    Entry count (drives ``bool(queue)`` and ``scheduled_events``).

Every implementation accepts ``entries=`` (an iterable of raw tuples)
so a filtered schedule can be rebuilt as the same kind of queue.

Order preservation
------------------

A calendar queue is only usable here if it reproduces the heap's total
order *bit for bit* — the figures digest, the PR 6 sharded merge and
the equal-time tie-break tests all depend on it.  Two design rules
make the order exact rather than approximate:

* **Exact bucket mapping.**  The bucket index of an entry is
  ``int(time * inv_width)`` where ``inv_width`` is always an exact
  power of two.  Multiplying a float by a power of two is exact (only
  the exponent changes), and ``int()`` truncation is monotone, so
  ``t1 < t2`` can never map ``t1`` to a later bucket than ``t2``.
  There is no boundary fuzz: the split into buckets merely partitions
  the key space, it never perturbs comparisons.
* **One sorted drain segment.**  Buckets hold unsorted entries with
  their keys negated (``(-time, -priority, -eid, event)``).  When the
  cursor reaches a bucket it is sorted ascending once (C ``list.sort``)
  and becomes the *current* segment: the least entry is at the end, so
  ``pop`` is an O(1) ``list.pop()`` with zero comparisons.  Entries
  that arrive for a bucket the cursor has passed are placed into the
  current segment by ``bisect.insort`` — exactly where the heap would
  have surfaced them.

Lazy cancellation needs no support here: the engine marks dead entries
``_stale`` and discards them when they surface (unchanged from the
heap), so the queue never removes from the middle.

Bucket-width auto-resizing
--------------------------

The ring is rebuilt ("reseeded") from the overflow list whenever it
drains: the new width is ``~3x`` the mean inter-event gap of the
pending population (rounded to a power of two) and the bucket count
tracks the population (8..4096), so the queue adapts as a simulation's
event density drifts.  Two degenerate shapes are handled explicitly:
an equal-time flood collapses to a single bucket and one C sort (a
heapsort, the right fallback), and a long tail of pushes behind an
exhausted ring spills back to the overflow list so the next pop
re-adapts instead of degrading to O(n) inserts.

Selection
---------

:func:`make_queue` picks the implementation from the ``ENGINE_QUEUE``
environment variable: ``calendar`` (the default), ``heap`` (the
pre-PR 10 scheduler, kept as an escape hatch), or ``differential``
(calendar + heap in lockstep, asserting every pop matches — the
reference oracle mode the property tests run under).
"""

from __future__ import annotations

import math
import os
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Iterable, List, Optional, Tuple

__all__ = [
    "CalendarQueue",
    "DifferentialQueue",
    "HeapQueue",
    "QUEUE_KINDS",
    "make_queue",
]

_INF = float("inf")

#: Entries tolerated in the current segment once the ring is exhausted
#: before spilling back to the overflow list for a fresh reseed.
#: Largest reseed population drained as a single sorted segment (no
#: ring).  DES schedules in this package idle around a few dozen
#: pending events, where one C sort per drain batch plus O(1) pops
#: beats maintaining a bucket ring; the ring engages above this.
_SORTED_MODE_MAX = 128

#: Bucket-count bounds for a reseeded ring (powers of two).
_MIN_BUCKET_BITS = 3
_MAX_BUCKET_BITS = 12


class CalendarQueue:
    """Calendar/ladder queue with exact ``(time, priority, eid)`` order.

    Internal layout (see the module docstring for the invariants):

    * ``_current`` — the promoted drain segment: negated-key entries,
      ascending, least entry last.
    * ``_buckets`` — the ring: ``_nbuckets`` unsorted lists covering
      absolute bucket indices ``[_ring_start + _cursor, _ring_start +
      _nbuckets)``.
    * ``_overflow`` — unsorted entries beyond the ring (and the seed
      population before the first pop).
    * ``_rest`` — entries not in ``_current`` (ring + overflow), so
      ``len`` is O(1).
    """

    __slots__ = (
        "_current",
        "_buckets",
        "_nbuckets",
        "_cursor",
        "_ring_start",
        "_width",
        "_inv_width",
        "_overflow",
        "_rest",
        "_spill_limit",
    )

    def __init__(
        self, entries: Optional[Iterable[Tuple]] = None
    ) -> None:
        self._current: List[Tuple] = []
        self._buckets: List[List[Tuple]] = []
        self._nbuckets = 0
        self._cursor = 0
        self._ring_start = 0
        self._width = 1.0
        self._inv_width = 1.0
        self._overflow: List[Tuple] = []
        self._rest = 0
        self._spill_limit = _SORTED_MODE_MAX
        if entries:
            push = self.push
            for time, priority, eid, event in entries:
                push(time, priority, eid, event)

    def __len__(self) -> int:
        return len(self._current) + self._rest

    def push(
        self, time: float, priority: int, eid: int, event: Any
    ) -> None:
        entry = (-time, -priority, -eid, event)
        rel = int(time * self._inv_width) - self._ring_start
        if rel < self._cursor:
            # The cursor has passed this entry's bucket (or the time
            # precedes the ring): merge into the sorted drain segment.
            current = self._current
            insort(current, entry)
            if (
                len(current) > self._spill_limit
                and self._cursor >= self._nbuckets
            ):
                # Exhausted ring (or sorted mode) absorbing far more
                # inserts than the segment was seeded with: rebuild
                # around the live population with a fresh width.  The
                # reseed must happen *now*, not at the next pop — once
                # current is spilled it may hold the minimum pending
                # entries, and a later insert behind the stale cursor
                # would be drained ahead of them.
                self._rest += len(current)
                self._overflow.extend(current)
                del current[:]
                self._reseed()
        elif rel < self._nbuckets:
            self._buckets[rel].append(entry)
            self._rest += 1
        else:
            self._overflow.append(entry)
            self._rest += 1

    def pop(self) -> Tuple:
        current = self._current
        if not current:
            if not self._ensure():
                raise IndexError("pop from an empty CalendarQueue")
            current = self._current
        t, p, e, ev = current.pop()
        return (-t, -p, -e, ev)

    def pop_bounded(self, bound: float) -> Optional[Tuple]:
        current = self._current
        if not current:
            if not self._ensure():
                return None
            current = self._current
        entry = current[-1]
        t = -entry[0]
        if t > bound:
            return None
        del current[-1]
        return (t, -entry[1], -entry[2], entry[3])

    def peek_time(self) -> float:
        current = self._current
        if not current:
            if not self._ensure():
                return _INF
            current = self._current
        return -current[-1][0]

    def peek_event(self) -> Any:
        current = self._current
        if not current:
            if not self._ensure():
                raise IndexError("peek on an empty CalendarQueue")
            current = self._current
        return current[-1][3]

    def entries(self) -> List[Tuple]:
        out = [(-t, -p, -e, ev) for (t, p, e, ev) in self._current]
        for bucket in self._buckets:
            out.extend((-t, -p, -e, ev) for (t, p, e, ev) in bucket)
        out.extend(
            (-t, -p, -e, ev) for (t, p, e, ev) in self._overflow
        )
        return out

    # -- internal -------------------------------------------------------
    def _ensure(self) -> bool:
        """Make ``_current`` non-empty; False when the queue is empty."""
        while True:
            buckets = self._buckets
            cursor = self._cursor
            nbuckets = self._nbuckets
            while cursor < nbuckets:
                bucket = buckets[cursor]
                cursor += 1
                if bucket:
                    bucket.sort()
                    buckets[cursor - 1] = []
                    self._cursor = cursor
                    self._current = bucket
                    self._rest -= len(bucket)
                    return True
            self._cursor = cursor
            if not self._overflow:
                return False
            self._reseed()
            if self._current:
                # Sorted-segment reseed filled current directly.
                return True

    def _reseed(self) -> None:
        """Rebuild from the overflow population; ``_current`` is empty.

        This is where the structure auto-resizes.  A small population
        becomes a single sorted drain segment (one C sort, O(1) pops,
        ``insort`` merges — the degenerate one-segment calendar that
        wins at the queue depths this package's simulations run at).
        A large one rebuilds the bucket ring: the new width is about
        three mean inter-event gaps, rounded down to a power of two so
        the bucket map stays exact, and the bucket count tracks the
        population size.
        """
        overflow = self._overflow
        count = len(overflow)
        if count <= _SORTED_MODE_MAX:
            # Sorted-segment mode: the whole population is the drain
            # segment and *every* push merges into it by insort — the
            # boundary is pushed beyond any representable time, so the
            # bucket map sends nothing to the (empty) ring or the
            # overflow list.  This is the ladder queue's bottom rung:
            # at the queue depths this package's simulations idle at,
            # one binary insert per push and O(1) pops beat both the
            # heap and a bucket ring, and no reseed happens again until
            # the population outgrows ``_spill_limit``.
            overflow.sort()
            self._current = overflow
            self._overflow = []
            self._buckets = []
            self._nbuckets = 0
            self._cursor = 1
            self._width = 1.0
            self._inv_width = 1.0
            # ``rel = int(time) - _ring_start < _cursor`` for any time
            # a float can exactly represent as an integer below 2**62.
            self._ring_start = 1 << 62
            self._rest -= count
            self._spill_limit = (count << 1) + _SORTED_MODE_MAX
            return
        hi = lo = overflow[0][0]
        for entry in overflow:
            value = entry[0]
            if value > hi:
                hi = value
            elif value < lo:
                lo = value
        min_time = -hi
        span = -lo - min_time
        if span > 0.0:
            _mantissa, exponent = math.frexp(3.0 * span / count)
            exponent = min(max(exponent, -500), 500)
            width = 2.0 ** (exponent - 1)
            inv_width = 2.0 ** (1 - exponent)
            bits = min(
                max(count.bit_length(), _MIN_BUCKET_BITS),
                _MAX_BUCKET_BITS,
            )
            nbuckets = 1 << bits
        else:
            # Equal-time flood: one bucket, one sort.
            width = 1.0
            inv_width = 1.0
            nbuckets = 1
        ring_start = int(min_time * inv_width)
        buckets: List[List[Tuple]] = [[] for _ in range(nbuckets)]
        leftover: List[Tuple] = []
        for entry in overflow:
            rel = int(-entry[0] * inv_width) - ring_start
            if rel < nbuckets:
                buckets[rel].append(entry)
            else:
                leftover.append(entry)
        self._buckets = buckets
        self._nbuckets = nbuckets
        self._cursor = 0
        self._ring_start = ring_start
        self._width = width
        self._inv_width = inv_width
        self._overflow = leftover
        self._spill_limit = (count << 1) + _SORTED_MODE_MAX

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarQueue len={len(self)} buckets={self._nbuckets} "
            f"width={self._width!r}>"
        )


class HeapQueue:
    """The pre-PR 10 binary-heap scheduler behind the shared interface.

    Kept as the ``ENGINE_QUEUE=heap`` escape hatch and as the oracle
    half of :class:`DifferentialQueue`.
    """

    __slots__ = ("_data",)

    def __init__(
        self, entries: Optional[Iterable[Tuple]] = None
    ) -> None:
        self._data: List[Tuple] = list(entries) if entries else []
        if self._data:
            heapify(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def push(
        self, time: float, priority: int, eid: int, event: Any
    ) -> None:
        heappush(self._data, (time, priority, eid, event))

    def pop(self) -> Tuple:
        return heappop(self._data)

    def pop_bounded(self, bound: float) -> Optional[Tuple]:
        data = self._data
        if data and data[0][0] <= bound:
            return heappop(data)
        return None

    def peek_time(self) -> float:
        data = self._data
        return data[0][0] if data else _INF

    def peek_event(self) -> Any:
        return self._data[0][3]

    def entries(self) -> List[Tuple]:
        return list(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeapQueue len={len(self._data)}>"


class DifferentialQueue:
    """Calendar queue cross-checked pop-by-pop against the heap oracle.

    Every mutation is applied to both implementations and every pop
    (and bounded pop, and peek) asserts that the calendar queue
    surfaced exactly the entry the heap would have.  This is the
    reference mode the property tests run whole simulations under
    (``ENGINE_QUEUE=differential``); it is never the default, since it
    does double work by construction.
    """

    __slots__ = ("_calendar", "_heap", "pops")

    def __init__(
        self, entries: Optional[Iterable[Tuple]] = None
    ) -> None:
        seed = list(entries) if entries else []
        self._calendar = CalendarQueue(seed)
        self._heap = HeapQueue(seed)
        #: Pops verified against the oracle so far.
        self.pops = 0

    def __len__(self) -> int:
        return len(self._calendar)

    def push(
        self, time: float, priority: int, eid: int, event: Any
    ) -> None:
        self._calendar.push(time, priority, eid, event)
        self._heap.push(time, priority, eid, event)

    def _check(self, got: Optional[Tuple], want: Optional[Tuple]):
        if got != want:
            raise AssertionError(
                "calendar queue diverged from the heap oracle after "
                f"{self.pops} verified pops: calendar produced "
                f"{got!r}, heap produced {want!r}"
            )
        self.pops += 1
        return got

    def pop(self) -> Tuple:
        got = self._calendar.pop()
        return self._check(got, self._heap.pop())

    def pop_bounded(self, bound: float) -> Optional[Tuple]:
        got = self._calendar.pop_bounded(bound)
        return self._check(got, self._heap.pop_bounded(bound))

    def peek_time(self) -> float:
        got = self._calendar.peek_time()
        want = self._heap.peek_time()
        if got != want:
            raise AssertionError(
                f"calendar peek_time {got!r} != heap {want!r}"
            )
        return got

    def peek_event(self) -> Any:
        got = self._calendar.peek_event()
        want = self._heap.peek_event()
        if got is not want:
            raise AssertionError(
                f"calendar peek_event {got!r} is not heap {want!r}"
            )
        return got

    def entries(self) -> List[Tuple]:
        return self._calendar.entries()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DifferentialQueue len={len(self)} pops={self.pops}>"


#: ``ENGINE_QUEUE`` value → implementation.
QUEUE_KINDS = {
    "calendar": CalendarQueue,
    "heap": HeapQueue,
    "differential": DifferentialQueue,
}

#: Environment variable consulted by :func:`make_queue`.
ENGINE_QUEUE_VAR = "ENGINE_QUEUE"


def make_queue(kind: Optional[str] = None):
    """Build the scheduler selected by ``kind`` or ``$ENGINE_QUEUE``.

    ``kind=None`` (the normal path) consults the ``ENGINE_QUEUE``
    environment variable, defaulting to the calendar queue; an unknown
    value raises ``ValueError`` rather than silently simulating on an
    unintended scheduler.
    """
    if kind is None:
        kind = os.environ.get(ENGINE_QUEUE_VAR) or "calendar"
    try:
        implementation = QUEUE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown engine queue {kind!r}; choose from "
            f"{sorted(QUEUE_KINDS)}"
        ) from None
    return implementation()
