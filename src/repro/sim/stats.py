"""Online statistics collectors used by the metrics layer.

All collectors are single-pass and O(1)-per-sample except the exact
percentile helpers, which retain samples (response-time sets in this
package are modest — at most a few hundred thousand floats).
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Optional, Sequence

__all__ = ["BucketHistogram", "OnlineStats", "TimeWeightedStat", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact percentile (linear interpolation) of ``samples``.

    ``q`` is in ``[0, 100]``.  Raises ``ValueError`` on an empty input.
    """
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return data[low]
    frac = rank - low
    # data[low] + frac * delta is exact when both endpoints are equal,
    # unlike the (1-frac)·a + frac·b form, which can drift by one ulp.
    return data[low] + frac * (data[high] - data[low])


class OnlineStats:
    """Welford-style running mean/variance plus min/max/sum."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two collectors (parallel Welford merge)."""
        merged = OnlineStats()
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other.mean - self.mean
        merged.count = n
        merged._mean = self.mean + delta * other.count / n
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / n
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        merged.total = self.total + other.total
        return merged


class BucketHistogram:
    """Histogram over explicit bucket edges, plus an overflow bucket.

    ``edges = [5, 10, 20]`` yields buckets ``<=5``, ``(5,10]``,
    ``(10,20]``, and ``>20`` — the shape used by the paper's CDF/PDF
    figures (e.g. response-time edges 5..200 with a ``200+`` bucket).
    """

    def __init__(self, edges: Sequence[float]):
        if not edges:
            raise ValueError("at least one bucket edge required")
        if list(edges) != sorted(edges):
            raise ValueError(f"edges must be sorted, got {list(edges)}")
        if len(set(edges)) != len(edges):
            raise ValueError(f"edges must be unique, got {list(edges)}")
        self.edges: List[float] = list(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0

    def add(self, value: float) -> None:
        index = bisect.bisect_left(self.edges, value)
        self.counts[index] += 1
        self.total += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def labels(self) -> List[str]:
        labels = [f"{edge:g}" for edge in self.edges]
        labels.append(f"{self.edges[-1]:g}+")
        return labels

    def pdf(self) -> List[float]:
        """Fraction of samples in each bucket."""
        if self.total == 0:
            return [0.0] * len(self.counts)
        return [count / self.total for count in self.counts]

    def cdf(self) -> List[float]:
        """Cumulative fraction at each bucket (last value is 1.0)."""
        values = []
        running = 0
        for count in self.counts:
            running += count
            values.append(running / self.total if self.total else 0.0)
        return values

    def merge(self, other: "BucketHistogram") -> "BucketHistogram":
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different edges")
        merged = BucketHistogram(self.edges)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.total = self.total + other.total
        return merged


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Used for, e.g., average queue depth and average power: call
    :meth:`record` whenever the value changes, then :meth:`finalize`.
    """

    def __init__(self, initial_time: float = 0.0, initial_value: float = 0.0):
        self._last_time = initial_time
        self._value = initial_value
        self._weighted_sum = 0.0
        self._elapsed = 0.0

    @property
    def value(self) -> float:
        return self._value

    def record(self, time: float, value: float) -> None:
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        span = time - self._last_time
        self._weighted_sum += self._value * span
        self._elapsed += span
        self._last_time = time
        self._value = value

    def finalize(self, time: Optional[float] = None) -> float:
        """Average up to ``time`` (defaults to the last recorded time)."""
        if time is not None:
            self.record(time, self._value)
        if self._elapsed == 0.0:
            return self._value
        return self._weighted_sum / self._elapsed
