"""Discrete-event simulation kernel.

A small, self-contained engine in the style of SimPy: an
:class:`~repro.sim.engine.Environment` owns simulated time and an event
heap; *processes* are Python generators that ``yield`` events (timeouts,
other processes, resource requests) and are resumed when those events
trigger.  The disk, RAID, and workload models in the rest of the package
are all built on this kernel.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.distributions import (
    BernoulliStream,
    ExponentialStream,
    NormalStream,
    ParetoStream,
    RandomStream,
    UniformStream,
)
from repro.sim.stats import BucketHistogram, OnlineStats, TimeWeightedStat

__all__ = [
    "AllOf",
    "AnyOf",
    "BernoulliStream",
    "BucketHistogram",
    "Environment",
    "Event",
    "ExponentialStream",
    "Interrupt",
    "NormalStream",
    "OnlineStats",
    "ParetoStream",
    "PriorityStore",
    "Process",
    "RandomStream",
    "Resource",
    "SimulationError",
    "Store",
    "TimeWeightedStat",
    "Timeout",
    "UniformStream",
]
