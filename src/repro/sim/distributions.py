"""Seeded random-variate streams used by the workload generators.

Every stream owns an independent :class:`random.Random` instance so that
two streams created with different seeds are statistically independent
and every simulation is exactly reproducible from its seed.
"""

from __future__ import annotations

import math
import random
from typing import Optional

__all__ = [
    "BernoulliStream",
    "ExponentialStream",
    "NormalStream",
    "ParetoStream",
    "RandomStream",
    "UniformStream",
    "ZipfStream",
]


class RandomStream:
    """Base class: a named, independently seeded source of variates."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = random.Random(seed)
        self._seed = seed

    @property
    def seed(self) -> Optional[int]:
        return self._seed

    def sample(self) -> float:
        raise NotImplementedError

    def __iter__(self):
        while True:
            yield self.sample()


class ExponentialStream(RandomStream):
    """Exponentially distributed variates with the given *mean*.

    Models Poisson inter-arrival times, as used by the paper's synthetic
    workloads (means of 8, 4, and 1 ms).
    """

    def __init__(self, mean: float, seed: Optional[int] = None):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        super().__init__(seed)
        self.mean = mean

    def sample(self) -> float:
        return self._rng.expovariate(1.0 / self.mean)


class UniformStream(RandomStream):
    """Uniform variates on ``[low, high)``."""

    def __init__(self, low: float, high: float, seed: Optional[int] = None):
        if high < low:
            raise ValueError(f"high ({high}) < low ({low})")
        super().__init__(seed)
        self.low = low
        self.high = high

    def sample(self) -> float:
        return self._rng.uniform(self.low, self.high)

    def sample_int(self) -> int:
        """A uniform integer in ``[low, high]`` (inclusive)."""
        return self._rng.randint(int(self.low), int(self.high))


class NormalStream(RandomStream):
    """Normal variates, optionally truncated at a minimum value."""

    def __init__(
        self,
        mean: float,
        stddev: float,
        minimum: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        if stddev < 0:
            raise ValueError(f"stddev must be non-negative, got {stddev}")
        super().__init__(seed)
        self.mean = mean
        self.stddev = stddev
        self.minimum = minimum

    def sample(self) -> float:
        value = self._rng.gauss(self.mean, self.stddev)
        if self.minimum is not None and value < self.minimum:
            value = self.minimum
        return value


class BernoulliStream(RandomStream):
    """True with probability ``p`` — used for read/write and sequential mixes."""

    def __init__(self, p: float, seed: Optional[int] = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        super().__init__(seed)
        self.p = p

    def sample(self) -> bool:
        return self._rng.random() < self.p


class ParetoStream(RandomStream):
    """Bounded Pareto variates (heavy-tailed burst sizes)."""

    def __init__(
        self,
        alpha: float,
        minimum: float,
        maximum: float = float("inf"),
        seed: Optional[int] = None,
    ):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if minimum <= 0:
            raise ValueError(f"minimum must be positive, got {minimum}")
        super().__init__(seed)
        self.alpha = alpha
        self.minimum = minimum
        self.maximum = maximum

    def sample(self) -> float:
        value = self.minimum * (1.0 - self._rng.random()) ** (-1.0 / self.alpha)
        return min(value, self.maximum)


class ZipfStream(RandomStream):
    """Zipf-distributed ranks over ``n`` items (hot-spot footprints).

    Uses the rejection-inversion method of Hörmann & Derflinger, which
    samples in O(1) without materialising the full rank distribution.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: Optional[int] = None):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if theta <= 0 or theta == 1.0:
            raise ValueError(f"theta must be positive and != 1, got {theta}")
        super().__init__(seed)
        self.n = n
        self.theta = theta
        self._q = 1.0 - theta
        self._h_x1 = self._h(1.5) - 1.0
        self._h_n = self._h(n + 0.5)
        self._s = 2.0 - self._h_inv(self._h(2.5) - 2.0 ** -theta)

    def _h(self, x: float) -> float:
        return (x ** self._q) / self._q

    def _h_inv(self, x: float) -> float:
        return (self._q * x) ** (1.0 / self._q)

    def sample_int(self) -> int:
        """A rank in ``[1, n]``; rank 1 is the hottest."""
        while True:
            u = self._h_n + self._rng.random() * (self._h_x1 - self._h_n)
            x = self._h_inv(u)
            k = math.floor(x + 0.5)
            if k - x <= self._s:
                return int(k)
            if u >= self._h(k + 0.5) - math.exp(-math.log(k) * self.theta):
                return int(k)

    def sample(self) -> float:
        return float(self.sample_int())
