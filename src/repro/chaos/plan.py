"""Seeded, deterministic chaos plans for the serve stack.

A :class:`ChaosPlan` is an ordered list of :class:`ChaosEvent`
injections, each naming a failpoint site (see
:data:`repro.chaos.failpoints.FAILPOINT_SITES`), a fault kind, and
the *occurrence* of that site at which it fires (the N-th time a
process reaches the site).  Plans follow the same discipline as
:mod:`repro.faults.plan`: they come from explicit construction
(tests, regression scenarios) or from :meth:`ChaosPlan.generate`,
which draws from a private ``random.Random(seed)`` in a fixed,
documented order so a given ``(seed, scenarios, workers, lease_s)``
always yields the same event list; they serialise to a small
versioned JSON document that round-trips exactly and is
schema-validated by ``repro chaos --validate`` /
:func:`repro.tools.validate.validate_chaos_plan_file`.

The campaign side never draws randomness: the *plan* is the
randomness, fixed before any worker starts, which is what makes chaos
campaigns replayable.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.chaos.failpoints import FAILPOINT_SITES

__all__ = [
    "CHAOS_KINDS",
    "KIND_SITES",
    "SCENARIO_ALIASES",
    "ChaosEvent",
    "ChaosPlan",
    "load_chaos_plan",
    "validate_chaos_plan",
    "write_chaos_plan",
]

#: The recognised chaos kinds, in the canonical generation order.
#:
#: - ``worker_kill``: the worker process dies instantly at the site
#:   (``os._exit`` — no cleanup, no ack, the lease is left behind).
#: - ``torn_write``: the file just renamed into place is truncated at
#:   byte ``truncate_at``, modelling power loss after a durable rename
#:   but before the data blocks hit the platter.
#: - ``enospc``: the site raises ``OSError(ENOSPC)``, modelling a full
#:   disk at the worst moment.
#: - ``clock_skew``: the process's lease clock reads ``skew_s``
#:   seconds ahead once the site's occurrence threshold is reached,
#:   modelling wall-clock skew between workers (premature lease-expiry
#:   requeues, double execution).
#: - ``hang``: the worker stalls ``hang_s`` seconds at the site,
#:   modelling a wedged process whose lease expires under it.
CHAOS_KINDS = (
    "worker_kill",
    "torn_write",
    "enospc",
    "clock_skew",
    "hang",
)

#: The failpoint sites each kind may target.  ``torn_write`` needs a
#: site that passes a written-file path; ``enospc`` models the write
#: failing, so it fires before the replace; kill/hang target
#: worker-side execution points.
KIND_SITES: Dict[str, Sequence[str]] = {
    "worker_kill": (
        "queue.lease.after_create",
        "queue.claim.after_rename",
        "queue.ack.before_rename",
        "queue.ack.after_rename",
        "service.job.before_run",
        "service.job.before_ack",
    ),
    "torn_write": (
        "queue.record.after_replace",
        "cache.put.after_replace",
    ),
    "enospc": (
        "queue.record.before_replace",
        "cache.put.before_replace",
    ),
    "clock_skew": ("queue.clock",),
    "hang": (
        "service.job.before_run",
        "service.job.before_ack",
    ),
}

#: CLI spellings (``repro chaos --scenarios kill,torn-write``) for the
#: canonical kind names.
SCENARIO_ALIASES = {
    "kill": "worker_kill",
    "worker-kill": "worker_kill",
    "torn-write": "torn_write",
    "enospc": "enospc",
    "clock-skew": "clock_skew",
    "hang": "hang",
}


@dataclass(frozen=True)
class ChaosEvent:
    """One injection: fire ``kind`` at the ``occurrence``-th hit of
    ``site`` (counted per process).

    ``worker`` restricts the event to the serve worker with that
    owner name (``None`` = any bound worker; client processes are
    never killed or hung regardless).  ``truncate_at`` is required
    for ``torn_write``, ``skew_s`` for ``clock_skew``, ``hang_s``
    for ``hang``.
    """

    site: str
    kind: str
    occurrence: int = 1
    worker: Optional[str] = None
    truncate_at: Optional[int] = None
    skew_s: Optional[float] = None
    hang_s: Optional[float] = None

    def __post_init__(self) -> None:
        problems = _validate_event(self.to_dict(), index=None)
        if problems:
            raise ValueError("; ".join(problems))

    def to_dict(self) -> Dict:
        payload: Dict = {"site": self.site, "kind": self.kind,
                         "occurrence": self.occurrence}
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.truncate_at is not None:
            payload["truncate_at"] = self.truncate_at
        if self.skew_s is not None:
            payload["skew_s"] = self.skew_s
        if self.hang_s is not None:
            payload["hang_s"] = self.hang_s
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "ChaosEvent":
        return cls(
            site=payload["site"],
            kind=payload["kind"],
            occurrence=int(payload.get("occurrence", 1)),
            worker=payload.get("worker"),
            truncate_at=payload.get("truncate_at"),
            skew_s=payload.get("skew_s"),
            hang_s=payload.get("hang_s"),
        )


def _validate_event(payload, index: Optional[int]) -> List[str]:
    where = "event" if index is None else f"events[{index}]"
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"{where}: expected an object, got {type(payload).__name__}"]
    kind = payload.get("kind")
    if kind not in CHAOS_KINDS:
        problems.append(
            f"{where}: kind {kind!r} not one of {list(CHAOS_KINDS)}"
        )
    site = payload.get("site")
    if site not in FAILPOINT_SITES:
        problems.append(
            f"{where}: site {site!r} is not a known failpoint site"
        )
    elif kind in KIND_SITES and site not in KIND_SITES[kind]:
        problems.append(
            f"{where}: kind {kind!r} cannot target site {site!r} "
            f"(eligible: {list(KIND_SITES[kind])})"
        )
    occurrence = payload.get("occurrence", 1)
    if (
        not isinstance(occurrence, int)
        or isinstance(occurrence, bool)
        or occurrence < 1
    ):
        problems.append(
            f"{where}: occurrence must be an int >= 1, got {occurrence!r}"
        )
    worker = payload.get("worker")
    if worker is not None and not isinstance(worker, str):
        problems.append(f"{where}: worker must be a string or null")
    truncate_at = payload.get("truncate_at")
    if kind == "torn_write":
        if (
            not isinstance(truncate_at, int)
            or isinstance(truncate_at, bool)
            or truncate_at < 0
        ):
            problems.append(
                f"{where}: torn_write requires truncate_at int >= 0, "
                f"got {truncate_at!r}"
            )
    elif truncate_at is not None:
        problems.append(f"{where}: truncate_at is only valid for torn_write")
    skew_s = payload.get("skew_s")
    if kind == "clock_skew":
        if (
            not isinstance(skew_s, (int, float))
            or isinstance(skew_s, bool)
            or not math.isfinite(skew_s)
            or skew_s == 0.0
        ):
            problems.append(
                f"{where}: clock_skew requires a finite non-zero skew_s, "
                f"got {skew_s!r}"
            )
    elif skew_s is not None:
        problems.append(f"{where}: skew_s is only valid for clock_skew")
    hang_s = payload.get("hang_s")
    if kind == "hang":
        if (
            not isinstance(hang_s, (int, float))
            or isinstance(hang_s, bool)
            or not math.isfinite(hang_s)
            or hang_s <= 0.0
        ):
            problems.append(
                f"{where}: hang requires a positive finite hang_s, "
                f"got {hang_s!r}"
            )
    elif hang_s is not None:
        problems.append(f"{where}: hang_s is only valid for hang")
    unknown = set(payload) - {
        "site", "kind", "occurrence", "worker",
        "truncate_at", "skew_s", "hang_s",
    }
    if unknown:
        problems.append(f"{where}: unknown fields {sorted(unknown)}")
    return problems


def validate_chaos_plan(payload) -> List[str]:
    """Schema-check a chaos-plan document; returns a problem list.

    An empty list means the payload is a valid plan.  Used by
    ``repro.tools.validate`` and ``repro chaos --validate``.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"plan: expected an object, got {type(payload).__name__}"]
    version = payload.get("version")
    if version != 1:
        problems.append(f"plan: version must be 1, got {version!r}")
    events = payload.get("events")
    if not isinstance(events, list):
        problems.append("plan: events must be a list")
        return problems
    for index, event in enumerate(events):
        problems.extend(_validate_event(event, index))
    seed = payload.get("seed")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool)):
        problems.append(f"plan: seed must be an int or null, got {seed!r}")
    unknown = set(payload) - {"version", "events", "seed"}
    if unknown:
        problems.append(f"plan: unknown fields {sorted(unknown)}")
    return problems


class ChaosPlan:
    """An ordered, replayable list of chaos injections.

    Event order is the plan order (there is no time axis — events fire
    when their site/occurrence condition is met); the position of an
    event in the list is its stable id, used by the injector's
    applied-once latches.  ``seed`` is metadata recording how a
    generated plan was drawn; it does not affect replay.
    """

    def __init__(self, events: Optional[List[ChaosEvent]] = None,
                 seed: Optional[int] = None):
        self.events: List[ChaosEvent] = list(events or [])
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ChaosPlan):
            return NotImplemented
        return self.events == other.events

    def counts_by_kind(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in CHAOS_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts

    @classmethod
    def empty(cls) -> "ChaosPlan":
        """The no-chaos plan: replaying it changes nothing."""
        return cls([])

    @classmethod
    def generate(
        cls,
        seed: int,
        scenarios: Optional[Sequence[str]] = None,
        workers: int = 2,
        lease_s: float = 2.0,
        max_events_per_kind: int = 2,
    ) -> "ChaosPlan":
        """Draw a stochastic plan with a fixed, documented draw order.

        For each requested kind, taken in :data:`CHAOS_KINDS` order,
        1..``max_events_per_kind`` events are drawn: a site from the
        kind's eligible list, an occurrence in 1..3, then the kind's
        parameters.  Durations scale with ``lease_s`` so hangs outlive
        the lease (forcing a requeue steal) and clock skews exceed it
        (forcing premature expiry); ``clock_skew`` events are scoped
        to one of the ``workers`` initial worker names so recovery
        rounds with fresh workers converge.
        """
        import random

        scenarios = tuple(scenarios) if scenarios else CHAOS_KINDS
        unknown = set(scenarios) - set(CHAOS_KINDS)
        if unknown:
            raise ValueError(
                f"unknown chaos scenarios {sorted(unknown)}; choose "
                f"from {list(CHAOS_KINDS)}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        if max_events_per_kind < 1:
            raise ValueError("max_events_per_kind must be >= 1")
        rng = random.Random(seed)
        events: List[ChaosEvent] = []
        for kind in CHAOS_KINDS:
            if kind not in scenarios:
                continue
            count = rng.randint(1, max_events_per_kind)
            for _ in range(count):
                site = rng.choice(list(KIND_SITES[kind]))
                occurrence = rng.randint(1, 3)
                if kind == "torn_write":
                    events.append(ChaosEvent(
                        site=site, kind=kind, occurrence=occurrence,
                        truncate_at=rng.randint(8, 120),
                    ))
                elif kind == "clock_skew":
                    events.append(ChaosEvent(
                        site=site, kind=kind, occurrence=occurrence,
                        worker=f"worker-{rng.randrange(workers)}",
                        skew_s=round(lease_s * rng.uniform(1.5, 3.0), 3),
                    ))
                elif kind == "hang":
                    events.append(ChaosEvent(
                        site=site, kind=kind, occurrence=occurrence,
                        hang_s=round(lease_s * rng.uniform(1.2, 2.0), 3),
                    ))
                else:  # worker_kill, enospc
                    events.append(ChaosEvent(
                        site=site, kind=kind, occurrence=occurrence,
                    ))
        return cls(events, seed=seed)

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict:
        payload: Dict = {
            "version": 1,
            "events": [event.to_dict() for event in self.events],
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "ChaosPlan":
        problems = validate_chaos_plan(payload)
        if problems:
            raise ValueError(
                "invalid chaos plan: " + "; ".join(problems)
            )
        return cls(
            [ChaosEvent.from_dict(event) for event in payload["events"]],
            seed=payload.get("seed"),
        )


def write_chaos_plan(plan: ChaosPlan, path: str) -> str:
    """Serialise ``plan`` to ``path`` as canonical JSON."""
    with open(path, "w", encoding="ascii") as handle:
        json.dump(plan.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_chaos_plan(path: str) -> ChaosPlan:
    """Load and validate a chaos plan from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return ChaosPlan.from_dict(payload)
