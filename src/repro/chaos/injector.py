"""The chaos injector: replays a :class:`ChaosPlan` at failpoints.

A :class:`ChaosInjector` implements the failpoint facility protocol
(:mod:`repro.chaos.failpoints`) with ``enabled = True``.  Install it
ambiently (``failpoints_session(injector)``) before forking serve
workers; each forked worker inherits its own copy-on-write instance,
so site hit counts are per process while the *applied-once latches*
are shared through the filesystem.

Matching: a plan event fires when its ``site`` is hit for the
``occurrence``-th time in this process, its ``worker`` restriction (if
any) matches the bound worker name, and its latch is won.  Latches
live under ``<state_dir>/applied/`` as exclusively-created JSON files
keyed by the event's position in the plan — so a kill event fires in
exactly one worker even though every forked worker counts its own
hits, and a restarted replacement worker (fresh hit counts) can never
re-fire an already-applied event.  Without a ``state_dir`` the latch
is in-process.

Safety: ``worker_kill`` and ``hang`` only apply in processes that
called :meth:`bind_worker` (serve workers do; clients never), so the
campaign driver submitting jobs through the same ambient injector
cannot be crashed or stalled by worker-targeted chaos.
"""

from __future__ import annotations

import errno
import json
import os
import time
from typing import Dict, List, Optional

from repro.chaos.plan import ChaosPlan

__all__ = ["ChaosInjector", "ChaosKill", "applied_events"]


class ChaosKill(BaseException):
    """Raised (``kill_mode='raise'``) in place of ``os._exit``.

    Derives from ``BaseException`` so the worker's job-level
    ``except Exception`` cannot swallow it — the worker dies exactly
    as it would on a real crash, minus the process teardown.
    """


class ChaosInjector:
    """Replay ``plan`` against the serve stack's failpoints.

    ``kill_mode`` selects how ``worker_kill`` dies: ``'exit'``
    (default) calls ``os._exit(137)`` — no cleanup runs, the lease is
    orphaned, exactly like a SIGKILL — and is only safe in worker
    child processes; ``'raise'`` raises :class:`ChaosKill` for
    in-process tests.  ``sleep_fn`` is injectable for testing hangs.
    """

    enabled = True

    def __init__(
        self,
        plan: ChaosPlan,
        state_dir: Optional[str] = None,
        kill_mode: str = "exit",
        sleep_fn=time.sleep,
    ):
        if kill_mode not in ("exit", "raise"):
            raise ValueError(
                f"kill_mode must be exit/raise, got {kill_mode!r}"
            )
        self.plan = plan
        self.state_dir = str(state_dir) if state_dir else None
        self.kill_mode = kill_mode
        self._sleep = sleep_fn
        self._hits: Dict[str, int] = {}
        self._worker: Optional[str] = None
        self._applied_local: set = set()
        #: Events applied by *this process* (the cross-process record
        #: is the latch directory; see :func:`applied_events`).
        self.applied: List[Dict] = []
        if self.state_dir:
            os.makedirs(
                os.path.join(self.state_dir, "applied"), exist_ok=True
            )

    # -- failpoint protocol ------------------------------------------------
    def bind_worker(self, worker: str) -> None:
        self._worker = worker

    def clock_skew(self, site: str) -> float:
        """Total skew from triggered ``clock_skew`` events at ``site``.

        Unlike one-shot faults, skew is a *condition*: once the site's
        hit count reaches an event's occurrence threshold, the offset
        applies to every subsequent read in this process.  Skew events
        are not latched — a skewed clock is skewed for every read, in
        every process the event's ``worker`` restriction matches.
        """
        count = self._hits.get(site, 0) + 1
        self._hits[site] = count
        skew = 0.0
        for event in self.plan.events:
            if (
                event.kind == "clock_skew"
                and event.site == site
                and count >= event.occurrence
                and self._matches_worker(event)
            ):
                skew += event.skew_s
        return skew

    def hit(self, site: str, path: Optional[str] = None) -> None:
        count = self._hits.get(site, 0) + 1
        self._hits[site] = count
        for index, event in enumerate(self.plan.events):
            if event.kind == "clock_skew":
                continue
            if event.site != site or event.occurrence != count:
                continue
            if not self._matches_worker(event):
                continue
            if event.kind in ("worker_kill", "hang") and self._worker is None:
                continue  # never crash or stall an unbound (client) process
            if event.kind == "torn_write" and path is None:
                continue
            if not self._claim_latch(index, event, path):
                continue
            self._apply(event, path)

    # -- internals ---------------------------------------------------------
    def _matches_worker(self, event) -> bool:
        return event.worker is None or event.worker == self._worker

    def _claim_latch(self, index: int, event, path: Optional[str]) -> bool:
        """Win the applied-once latch for plan event ``index``.

        Filesystem-backed when a ``state_dir`` was given (exclusive
        create arbitrates across processes and worker restarts),
        in-process otherwise.
        """
        record = {
            "event": event.to_dict(),
            "index": index,
            "worker": self._worker,
            "pid": os.getpid(),
            "path": path,
            "applied_at": time.time(),
        }
        if self.state_dir is None:
            if index in self._applied_local:
                return False
            self._applied_local.add(index)
            return True
        latch = os.path.join(
            self.state_dir, "applied", f"event-{index:03d}.json"
        )
        try:
            fd = os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="ascii") as handle:
            json.dump(record, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return True

    def _apply(self, event, path: Optional[str]) -> None:
        self.applied.append(
            {"event": event.to_dict(), "path": path}
        )
        from repro.obs.metrics import current_metrics

        metrics = current_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_chaos_injections_total",
                "Chaos-plan events applied by the injector",
                labels=("kind",),
            ).labels(kind=event.kind).inc()
        if event.kind == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"No space left on device (chaos at {event.site})",
            )
        if event.kind == "torn_write":
            with open(path, "r+b") as handle:
                handle.truncate(event.truncate_at)
            return
        if event.kind == "hang":
            self._sleep(event.hang_s)
            return
        if event.kind == "worker_kill":
            if self.kill_mode == "raise":
                raise ChaosKill(
                    f"chaos worker_kill at {event.site}"
                )
            os._exit(137)


def applied_events(state_dir: str) -> List[Dict]:
    """The cross-process applied-event records, in plan order.

    Reads the latch files an injector (in any process) wrote under
    ``<state_dir>/applied/``; the campaign report embeds these.
    """
    applied_dir = os.path.join(str(state_dir), "applied")
    records: List[Dict] = []
    if not os.path.isdir(applied_dir):
        return records
    for name in sorted(os.listdir(applied_dir)):
        if not name.endswith(".json"):
            continue
        try:
            with open(
                os.path.join(applied_dir, name), "r", encoding="ascii"
            ) as handle:
                records.append(json.load(handle))
        except (OSError, ValueError):
            continue  # a latch torn by the kill it recorded
    return records
