"""Seeded, replayable chaos engineering for the serve stack.

The package splits the same way :mod:`repro.faults` does:

* :mod:`repro.chaos.failpoints` — the zero-cost-when-disabled site
  facility threaded through the serve stack.
* :mod:`repro.chaos.plan` — versioned, validated, seed-generated
  chaos plans (what to inject, where, when).
* :mod:`repro.chaos.injector` — replays a plan at the failpoints,
  with cross-process applied-once latches.
* :mod:`repro.chaos.campaign` — the invariant-checked campaign loop
  behind ``python -m repro chaos``.
"""

from repro.chaos.failpoints import (
    FAILPOINT_SITES,
    NULL_FAILPOINTS,
    NullFailpoints,
    current_failpoints,
    failpoints_session,
    set_current_failpoints,
)
from repro.chaos.injector import ChaosInjector, ChaosKill, applied_events
from repro.chaos.plan import (
    CHAOS_KINDS,
    KIND_SITES,
    SCENARIO_ALIASES,
    ChaosEvent,
    ChaosPlan,
    load_chaos_plan,
    validate_chaos_plan,
    write_chaos_plan,
)

# The campaign runner imports the serve stack, whose modules import
# repro.chaos.failpoints — a cycle if campaign loaded eagerly here.
# PEP 562 lazy attributes break it: the campaign module only loads on
# first access, long after both packages are initialised.
_CAMPAIGN_EXPORTS = ("CampaignResult", "resolve_scenarios", "run_campaign")


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from repro.chaos import campaign

        return getattr(campaign, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "CHAOS_KINDS",
    "CampaignResult",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosKill",
    "ChaosPlan",
    "FAILPOINT_SITES",
    "KIND_SITES",
    "NULL_FAILPOINTS",
    "NullFailpoints",
    "SCENARIO_ALIASES",
    "applied_events",
    "current_failpoints",
    "failpoints_session",
    "load_chaos_plan",
    "resolve_scenarios",
    "run_campaign",
    "set_current_failpoints",
    "validate_chaos_plan",
    "write_chaos_plan",
]
