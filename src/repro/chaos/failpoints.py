"""Zero-cost-when-disabled failpoints for the serve stack.

A *failpoint* is a named site threaded through the serve code paths
(queue writes, lease creation, claim/ack renames, cache writes, the
lease clock) where a chaos run may inject a failure.  The facility
mirrors the tracer's and metrics layer's zero-cost contract exactly:
the ambient default is the :data:`NULL_FAILPOINTS` singleton whose
:attr:`~NullFailpoints.enabled` flag is ``False``, every site guards
with ``if fp.enabled:`` before constructing arguments, and the
``ExplodingFailpoints`` test in ``tests/chaos/test_failpoints.py``
proves no failpoint method is evaluated on the clean path.

Two site operations:

* :meth:`~NullFailpoints.hit` — an execution point was reached.  An
  active :class:`~repro.chaos.injector.ChaosInjector` may respond by
  raising ``ENOSPC``, tearing the just-written file, hanging, or
  killing the worker.  Sites that write a file pass its ``path`` so
  torn-write faults know what to truncate.
* :meth:`~NullFailpoints.clock_skew` — the queue is about to read the
  wall clock for lease arithmetic; the returned offset (seconds) is
  added, modelling clock skew between workers.

:meth:`~NullFailpoints.bind_worker` tells the facility which serve
worker this process is (set by ``worker_loop``); process-killing and
hanging faults only apply once bound, so a *client* process sharing
the injector (the campaign driver submitting jobs) can never be
crashed by worker-targeted chaos.

Discovery mirrors :mod:`repro.obs.metrics`: an ambient instance via
:func:`current_failpoints` / :func:`set_current_failpoints` /
:func:`failpoints_session`.  Worker processes forked by ``serve()``
inherit the ambient injector (POSIX ``fork`` start method).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "FAILPOINT_SITES",
    "NULL_FAILPOINTS",
    "NullFailpoints",
    "current_failpoints",
    "failpoints_session",
    "set_current_failpoints",
]

#: Every named failpoint site threaded through the serve stack, in
#: path order.  Chaos plans are validated against this list so a typo
#: in a site name fails loudly instead of silently never firing.
FAILPOINT_SITES = (
    # queue record writes (_write_json_atomic): enqueue, ack outcome,
    # requeue attempt bumps, quarantine diagnostics.
    "queue.record.before_replace",
    "queue.record.after_replace",
    # the exclusive lease link that arbitrates a claim.
    "queue.lease.after_create",
    # the pending -> claimed rename that wins a claim.
    "queue.claim.after_rename",
    # the claimed -> done/failed rename that finishes a job.
    "queue.ack.before_rename",
    "queue.ack.after_rename",
    # the wall-clock read used for lease create/expiry arithmetic.
    "queue.clock",
    # result-cache payload writes.
    "cache.put.before_replace",
    "cache.put.after_replace",
    # worker job processing: after claim, before simulating; and
    # after the result is in the cache, before the ack rename.
    "service.job.before_run",
    "service.job.before_ack",
)


class NullFailpoints:
    """The zero-cost disabled facility.

    Every method is a no-op (``clock_skew`` returns 0.0) and
    :attr:`enabled` is ``False`` so instrumented sites skip argument
    construction entirely.  Use the :data:`NULL_FAILPOINTS` singleton
    rather than instantiating.
    """

    enabled = False
    __slots__ = ()

    def hit(self, site: str, path: Optional[str] = None) -> None:
        pass

    def clock_skew(self, site: str) -> float:
        return 0.0

    def bind_worker(self, worker: str) -> None:
        pass


NULL_FAILPOINTS = NullFailpoints()

#: The ambient facility consulted by the serve stack's sites.
_ambient: object = NULL_FAILPOINTS


def current_failpoints():
    """The ambient failpoint facility (default: disabled singleton)."""
    return _ambient


def set_current_failpoints(failpoints) -> object:
    """Install ``failpoints`` as ambient; returns the previous one.

    ``None`` restores the disabled singleton.
    """
    global _ambient
    previous = _ambient
    _ambient = failpoints if failpoints is not None else NULL_FAILPOINTS
    return previous


@contextmanager
def failpoints_session(failpoints) -> Iterator[object]:
    """Install ``failpoints`` as ambient for the ``with`` body."""
    previous = set_current_failpoints(failpoints)
    try:
        yield failpoints
    finally:
        set_current_failpoints(previous)
