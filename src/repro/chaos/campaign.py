"""Invariant-checked chaos campaigns against a live queue.

A campaign is the full adversarial loop:

1. Build a set of unique job specs and compute their **clean
   baseline** payloads in-process (the simulator is deterministic, so
   the baseline is exactly what an undisturbed serve run would
   produce).
2. Replay a seeded :class:`~repro.chaos.plan.ChaosPlan` through a
   :class:`~repro.chaos.injector.ChaosInjector` while submitting the
   jobs (with client retries) and draining them through a supervised
   multi-worker ``serve()`` — workers get killed, writes get torn,
   disks fill, clocks skew, processes hang.
3. Run bounded **recovery rounds** with chaos off: scrub and requeue
   the queue, resubmit specs with no healthy path to ``done``, and
   drain again until every spec converges (or the recovery budget is
   exhausted).
4. Check the invariants the serve stack promises to keep under any of
   the injected failures:

   * **no_lost_jobs** — every submitted spec ends with a verified
     ``done`` result.
   * **no_divergent_results** — every ``done`` outcome for a spec
     reports the baseline figures digest, and the cached payload
     bytes equal the baseline bytes exactly (duplicates allowed,
     divergence never).
   * **corrupt_quarantined** — every quarantined record/payload has a
     ``.reason.json`` diagnostics sidecar, and no torn record remains
     in a live queue state.
   * **cache_integrity** — every payload left in the cache passes
     :func:`~repro.serve.jobs.verify_result_payload`; the cache never
     ends a campaign holding bytes it would serve corrupt.

The campaign itself draws no randomness: the plan *is* the
randomness, so ``run_campaign(seed=7)`` is replayable bit-for-bit.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

from repro.chaos.failpoints import failpoints_session
from repro.chaos.injector import ChaosInjector, applied_events
from repro.chaos.plan import SCENARIO_ALIASES, ChaosPlan
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JobSpec,
    cache_key,
    result_payload_bytes,
    run_job,
    verify_result_payload,
)
from repro.serve.queue import CORRUPT_STATE, QUEUE_STATES, JobQueue
from repro.serve.service import serve, submit

__all__ = ["CampaignResult", "resolve_scenarios", "run_campaign"]

#: The workload rotation for campaign job specs.
_WORKLOADS = ("financial", "websearch", "tpcc", "tpch")


def resolve_scenarios(
    scenarios: Optional[Sequence[str]],
) -> Optional[List[str]]:
    """Map CLI spellings (``kill``, ``torn-write``) to canonical
    kinds, passing canonical names through; ``None`` means all."""
    if scenarios is None:
        return None
    resolved = []
    for name in scenarios:
        name = name.strip()
        if not name:
            continue
        kind = SCENARIO_ALIASES.get(name, name)
        if kind not in resolved:
            resolved.append(kind)
    return resolved or None


class CampaignResult:
    """The outcome of one campaign: invariants, counters, the plan."""

    def __init__(
        self,
        seed: Optional[int],
        scenarios: Optional[List[str]],
        plan: ChaosPlan,
        applied: List[Dict],
        invariants: Dict[str, bool],
        violations: List[str],
        counters: Dict[str, object],
    ):
        self.seed = seed
        self.scenarios = scenarios
        self.plan = plan
        self.applied = applied
        self.invariants = invariants
        self.violations = violations
        self.counters = counters

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "schema": "repro-chaos-campaign/1",
            "ok": self.ok,
            "seed": self.seed,
            "scenarios": self.scenarios,
            "plan": self.plan.to_dict(),
            "applied": self.applied,
            "invariants": self.invariants,
            "violations": self.violations,
            "counters": self.counters,
        }


def _campaign_specs(seed: int, jobs: int, requests: int) -> List[JobSpec]:
    """``jobs`` unique specs: workload rotation, per-spec trace seeds
    derived from the campaign seed (distinct cache keys per job)."""
    return [
        JobSpec(
            workload=_WORKLOADS[index % len(_WORKLOADS)],
            requests=requests,
            seed=1000 * seed + index,
        )
        for index in range(jobs)
    ]


def _spec_records(queue: JobQueue) -> Dict[str, Dict[str, List[Dict]]]:
    """All readable records grouped ``cache_key -> state -> [record]``.

    Torn records are skipped (the caller scrubs first, so anything
    unreadable here is already quarantined or racing to be).
    """
    grouped: Dict[str, Dict[str, List[Dict]]] = {}
    for state in QUEUE_STATES:
        for job_id in queue.jobs(state):
            record, problem = queue._read_record(
                queue._record_path(state, job_id)
            )
            if record is None or problem is not None:
                continue
            key = record.get("cache_key")
            if not key:
                continue
            record["job_id"] = job_id
            grouped.setdefault(key, {}).setdefault(state, []).append(
                record
            )
    return grouped


def _cache_corrupt_entries(cache_root: str) -> List[str]:
    corrupt_root = os.path.join(cache_root, "corrupt")
    found = []
    for directory, _, files in os.walk(corrupt_root):
        for name in files:
            if name.endswith(".json") and ".reason." not in name:
                found.append(os.path.join(directory, name))
    return sorted(found)


def _missing_sidecars(paths: List[str]) -> List[str]:
    return [
        path
        for path in paths
        if not os.path.exists(path[: -len(".json")] + ".reason.json")
    ]


def run_campaign(
    queue_dir: str,
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    plan: Optional[ChaosPlan] = None,
    jobs: int = 4,
    workers: int = 2,
    requests: int = 150,
    lease_s: float = 2.0,
    max_attempts: int = 8,
    max_restarts: int = 6,
    recovery_timeout_s: float = 120.0,
    durable: bool = False,
) -> CampaignResult:
    """Run one seeded chaos campaign against ``queue_dir``.

    ``plan`` overrides generation (``seed`` then only names the spec
    trace seeds); otherwise the plan is
    ``ChaosPlan.generate(seed, scenarios, workers, lease_s)``.
    ``durable`` is off by default — campaigns hammer a scratch queue
    and the fsyncs would dominate the wall clock; the chaos being
    injected (torn writes) happens above the durability layer either
    way.

    Never run against a production queue: the injector's latches and
    the recovery resubmissions assume the campaign owns the directory.
    """
    scenario_kinds = resolve_scenarios(scenarios)
    if plan is None:
        plan = ChaosPlan.generate(
            seed, scenarios=scenario_kinds, workers=workers,
            lease_s=lease_s,
        )
    specs = _campaign_specs(seed, jobs, requests)

    # Clean baselines, computed before any chaos: the byte-identity
    # yardstick every post-recovery result is held to.
    baselines: Dict[str, Dict] = {}
    for spec in specs:
        key = cache_key(spec)
        payload, _ = run_job(spec)
        baselines[key] = {
            "spec": spec,
            "digest": payload["figures_sha256"],
            "payload": result_payload_bytes(payload),
        }

    queue = JobQueue(
        queue_dir,
        lease_s=lease_s,
        max_attempts=max_attempts,
        durable=durable,
    )
    cache_root = os.path.join(str(queue_dir), "cache")
    cache = ResultCache(cache_root)
    state_dir = os.path.join(str(queue_dir), "chaos")
    injector = ChaosInjector(plan, state_dir=state_dir)

    submitted = 0
    resubmitted = 0
    exit_codes: List[int] = []
    recovery_rounds = 0
    violations: List[str] = []

    # -- phase 1: chaos ---------------------------------------------------
    with failpoints_session(injector):
        for spec in specs:
            submit(
                queue_dir, spec,
                retries=6, deadline_s=30.0, retry_seed=seed,
            )
            submitted += 1
        exit_codes.extend(
            serve(
                queue_dir,
                workers=workers,
                drain=True,
                poll_interval_s=0.05,
                lease_s=lease_s,
                max_attempts=max_attempts,
                max_restarts=max_restarts,
                durable=durable,
            )
        )
    chaos_incarnations = len(exit_codes)

    # -- phase 2: recovery (chaos off) ------------------------------------
    def satisfied(key: str, grouped) -> bool:
        baseline = baselines[key]
        for record in grouped.get(key, {}).get("done", []):
            outcome = record.get("outcome") or {}
            if outcome.get("figures_sha256") != baseline["digest"]:
                continue
            stored = cache.get(key)
            if stored is None or verify_result_payload(stored):
                continue
            if stored == baseline["payload"]:
                return True
        return False

    deadline = time.monotonic() + recovery_timeout_s
    while True:
        queue.scrub()
        queue.requeue_stale()
        grouped = _spec_records(queue)
        missing = [
            key for key in baselines if not satisfied(key, grouped)
        ]
        if not missing:
            break
        if time.monotonic() > deadline:
            violations.append(
                f"recovery timeout: {len(missing)} spec(s) never "
                f"reached a verified done state"
            )
            break
        for key in missing:
            states = grouped.get(key, {})
            if states.get("pending") or states.get("claimed"):
                continue  # a live path exists; let the drain finish it
            stored = cache.get(key)
            if stored is not None and verify_result_payload(stored):
                # A torn payload squats on the first-write-wins slot;
                # clear it so the rerun can store clean bytes.
                cache.quarantine(
                    key, verify_result_payload(stored) or "corrupt"
                )
            submit(queue_dir, baselines[key]["spec"])
            resubmitted += 1
        exit_codes.extend(
            serve(
                queue_dir,
                workers=workers,
                drain=True,
                poll_interval_s=0.05,
                lease_s=lease_s,
                max_attempts=max_attempts,
                max_restarts=max_restarts,
                durable=durable,
            )
        )
        recovery_rounds += 1

    # -- phase 3: invariants ----------------------------------------------
    queue.scrub()
    grouped = _spec_records(queue)

    lost = [key for key in baselines if not satisfied(key, grouped)]
    for key in lost:
        violations.append(
            f"lost job: spec {key[:12]} has no verified done result"
        )

    for key, baseline in baselines.items():
        digests = {
            (record.get("outcome") or {}).get("figures_sha256")
            for record in grouped.get(key, {}).get("done", [])
        }
        divergent = digests - {baseline["digest"]}
        if divergent:
            violations.append(
                f"divergent results for spec {key[:12]}: done outcomes "
                f"report {sorted(d or 'missing' for d in divergent)} "
                f"besides the baseline digest"
            )
        stored = cache.get(key)
        if stored is not None and stored != baseline["payload"]:
            violations.append(
                f"divergent cache payload for spec {key[:12]}"
            )

    corrupt_records = [
        os.path.join(queue.root, CORRUPT_STATE, f"{job_id}.json")
        for job_id in queue.jobs(CORRUPT_STATE)
    ]
    corrupt_cache = _cache_corrupt_entries(cache_root)
    for path in _missing_sidecars(corrupt_records + corrupt_cache):
        violations.append(
            f"quarantined file without diagnostics sidecar: {path}"
        )

    cache_problems = []
    for key in cache.keys():
        stored = cache.get(key)
        problem = (
            verify_result_payload(stored)
            if stored is not None
            else "vanished during check"
        )
        if problem is not None:
            cache_problems.append((key, problem))
    for key, problem in cache_problems:
        violations.append(f"cache integrity: key {key[:12]}: {problem}")

    invariants = {
        "no_lost_jobs": not lost,
        "no_divergent_results": not any(
            v.startswith("divergent") for v in violations
        ),
        "corrupt_quarantined": not any(
            v.startswith("quarantined file") for v in violations
        ),
        "cache_integrity": not cache_problems,
    }

    counters = {
        "jobs": jobs,
        "submitted": submitted,
        "resubmitted": resubmitted,
        "recovery_rounds": recovery_rounds,
        "worker_exit_codes": exit_codes,
        "chaos_restarts": max(0, chaos_incarnations - workers),
        "plan_events": len(plan),
        "applied_events": len(applied_events(state_dir)),
        "quarantined_records": len(queue.jobs(CORRUPT_STATE)),
        "quarantined_cache_payloads": len(corrupt_cache),
        "queue_counts": queue.counts(),
    }
    return CampaignResult(
        seed=plan.seed if plan.seed is not None else seed,
        scenarios=scenario_kinds,
        plan=plan,
        applied=applied_events(state_dir),
        invariants=invariants,
        violations=violations,
        counters=counters,
    )
