"""Job specs, their cache digests, and the job runner.

A :class:`JobSpec` names everything that determines a simulation's
figures: the trace (a commercial-workload generator or an on-disk
trace file) and the system configuration.  Three digests make the
result cache content-addressed:

* ``config_digest`` — the figure-determining configuration fields.
  Execution-only knobs (chunk size) are excluded: they change *how*
  the run executes, never what it measures.
* ``trace_digest`` — the exact bytes of a trace file, or the
  ``(workload, seed)`` generation identity for synthesized traces.
* ``code_version`` — a digest of the installed ``repro`` source tree,
  so a code change invalidates every cached result.

``cache_key`` hashes the three together; :func:`run_job` produces the
canonical result payload whose bytes are identical for every run of
the same key (the simulator is deterministic, and the payload carries
no timestamps or host state).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from repro.workloads.streaming import (
    DEFAULT_CHUNK_REQUESTS,
    StreamingTrace,
)

__all__ = [
    "JOB_SCHEMA",
    "JobSpec",
    "cache_key",
    "code_version",
    "result_payload_bytes",
    "run_job",
    "verify_result_payload",
]

JOB_SCHEMA = "repro-job/1"
RESULT_SCHEMA = "repro-result/1"

_SYSTEMS = ("hcsd", "md")


@dataclass(frozen=True)
class JobSpec:
    """One simulation request, as submitted by a client.

    Exactly one of ``workload`` (a commercial workload name, trace
    synthesized at run time from ``seed``) and ``trace_path`` (an
    on-disk trace replayed through :class:`StreamingTrace`) must be
    set.  ``requests`` counts generated requests for workload jobs and
    truncates (``None`` = whole file) for trace-file jobs.
    """

    workload: Optional[str] = None
    trace_path: Optional[str] = None
    trace_format: Optional[str] = None
    system: str = "hcsd"
    requests: Optional[int] = 4000
    actuators: int = 1
    rpm: Optional[float] = None
    seed: Optional[int] = None
    #: Source-disk count a trace file's addresses are wrapped onto
    #: (trace-file jobs only; ``repro trace stat`` reports it).
    disks: int = 1
    #: Execution-only: replay chunk size (excluded from digests).
    chunk_requests: int = DEFAULT_CHUNK_REQUESTS

    def validate(self) -> None:
        if bool(self.workload) == bool(self.trace_path):
            raise ValueError(
                "exactly one of workload and trace_path must be set"
            )
        if self.system not in _SYSTEMS:
            raise ValueError(
                f"system must be one of {_SYSTEMS}, got {self.system!r}"
            )
        if self.workload:
            from repro.workloads.commercial import COMMERCIAL_WORKLOADS

            if self.workload not in COMMERCIAL_WORKLOADS:
                raise ValueError(
                    f"unknown workload {self.workload!r}; choose from "
                    f"{sorted(COMMERCIAL_WORKLOADS)}"
                )
            if self.requests is None or self.requests <= 0:
                raise ValueError(
                    "workload jobs need a positive requests count, got "
                    f"{self.requests}"
                )
        else:
            if self.system == "md":
                raise ValueError(
                    "trace-file jobs replay onto the HC-SD system; the "
                    "MD array needs a workload's Table-2 geometry"
                )
            if self.requests is not None and self.requests <= 0:
                raise ValueError(
                    f"requests must be positive or None, got "
                    f"{self.requests}"
                )
            if self.disks < 1:
                raise ValueError(
                    f"disks must be >= 1, got {self.disks}"
                )
        if self.actuators < 1:
            raise ValueError(
                f"actuators must be >= 1, got {self.actuators}"
            )
        if self.chunk_requests < 1:
            raise ValueError(
                f"chunk_requests must be >= 1, got {self.chunk_requests}"
            )

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["schema"] = JOB_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "JobSpec":
        data = dict(payload)
        schema = data.pop("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise ValueError(
                f"unsupported job schema {schema!r} (expected "
                f"{JOB_SCHEMA})"
            )
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(
                f"unknown job fields: {sorted(unknown)}"
            )
        spec = cls(**data)
        spec.validate()
        return spec

    # -- digests ----------------------------------------------------------
    def config_digest(self) -> str:
        """Digest of the figure-determining configuration."""
        config = {
            "system": self.system,
            "requests": self.requests,
            "actuators": self.actuators,
            "rpm": self.rpm,
            "disks": self.disks if self.trace_path else None,
        }
        return _sha256_json(config)

    def trace_digest(self) -> str:
        """Digest of the trace identity (file bytes or generator)."""
        if self.trace_path:
            return _file_digest(self.trace_path)
        return _sha256_json(
            {"generated": self.workload, "seed": self.seed}
        )


def _sha256_json(value) -> str:
    payload = json.dumps(value, sort_keys=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def _file_digest(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Digest of the installed ``repro`` package's source files.

    Hashing (relative path, bytes) pairs in sorted order gives a
    version identifier that changes with any code change and needs no
    git checkout — the property the result cache keys on.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, _, files in sorted(os.walk(root)):
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                rel = os.path.relpath(path, root)
                digest.update(rel.encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def cache_key(spec: JobSpec) -> str:
    """The content address of ``spec``'s result."""
    spec.validate()
    combined = json.dumps(
        {
            "config": spec.config_digest(),
            "trace": spec.trace_digest(),
            "code": code_version(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(combined.encode("ascii")).hexdigest()


class _WrappedStream(StreamingTrace):
    """A trace file's addresses wrapped onto a target address space.

    Arbitrary trace files address arbitrary devices; the replay system
    has ``disks`` source extents of ``extent_sectors`` each.  Wrapping
    ``source_disk`` and ``lba`` modulo the target space (the standard
    trace-replay convention) keeps every request in range while
    preserving locality structure.  ``limit`` truncates the stream.
    """

    def __init__(
        self,
        path: str,
        trace_format: Optional[str],
        chunk_requests: int,
        disks: int,
        extent_sectors: int,
        limit: Optional[int],
    ):
        super().__init__(
            path,
            trace_format=trace_format,
            chunk_requests=chunk_requests,
        )
        self._disks = disks
        self._extent = extent_sectors
        self._limit = limit

    def __iter__(self):
        yielded = 0
        for request in super().__iter__():
            if self._limit is not None and yielded >= self._limit:
                return
            request.source_disk %= self._disks
            size = min(request.size, self._extent)
            request.size = size
            request.lba %= max(1, self._extent - size)
            yielded += 1
            yield request


def _build_system(spec: JobSpec, env):
    from repro.disk.specs import BARRACUDA_ES
    from repro.experiments.configs import (
        build_hcsd_drive,
        build_hcsd_system,
        build_md_system,
    )
    from repro.raid.array import DiskArray
    from repro.raid.layout import ConcatLayout
    from repro.workloads.commercial import COMMERCIAL_WORKLOADS

    if spec.workload:
        workload = COMMERCIAL_WORKLOADS[spec.workload]
        if spec.system == "md":
            return build_md_system(env, workload)
        return build_hcsd_system(
            env, workload, actuators=spec.actuators, rpm=spec.rpm
        )
    drive = build_hcsd_drive(
        env, actuators=spec.actuators, rpm=spec.rpm
    )
    extent = drive.geometry.total_sectors // spec.disks
    layout = ConcatLayout([extent] * spec.disks)
    suffix = f"-SA({spec.actuators})" if spec.actuators > 1 else ""
    return DiskArray(
        env,
        [drive],
        layout,
        label=f"HC-SD{suffix}-replay",
    )


def run_job(
    spec: JobSpec,
    on_chunk=None,
) -> Tuple[Dict, Dict]:
    """Execute ``spec`` and return ``(payload, stats)``.

    ``payload`` is the canonical, cacheable result — figures only, no
    timestamps, no host state — so its serialized bytes are identical
    for every execution of the same cache key.  ``stats`` carries the
    per-run extras (extent geometry, chunk count) a worker may log but
    must not cache.
    """
    from repro.experiments.runner import run_trace
    from repro.sim.engine import Environment

    spec.validate()
    env = Environment()
    system = _build_system(spec, env)
    chunks = 0

    def count_chunk(progress):
        nonlocal chunks
        chunks += 1
        if on_chunk is not None:
            on_chunk(progress)

    if spec.workload:
        from repro.workloads.commercial import COMMERCIAL_WORKLOADS

        workload = COMMERCIAL_WORKLOADS[spec.workload]
        trace = workload.generate(spec.requests, seed=spec.seed)
        result = run_trace(env, system, trace)
    else:
        drive = system.drives[0]
        stream = _WrappedStream(
            spec.trace_path,
            spec.trace_format,
            spec.chunk_requests,
            spec.disks,
            drive.geometry.total_sectors // spec.disks,
            spec.requests,
        )
        result = run_trace(
            env,
            system,
            stream,
            keep_samples=False,
            on_chunk=count_chunk,
        )
    collector = result.collector
    figures = {
        "label": result.label,
        "requests": result.requests,
        "elapsed_ms": result.elapsed_ms,
        "mean_response_ms": collector.mean_response_ms,
        "max_response_ms": (
            collector.response_stats.maximum if collector.completed else 0.0
        ),
        "mean_rotational_ms": collector.mean_rotational_ms,
        "mean_seek_ms": collector.mean_seek_ms,
        "cache_hit_fraction": (
            collector.cache_hits / collector.completed
            if collector.completed
            else 0.0
        ),
        "response_cdf": collector.response_cdf(),
        "rotational_pdf": collector.rotational_pdf(),
        "power_watts": result.power.as_dict(),
    }
    if collector.keep_samples and collector.response_times:
        figures["p90_response_ms"] = collector.response_percentile(90)
    payload = {
        "schema": RESULT_SCHEMA,
        "job": _canonical_job(spec),
        "figures": figures,
        "figures_sha256": _sha256_json(figures),
    }
    stats = {"chunks": chunks, "completed": collector.completed}
    return payload, stats


def _canonical_job(spec: JobSpec) -> Dict:
    """The job identity stored inside the payload: digests, not paths.

    Embedding the *digests* (rather than the submitting client's local
    paths) keeps payload bytes identical when two clients submit the
    same trace from different locations.
    """
    return {
        "config_digest": spec.config_digest(),
        "trace_digest": spec.trace_digest(),
        "code_version": code_version(),
    }


def result_payload_bytes(payload: Dict) -> bytes:
    """Canonical serialized form of a result payload.

    Sorted keys, fixed separators, trailing newline: the exact bytes
    the cache stores and byte-identity checks compare.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("ascii")


def verify_result_payload(payload_bytes: bytes) -> Optional[str]:
    """Integrity-check cached payload bytes; returns the problem.

    ``None`` means intact: the bytes parse, carry the result schema,
    and the embedded ``figures_sha256`` matches a recomputation over
    the figures — the self-check that catches a torn cache write or
    bit rot before a worker serves it as a cache hit.
    """
    try:
        payload = json.loads(payload_bytes.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        return f"torn JSON ({error}; {len(payload_bytes)} bytes)"
    if not isinstance(payload, dict):
        return f"not a payload object ({type(payload).__name__})"
    if payload.get("schema") != RESULT_SCHEMA:
        return (
            f"unexpected schema {payload.get('schema')!r} "
            f"(expected {RESULT_SCHEMA!r})"
        )
    figures = payload.get("figures")
    stored = payload.get("figures_sha256")
    if not isinstance(figures, dict) or not stored:
        return "missing figures/figures_sha256"
    if _sha256_json(figures) != stored:
        return "figures_sha256 mismatch (torn write or bit rot)"
    return None
