"""Simulation-as-a-service: a persistent job queue over the simulator.

The paper's "serve heavy traffic" story for this repo: clients submit
simulation jobs (``python -m repro submit``), N worker processes drain
a crash-safe on-disk queue (``python -m repro serve``), and results
land in a content-addressed cache keyed by ``(config digest, trace
digest, code version)`` — so a duplicate submission costs one cache
read, not one simulation, and returns byte-identical payloads.

* :mod:`repro.serve.jobs` — the job spec, its digests, and the job
  runner (replays in-memory workload traces or streamed trace files).
* :mod:`repro.serve.queue` — the persistent queue: atomic claim/ack
  via rename, lease-based crash-safe requeue, checksummed records
  with a ``corrupt/`` quarantine for torn files.
* :mod:`repro.serve.cache` — the content-addressed result store.
* :mod:`repro.serve.retry` — deterministic-jitter client backoff.
* :mod:`repro.serve.service` — worker loop (graceful SIGTERM drain),
  supervised multi-process ``serve``, and the submit/status/result
  client calls the CLI wraps.
"""

from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JobSpec,
    cache_key,
    code_version,
    run_job,
    verify_result_payload,
)
from repro.serve.queue import JobQueue
from repro.serve.retry import backoff_delays, call_with_retries
from repro.serve.service import (
    GracefulShutdown,
    result,
    serve,
    status,
    submit,
    worker_loop,
)

__all__ = [
    "GracefulShutdown",
    "JobQueue",
    "JobSpec",
    "ResultCache",
    "backoff_delays",
    "cache_key",
    "call_with_retries",
    "code_version",
    "result",
    "run_job",
    "serve",
    "status",
    "submit",
    "verify_result_payload",
    "worker_loop",
]
