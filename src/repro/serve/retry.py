"""Deterministic-jitter exponential backoff for queue clients.

A transient queue error (ENOSPC, NFS hiccup, a record mid-rename) is
worth retrying, but naive retries synchronize: every client that hit
the same error retries at the same instant.  Classic full jitter
(random sleep in ``[0, cap]``) fixes that at the cost of
reproducibility — two runs of the same campaign would retry at
different times.  This module does both: the jitter for attempt ``i``
is drawn from ``random.Random(seed * 1000003 + i)``, so distinct
seeds (clients) de-synchronize while a fixed seed replays the exact
same schedule.

``call_with_retries`` bounds the whole affair with a wall-clock
deadline: the last error is re-raised once the deadline would be
exceeded, so a dead queue fails the client in bounded time instead of
retrying forever.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple, Type

__all__ = ["backoff_delays", "call_with_retries"]

#: Multiplier spreading per-attempt jitter streams across seeds; any
#: prime much larger than realistic attempt counts works.
_SEED_STRIDE = 1000003


def backoff_delays(
    retries: int,
    base_s: float = 0.05,
    cap_s: float = 2.0,
    seed: int = 0,
) -> List[float]:
    """The full, precomputable backoff schedule for ``retries``.

    Attempt ``i`` sleeps ``min(cap_s, base_s * 2**i) * jitter`` with
    jitter drawn uniformly from ``[0.5, 1.0)`` — half-deterministic
    full jitter: bounded below so progress is guaranteed, jittered
    above so clients spread out.  Deterministic in ``(retries,
    base_s, cap_s, seed)``.
    """
    import random

    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    delays = []
    for attempt in range(retries):
        ceiling = min(cap_s, base_s * (2.0 ** attempt))
        jitter = random.Random(
            seed * _SEED_STRIDE + attempt
        ).random()
        delays.append(ceiling * (0.5 + 0.5 * jitter))
    return delays


def call_with_retries(
    call: Callable,
    retries: int = 0,
    base_s: float = 0.05,
    cap_s: float = 2.0,
    deadline_s: Optional[float] = None,
    seed: int = 0,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep_fn: Callable[[float], None] = time.sleep,
    now_fn: Callable[[], float] = time.monotonic,
):
    """Invoke ``call()`` with up to ``retries`` backed-off retries.

    Only exceptions in ``retry_on`` are retried; anything else (and
    the final failure) propagates.  ``deadline_s`` is a wall-clock
    budget from first attempt: a retry whose backoff sleep would
    overrun it re-raises immediately.  ``on_retry(attempt, error)``
    fires before each backoff sleep (retry metrics hook);
    ``sleep_fn``/``now_fn`` are injectable for tests.
    """
    delays = backoff_delays(
        retries, base_s=base_s, cap_s=cap_s, seed=seed
    )
    started = now_fn()
    for attempt in range(retries + 1):
        try:
            return call()
        except retry_on as error:
            if attempt >= retries:
                raise
            delay = delays[attempt]
            if (
                deadline_s is not None
                and now_fn() - started + delay > deadline_s
            ):
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep_fn(delay)
