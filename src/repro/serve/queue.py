"""A persistent, crash-safe, multi-process job queue on a directory.

Layout (everything under one queue directory)::

    queue/
      pending/<job_id>.json    # submitted, unclaimed
      claimed/<job_id>.json    # being worked; .lease.json sidecar
      done/<job_id>.json       # finished (record carries the outcome)
      failed/<job_id>.json     # exhausted max_attempts

State transitions are single ``os.rename`` calls (atomic on POSIX
within one filesystem), so any number of worker processes can claim
concurrently without locks: exactly one rename wins, the losers get
``FileNotFoundError`` and move on.  Records are written to a temp file
and renamed into place, so a reader never observes a partial JSON.

Crash safety: a claim writes a lease sidecar (owner pid + wall-clock
expiry).  :meth:`JobQueue.requeue_stale` returns claimed jobs whose
lease has expired — or whose owner process is verifiably dead — to
``pending``, bumping the record's ``attempts``; jobs that exhaust
``max_attempts`` land in ``failed`` instead of looping forever.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import time
from typing import Dict, List, Optional

__all__ = ["JobQueue", "QUEUE_STATES"]

QUEUE_STATES = ("pending", "claimed", "done", "failed")

#: Default wall-clock lease on a claimed job before it is presumed
#: crashed.  Long: a multi-million-request replay is minutes of work.
DEFAULT_LEASE_S = 3600.0

DEFAULT_MAX_ATTEMPTS = 3


def _write_json_atomic(path: str, payload: Dict) -> None:
    directory = os.path.dirname(path)
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="ascii") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def _pid_alive(pid: int) -> Optional[bool]:
    """True/False when knowable on this host, None when ambiguous."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except OSError as error:
        if error.errno == errno.ESRCH:
            return False
        return None  # EPERM etc.: exists but not ours, or unknowable
    return True


class JobQueue:
    """Client and worker operations on one on-disk queue."""

    def __init__(
        self,
        root: str,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        create: bool = True,
    ):
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.root = str(root)
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        #: Jobs moved to ``failed`` by the most recent
        #: :meth:`requeue_stale` call (attempts exhausted).
        self.last_requeue_failed: List[str] = []
        if create:
            for state in QUEUE_STATES:
                os.makedirs(os.path.join(self.root, state), exist_ok=True)
        else:
            # Read-only callers (status/result/metrics) must not
            # conjure an empty queue out of a typo'd path.
            if not os.path.isdir(self.root):
                raise FileNotFoundError(
                    f"no job queue at {self.root!r} (submit or serve "
                    "a job there first)"
                )
            missing = [
                state
                for state in QUEUE_STATES
                if not os.path.isdir(os.path.join(self.root, state))
            ]
            if missing:
                raise FileNotFoundError(
                    f"{self.root!r} is not a job queue (missing "
                    f"{'/'.join(missing)} subdirectories)"
                )

    # -- paths ------------------------------------------------------------
    def _record_path(self, state: str, job_id: str) -> str:
        return os.path.join(self.root, state, f"{job_id}.json")

    def _lease_path(self, job_id: str) -> str:
        return os.path.join(
            self.root, "claimed", f"{job_id}.lease.json"
        )

    # -- submission -------------------------------------------------------
    def enqueue(self, job_id: str, record: Dict) -> str:
        """Write a pending record; returns the record path."""
        if not job_id or "/" in job_id:
            raise ValueError(f"bad job id {job_id!r}")
        path = self._record_path("pending", job_id)
        if any(
            os.path.exists(self._record_path(state, job_id))
            for state in QUEUE_STATES
        ):
            raise ValueError(f"job {job_id} already exists in the queue")
        record = dict(record)
        record.setdefault("attempts", 0)
        _write_json_atomic(path, record)
        return path

    # -- worker side ------------------------------------------------------
    def claim(self, owner: Optional[str] = None) -> Optional[Dict]:
        """Atomically move the oldest pending job to ``claimed``.

        Returns the job record (with ``job_id`` filled in) or ``None``
        when the queue has no claimable work.  Safe to call from any
        number of processes: the rename is the arbiter.
        """
        pending = os.path.join(self.root, "pending")
        for name in sorted(os.listdir(pending)):
            if not name.endswith(".json") or name.startswith("."):
                continue
            job_id = name[: -len(".json")]
            source = os.path.join(pending, name)
            target = self._record_path("claimed", job_id)
            # The lease is created *before* the claiming rename — a
            # concurrent requeue_stale() must never observe a claimed
            # record without its lease (it would presume a crash and
            # steal the job back) — and created exclusively, so only
            # one claimer ever proceeds to the rename and a loser can
            # never delete a winner's lease.
            if not self._create_lease(job_id, owner):
                continue
            try:
                os.rename(source, target)
            except FileNotFoundError:
                # The job left pending (acked fast, or requeued) while
                # we held the speculative lease; release it.
                try:
                    os.unlink(self._lease_path(job_id))
                except FileNotFoundError:
                    pass
                continue
            record = self.read(job_id, "claimed")
            record["job_id"] = job_id
            return record
        return None

    def _create_lease(self, job_id: str, owner: Optional[str]) -> bool:
        """Exclusively create the lease file; False when outraced.

        A leftover lease from a claimer that died between lease
        creation and rename would wedge its job forever, so an
        existing lease that is expired — or owned by a verifiably
        dead pid — is removed before giving up.
        """
        path = self._lease_path(job_id)
        payload = {
            "pid": os.getpid(),
            "owner": owner or f"pid-{os.getpid()}",
            "claimed_at": time.time(),
            "expires_at": time.time() + self.lease_s,
        }
        # Fully write the lease to a private temp file, then link it
        # into place: the link is exclusive (fails if a lease exists)
        # AND atomic (no reader ever sees a partially written lease).
        fd, temp_path = tempfile.mkstemp(
            dir=os.path.join(self.root, "claimed"),
            prefix=".tmp-lease-",
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            try:
                os.link(temp_path, path)
            except FileExistsError:
                stale = self._read_optional(path)
                if stale is not None:
                    expired = stale.get("expires_at", 0) <= time.time()
                    alive = _pid_alive(int(stale.get("pid", -1)))
                    if expired or alive is False:
                        try:
                            os.unlink(path)
                        except FileNotFoundError:
                            pass
                return False
            return True
        finally:
            try:
                os.unlink(temp_path)
            except OSError:
                pass

    def ack(self, job_id: str, outcome: Dict, state: str = "done") -> None:
        """Finish a claimed job: write the outcome, move the record."""
        if state not in ("done", "failed"):
            raise ValueError(f"ack state must be done/failed, got {state}")
        claimed = self._record_path("claimed", job_id)
        if not os.path.exists(claimed):
            raise ValueError(f"job {job_id} is not claimed")
        record = self.read(job_id, "claimed")
        record["outcome"] = outcome
        _write_json_atomic(claimed, record)
        os.rename(claimed, self._record_path(state, job_id))
        try:
            os.unlink(self._lease_path(job_id))
        except FileNotFoundError:
            pass

    def requeue_stale(self) -> List[str]:
        """Return crashed claims to ``pending``; returns requeued ids.

        A claim is stale when its lease is missing, expired, or owned
        by a verifiably dead pid.  Requeueing bumps ``attempts``; a
        job at ``max_attempts`` moves to ``failed`` with a
        ``requeue-exhausted`` outcome instead.
        """
        requeued = []
        self.last_requeue_failed = []
        claimed_dir = os.path.join(self.root, "claimed")
        now = time.time()
        for name in sorted(os.listdir(claimed_dir)):
            if not name.endswith(".json") or ".lease." in name:
                continue
            if name.startswith("."):
                continue
            job_id = name[: -len(".json")]
            lease = self._read_optional(self._lease_path(job_id))
            if lease is not None:
                expired = lease.get("expires_at", 0) <= now
                alive = _pid_alive(int(lease.get("pid", -1)))
                if not expired and alive is not False:
                    continue  # healthily claimed
            try:
                record = self.read(job_id, "claimed")
            except (OSError, ValueError):
                continue  # acked between listdir and read
            attempts = int(record.get("attempts", 0)) + 1
            record["attempts"] = attempts
            claimed = self._record_path("claimed", job_id)
            if attempts >= self.max_attempts:
                record["outcome"] = {
                    "status": "failed",
                    "error": "requeue-exhausted",
                    "attempts": attempts,
                }
                _write_json_atomic(claimed, record)
                os.rename(
                    claimed, self._record_path("failed", job_id)
                )
                self.last_requeue_failed.append(job_id)
            else:
                _write_json_atomic(claimed, record)
                os.rename(
                    claimed, self._record_path("pending", job_id)
                )
                requeued.append(job_id)
            try:
                os.unlink(self._lease_path(job_id))
            except FileNotFoundError:
                pass
        return requeued

    # -- introspection ----------------------------------------------------
    def read(self, job_id: str, state: Optional[str] = None) -> Dict:
        """Load a job record, searching all states unless one is given."""
        states = (state,) if state else QUEUE_STATES
        for candidate in states:
            payload = self._read_optional(
                self._record_path(candidate, job_id)
            )
            if payload is not None:
                payload["state"] = candidate
                return payload
        raise ValueError(f"no job {job_id!r} in queue {self.root}")

    @staticmethod
    def _read_optional(path: str) -> Optional[Dict]:
        try:
            with open(path, "r", encoding="ascii") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # Record/lease writes are atomic, so a torn file means a
            # crashed writer from a previous incarnation; treat it as
            # absent so requeue/cleanup logic can reclaim the job.
            return None

    def jobs(self, state: str) -> List[str]:
        if state not in QUEUE_STATES:
            raise ValueError(f"unknown state {state!r}")
        directory = os.path.join(self.root, state)
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(directory)
            if name.endswith(".json")
            and ".lease." not in name
            and not name.startswith(".")
        )

    def counts(self) -> Dict[str, int]:
        return {state: len(self.jobs(state)) for state in QUEUE_STATES}
