"""A persistent, crash-safe, multi-process job queue on a directory.

Layout (everything under one queue directory)::

    queue/
      pending/<job_id>.json    # submitted, unclaimed
      claimed/<job_id>.json    # being worked; .lease.json sidecar
      done/<job_id>.json       # finished (record carries the outcome)
      failed/<job_id>.json     # exhausted max_attempts
      corrupt/<job_id>.json    # quarantined torn/tampered records
                               # (+ .reason.json diagnostics sidecar)

State transitions are single ``os.rename`` calls (atomic on POSIX
within one filesystem), so any number of worker processes can claim
concurrently without locks: exactly one rename wins, the losers get
``FileNotFoundError`` and move on.  Records are written to a temp file
and renamed into place — with ``fsync`` on the temp file before and
the parent directory after the replace (``durable=False`` opts out
for tests/benchmarks) — so a reader never observes a partial JSON and
an acknowledged record survives power loss.

Every record carries a ``record_sha256`` self-checksum.  Reads are
*tolerant*: a torn or tampered record (power loss on a non-durable
queue, bit rot, a chaos-injected torn write) is quarantined into
``corrupt/`` with a diagnostics sidecar instead of wedging
:meth:`JobQueue.claim` — the claim loop moves on to the next job, and
the submitter can resubmit under the same id.

Crash safety: a claim writes a lease sidecar (owner pid + wall-clock
expiry).  :meth:`JobQueue.requeue_stale` returns claimed jobs whose
lease has expired — or whose owner process is verifiably dead — to
``pending``, bumping the record's ``attempts``; jobs that exhaust
``max_attempts`` land in ``failed`` instead of looping forever.  A
pid that exists but is *not ours* (``EPERM``) is ambiguous and keeps
its lease until expiry.  ``requeue_stale`` also sweeps orphaned
``.tmp-*`` files and ownerless leases left by crashed writers.

Chaos: the mutation paths are threaded with named failpoints
(:mod:`repro.chaos.failpoints`) — zero-cost no-ops unless a
:class:`~repro.chaos.injector.ChaosInjector` is installed.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.chaos.failpoints import current_failpoints

__all__ = ["JobQueue", "QUEUE_STATES", "CORRUPT_STATE", "ALL_STATES"]

QUEUE_STATES = ("pending", "claimed", "done", "failed")

#: The quarantine state for torn/tampered records.  Not a *live* state
#: — nothing transitions out of it automatically — so it is excluded
#: from ``QUEUE_STATES`` (duplicate-id checks, record search) but
#: included in ``counts()``/``jobs()`` for observability.
CORRUPT_STATE = "corrupt"

ALL_STATES = QUEUE_STATES + (CORRUPT_STATE,)

#: Default wall-clock lease on a claimed job before it is presumed
#: crashed.  Long: a multi-million-request replay is minutes of work.
DEFAULT_LEASE_S = 3600.0

DEFAULT_MAX_ATTEMPTS = 3

#: Self-checksum field embedded in every record by
#: :func:`_write_json_atomic` and verified by tolerant reads.
RECORD_CHECKSUM_KEY = "record_sha256"


def _record_checksum(payload: Dict) -> str:
    body = {
        key: value
        for key, value in payload.items()
        if key != RECORD_CHECKSUM_KEY
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


def _fsync_dir(directory: str) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_json_atomic(
    path: str,
    payload: Dict,
    durable: bool = True,
    exclusive: bool = False,
) -> None:
    """Checksum, write to a temp file, and atomically (re)place.

    ``durable`` fsyncs the temp file before and the parent directory
    after the replace, so the record survives power loss the moment
    the call returns.  ``exclusive`` links instead of replacing —
    ``FileExistsError`` if ``path`` exists — closing check-then-write
    races on creation.
    """
    directory = os.path.dirname(path)
    payload = dict(payload)
    payload[RECORD_CHECKSUM_KEY] = _record_checksum(payload)
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="ascii") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        fp = current_failpoints()
        if fp.enabled:
            fp.hit("queue.record.before_replace", path=path)
        if exclusive:
            os.link(temp_path, path)
        else:
            os.replace(temp_path, path)
        if durable:
            _fsync_dir(directory)
        if fp.enabled:
            fp.hit("queue.record.after_replace", path=path)
    finally:
        try:
            os.unlink(temp_path)
        except OSError:
            pass


def _pid_alive(pid: int) -> Optional[bool]:
    """True/False when knowable on this host, None when ambiguous."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except OSError as error:
        if error.errno == errno.ESRCH:
            return False
        return None  # EPERM etc.: exists but not ours, or unknowable
    return True


class JobQueue:
    """Client and worker operations on one on-disk queue."""

    def __init__(
        self,
        root: str,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        create: bool = True,
        durable: bool = True,
    ):
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.root = str(root)
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.durable = durable
        #: Jobs moved to ``failed`` by the most recent
        #: :meth:`requeue_stale` call (attempts exhausted).
        self.last_requeue_failed: List[str] = []
        #: ``{"job_id", "reason", "record"}`` dicts for records
        #: quarantined by the most recent :meth:`claim` /
        #: :meth:`requeue_stale` / :meth:`release` call.
        self.last_quarantined: List[Dict] = []
        if create:
            for state in ALL_STATES:
                os.makedirs(os.path.join(self.root, state), exist_ok=True)
        else:
            # Read-only callers (status/result/metrics) must not
            # conjure an empty queue out of a typo'd path.  Only the
            # four live states are required: pre-corrupt-state queues
            # stay readable.
            if not os.path.isdir(self.root):
                raise FileNotFoundError(
                    f"no job queue at {self.root!r} (submit or serve "
                    "a job there first)"
                )
            missing = [
                state
                for state in QUEUE_STATES
                if not os.path.isdir(os.path.join(self.root, state))
            ]
            if missing:
                raise FileNotFoundError(
                    f"{self.root!r} is not a job queue (missing "
                    f"{'/'.join(missing)} subdirectories)"
                )

    # -- paths ------------------------------------------------------------
    def _record_path(self, state: str, job_id: str) -> str:
        return os.path.join(self.root, state, f"{job_id}.json")

    def _lease_path(self, job_id: str) -> str:
        return os.path.join(
            self.root, "claimed", f"{job_id}.lease.json"
        )

    def _now(self) -> float:
        """The lease clock: wall time plus any injected chaos skew."""
        fp = current_failpoints()
        if fp.enabled:
            return time.time() + fp.clock_skew("queue.clock")
        return time.time()

    # -- submission -------------------------------------------------------
    def enqueue(self, job_id: str, record: Dict) -> str:
        """Write a pending record; returns the record path.

        The pending file is created with exclusive (``O_EXCL``-style
        link) semantics: two submitters racing the same job id cannot
        both succeed, whatever the interleaving — the loser gets the
        same ``ValueError`` the friendly pre-check raises.
        """
        if not job_id or "/" in job_id:
            raise ValueError(f"bad job id {job_id!r}")
        path = self._record_path("pending", job_id)
        if any(
            os.path.exists(self._record_path(state, job_id))
            for state in QUEUE_STATES
        ):
            raise ValueError(f"job {job_id} already exists in the queue")
        record = dict(record)
        record.setdefault("attempts", 0)
        try:
            _write_json_atomic(
                path, record, durable=self.durable, exclusive=True
            )
        except FileExistsError:
            raise ValueError(
                f"job {job_id} already exists in the queue"
            ) from None
        return path

    # -- worker side ------------------------------------------------------
    def claim(self, owner: Optional[str] = None) -> Optional[Dict]:
        """Atomically move the oldest pending job to ``claimed``.

        Returns the job record (with ``job_id`` filled in) or ``None``
        when the queue has no claimable work.  Safe to call from any
        number of processes: the rename is the arbiter.  A record that
        turns out to be torn or tampered is quarantined into
        ``corrupt/`` and the scan continues — corruption never wedges
        the claim loop.
        """
        self.last_quarantined = []
        fp = current_failpoints()
        pending = os.path.join(self.root, "pending")
        for name in sorted(os.listdir(pending)):
            if not name.endswith(".json") or name.startswith("."):
                continue
            job_id = name[: -len(".json")]
            source = os.path.join(pending, name)
            target = self._record_path("claimed", job_id)
            # The lease is created *before* the claiming rename — a
            # concurrent requeue_stale() must never observe a claimed
            # record without its lease (it would presume a crash and
            # steal the job back) — and created exclusively, so only
            # one claimer ever proceeds to the rename and a loser can
            # never delete a winner's lease.
            if not self._create_lease(job_id, owner):
                continue
            if fp.enabled:
                fp.hit("queue.lease.after_create")
            try:
                os.rename(source, target)
            except FileNotFoundError:
                # The job left pending (acked fast, or requeued) while
                # we held the speculative lease; release it.
                try:
                    os.unlink(self._lease_path(job_id))
                except FileNotFoundError:
                    pass
                continue
            if fp.enabled:
                fp.hit("queue.claim.after_rename")
            record, problem = self._read_record(target)
            if problem is not None:
                self.quarantine("claimed", job_id, problem)
                try:
                    os.unlink(self._lease_path(job_id))
                except FileNotFoundError:
                    pass
                continue
            if record is None:  # vanished under us; release and move on
                try:
                    os.unlink(self._lease_path(job_id))
                except FileNotFoundError:
                    pass
                continue
            record["job_id"] = job_id
            return record
        return None

    def _create_lease(self, job_id: str, owner: Optional[str]) -> bool:
        """Exclusively create the lease file; False when outraced.

        A leftover lease from a claimer that died between lease
        creation and rename would wedge its job forever, so an
        existing lease that is expired — or owned by a verifiably
        dead pid — is removed (and the link retried once) before
        giving up.
        """
        path = self._lease_path(job_id)
        now = self._now()
        payload = {
            "pid": os.getpid(),
            "owner": owner or f"pid-{os.getpid()}",
            "claimed_at": now,
            "expires_at": now + self.lease_s,
        }
        # Fully write the lease to a private temp file, then link it
        # into place: the link is exclusive (fails if a lease exists)
        # AND atomic (no reader ever sees a partially written lease).
        fd, temp_path = tempfile.mkstemp(
            dir=os.path.join(self.root, "claimed"),
            prefix=".tmp-lease-",
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            try:
                os.link(temp_path, path)
            except FileExistsError:
                stale = self._read_optional(path)
                removed = False
                if stale is not None:
                    expired = stale.get("expires_at", 0) <= self._now()
                    alive = _pid_alive(int(stale.get("pid", -1)))
                    if expired or alive is False:
                        try:
                            os.unlink(path)
                            removed = True
                        except FileNotFoundError:
                            pass
                if not removed:
                    return False
                try:
                    os.link(temp_path, path)
                except FileExistsError:
                    return False
            return True
        finally:
            try:
                os.unlink(temp_path)
            except OSError:
                pass

    def ack(self, job_id: str, outcome: Dict, state: str = "done") -> None:
        """Finish a claimed job: write the outcome, move the record."""
        if state not in ("done", "failed"):
            raise ValueError(f"ack state must be done/failed, got {state}")
        fp = current_failpoints()
        claimed = self._record_path("claimed", job_id)
        record, problem = self._read_record(claimed)
        if problem is not None:
            self.quarantine("claimed", job_id, problem)
            try:
                os.unlink(self._lease_path(job_id))
            except FileNotFoundError:
                pass
            raise ValueError(
                f"job {job_id} claimed record was corrupt "
                f"({problem}); quarantined"
            )
        if record is None:
            raise ValueError(f"job {job_id} is not claimed")
        record["outcome"] = outcome
        _write_json_atomic(claimed, record, durable=self.durable)
        if fp.enabled:
            fp.hit("queue.ack.before_rename")
        os.rename(claimed, self._record_path(state, job_id))
        if fp.enabled:
            fp.hit("queue.ack.after_rename")
        try:
            os.unlink(self._lease_path(job_id))
        except FileNotFoundError:
            pass

    def release(self, job_id: str) -> bool:
        """Return an own claimed job to ``pending``, attempts intact.

        The graceful-shutdown path: a SIGTERM'd worker puts its
        in-flight job back without the attempt bump a crash-requeue
        charges.  Returns True when a record was moved.
        """
        claimed = self._record_path("claimed", job_id)
        moved = False
        record, problem = self._read_record(claimed)
        if problem is not None:
            self.quarantine("claimed", job_id, problem)
        elif record is not None:
            try:
                os.rename(claimed, self._record_path("pending", job_id))
                moved = True
            except FileNotFoundError:
                pass
        try:
            os.unlink(self._lease_path(job_id))
        except FileNotFoundError:
            pass
        return moved

    def requeue_stale(self) -> List[str]:
        """Return crashed claims to ``pending``; returns requeued ids.

        A claim is stale when its lease is missing, expired, or owned
        by a verifiably dead pid (a pid that exists but is not ours —
        ``EPERM`` — is ambiguous and keeps the lease until expiry).
        Requeueing bumps ``attempts``; a job at ``max_attempts`` moves
        to ``failed`` with a ``requeue-exhausted`` outcome instead.

        Housekeeping on the way through: corrupt claimed records are
        quarantined, orphaned ``.tmp-*`` files older than the lease
        are swept, and ownerless leases (no record, dead/expired
        owner) are removed.
        """
        requeued = []
        self.last_requeue_failed = []
        self.last_quarantined = []
        claimed_dir = os.path.join(self.root, "claimed")
        now = self._now()
        for name in sorted(os.listdir(claimed_dir)):
            if not name.endswith(".json") or ".lease." in name:
                continue
            if name.startswith("."):
                continue
            job_id = name[: -len(".json")]
            lease = self._read_optional(self._lease_path(job_id))
            if lease is not None:
                expired = lease.get("expires_at", 0) <= now
                alive = _pid_alive(int(lease.get("pid", -1)))
                if not expired and alive is not False:
                    continue  # healthily claimed (or ambiguously owned)
            record, problem = self._read_record(
                self._record_path("claimed", job_id)
            )
            if problem is not None:
                self.quarantine("claimed", job_id, problem)
                try:
                    os.unlink(self._lease_path(job_id))
                except FileNotFoundError:
                    pass
                continue
            if record is None:
                continue  # acked between listdir and read
            attempts = int(record.get("attempts", 0)) + 1
            record["attempts"] = attempts
            claimed = self._record_path("claimed", job_id)
            if attempts >= self.max_attempts:
                record["outcome"] = {
                    "status": "failed",
                    "error": "requeue-exhausted",
                    "attempts": attempts,
                }
                _write_json_atomic(claimed, record, durable=self.durable)
                os.rename(
                    claimed, self._record_path("failed", job_id)
                )
                self.last_requeue_failed.append(job_id)
            else:
                _write_json_atomic(claimed, record, durable=self.durable)
                os.rename(
                    claimed, self._record_path("pending", job_id)
                )
                requeued.append(job_id)
            try:
                os.unlink(self._lease_path(job_id))
            except FileNotFoundError:
                pass
        self._sweep_leftovers(now)
        return requeued

    def _sweep_leftovers(self, now: float) -> None:
        """Remove crashed writers' debris: old temps, ownerless leases.

        A ``.tmp-*`` file older than the lease has no live writer
        (writes are sub-second); a lease whose record is gone and
        whose owner is dead or expired belongs to a worker that
        crashed between ack-rename and lease-unlink.
        """
        for state in ALL_STATES:
            directory = os.path.join(self.root, state)
            try:
                names = os.listdir(directory)
            except FileNotFoundError:
                continue
            for name in names:
                if not name.startswith(".tmp-"):
                    continue
                path = os.path.join(directory, name)
                try:
                    if now - os.path.getmtime(path) > self.lease_s:
                        os.unlink(path)
                except OSError:
                    continue
        claimed_dir = os.path.join(self.root, "claimed")
        for name in os.listdir(claimed_dir):
            if not name.endswith(".lease.json") or name.startswith("."):
                continue
            job_id = name[: -len(".lease.json")]
            if os.path.exists(self._record_path("claimed", job_id)):
                continue
            lease = self._read_optional(os.path.join(claimed_dir, name))
            if lease is not None:
                expired = lease.get("expires_at", 0) <= now
                alive = _pid_alive(int(lease.get("pid", -1)))
                if not expired and alive is not False:
                    continue
            try:
                os.unlink(os.path.join(claimed_dir, name))
            except FileNotFoundError:
                pass

    def scrub(self) -> List[Dict]:
        """Quarantine corrupt records in every live state.

        ``claim`` and ``requeue_stale`` only inspect the records they
        touch; ``scrub`` sweeps all four live states — catching e.g. a
        ``done`` record torn after its ack rename — and returns the
        quarantine records (also in :attr:`last_quarantined`).
        """
        self.last_quarantined = []
        for state in QUEUE_STATES:
            for job_id in self.jobs(state):
                _, problem = self._read_record(
                    self._record_path(state, job_id)
                )
                if problem is None:
                    continue
                self.quarantine(state, job_id, problem)
                if state == "claimed":
                    try:
                        os.unlink(self._lease_path(job_id))
                    except FileNotFoundError:
                        pass
        return self.last_quarantined

    # -- quarantine --------------------------------------------------------
    def quarantine(
        self, state: str, job_id: str, reason: str
    ) -> Optional[str]:
        """Move a torn/tampered record into ``corrupt/``.

        Writes a ``<job_id>.reason.json`` diagnostics sidecar (reason,
        source state, wall time, pid) next to the quarantined bytes so
        the corruption is inspectable.  Best-effort by design — it
        must never wedge a claim loop — and returns the quarantine
        path, or ``None`` when the record vanished first.
        """
        source = self._record_path(state, job_id)
        corrupt_dir = os.path.join(self.root, CORRUPT_STATE)
        os.makedirs(corrupt_dir, exist_ok=True)
        target = os.path.join(corrupt_dir, f"{job_id}.json")
        sequence = 0
        while os.path.exists(target):
            sequence += 1
            target = os.path.join(
                corrupt_dir, f"{job_id}.{sequence}.json"
            )
        try:
            os.rename(source, target)
        except FileNotFoundError:
            return None
        diagnostics = {
            "job_id": job_id,
            "from_state": state,
            "reason": reason,
            "quarantined_at": time.time(),
            "by_pid": os.getpid(),
        }
        try:
            _write_json_atomic(
                target[: -len(".json")] + ".reason.json",
                diagnostics,
                durable=self.durable,
            )
        except OSError:
            pass  # diagnostics are best-effort; the quarantine stands
        self.last_quarantined.append(
            {"job_id": job_id, "reason": reason, "record": target}
        )
        return target

    # -- introspection ----------------------------------------------------
    def read(self, job_id: str, state: Optional[str] = None) -> Dict:
        """Load a job record, searching all states unless one is given.

        Raises ``ValueError`` for a missing job, and for a record
        whose checksum proves it torn or tampered (with the reason).
        """
        states = (state,) if state else QUEUE_STATES
        for candidate in states:
            payload, problem = self._read_record(
                self._record_path(candidate, job_id)
            )
            if problem is not None:
                raise ValueError(
                    f"job {job_id!r} record in {candidate!r} is "
                    f"corrupt: {problem}"
                )
            if payload is not None:
                payload["state"] = candidate
                return payload
        raise ValueError(f"no job {job_id!r} in queue {self.root}")

    def _read_record(
        self, path: str
    ) -> Tuple[Optional[Dict], Optional[str]]:
        """Tolerant record read: ``(payload, problem)``.

        ``(None, None)`` — no file; ``(None, reason)`` — the file
        exists but is torn, not JSON, or fails its self-checksum;
        ``(payload, None)`` — intact.  Records written before the
        checksum era (no ``record_sha256`` field) are accepted.
        """
        try:
            with open(path, "r", encoding="ascii") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None, None
        except OSError as error:
            return None, f"unreadable: {error}"
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            return None, f"torn JSON ({error}; {len(raw)} bytes)"
        if not isinstance(payload, dict):
            return (
                None,
                f"not a record object ({type(payload).__name__})",
            )
        stored = payload.get(RECORD_CHECKSUM_KEY)
        if stored is not None and stored != _record_checksum(payload):
            return None, "checksum mismatch (torn write or bit rot)"
        return payload, None

    @staticmethod
    def _read_optional(path: str) -> Optional[Dict]:
        try:
            with open(path, "r", encoding="ascii") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # Lease writes are atomic, so a torn file means a crashed
            # writer from a previous incarnation; treat it as absent
            # so requeue/cleanup logic can reclaim the job.
            return None

    def jobs(self, state: str) -> List[str]:
        if state not in ALL_STATES:
            raise ValueError(f"unknown state {state!r}")
        directory = os.path.join(self.root, state)
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return []  # pre-corrupt-state queue opened read-only
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json")
            and ".lease." not in name
            and ".reason." not in name
            and not name.startswith(".")
        )

    def counts(self) -> Dict[str, int]:
        return {state: len(self.jobs(state)) for state in ALL_STATES}
