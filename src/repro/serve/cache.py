"""The content-addressed result cache.

Results are stored by cache key (see :func:`repro.serve.jobs.cache_key`)
under two-character fan-out directories::

    cache/
      ab/abcdef....json      # canonical result payload bytes
      corrupt/ab/...         # quarantined torn/tampered payloads

Writes go through a temp file and ``os.replace``; a key that already
exists is left untouched (first write wins), which together with the
simulator's determinism guarantees that every reader of a key — across
workers, processes and submissions — sees byte-identical payloads.

A payload that fails verification (torn write, bit rot — see
:func:`repro.serve.jobs.verify_result_payload`) is moved aside by
:meth:`ResultCache.quarantine` into ``corrupt/`` with a diagnostics
sidecar, so the next worker to need that key re-simulates instead of
serving garbage forever.  The write path carries chaos failpoints
(no-ops unless an injector is installed).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import List, Optional

from repro.chaos.failpoints import current_failpoints

__all__ = ["ResultCache"]


class ResultCache:
    """Byte-payload store addressed by hex digest keys."""

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        if len(key) < 3 or not all(
            c in "0123456789abcdef" for c in key
        ):
            raise ValueError(f"bad cache key {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def put(self, key: str, payload: bytes) -> bool:
        """Store ``payload`` under ``key``; returns False when the key
        already existed (the stored bytes win — determinism makes the
        difference unobservable, and first-write-wins keeps concurrent
        workers from racing on content)."""
        path = self._path(key)
        if os.path.exists(path):
            return False
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            if os.path.exists(path):
                os.unlink(temp_path)
                return False
            fp = current_failpoints()
            if fp.enabled:
                fp.hit("cache.put.before_replace", path=path)
            os.replace(temp_path, path)
            if fp.enabled:
                fp.hit("cache.put.after_replace", path=path)
            return True
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def quarantine(self, key: str, reason: str) -> Optional[str]:
        """Move a corrupt payload into ``corrupt/``; returns its path.

        First-write-wins means a bad payload would otherwise be served
        to every future hit on the key — quarantining clears the slot
        so the next miss re-simulates, and keeps the bad bytes (plus a
        ``.reason.json`` diagnostics sidecar) for inspection.  Returns
        ``None`` when the key vanished first (another worker already
        quarantined it).
        """
        source = self._path(key)
        corrupt_dir = os.path.join(self.root, "corrupt", key[:2])
        os.makedirs(corrupt_dir, exist_ok=True)
        target = os.path.join(corrupt_dir, f"{key}.json")
        sequence = 0
        while os.path.exists(target):
            sequence += 1
            target = os.path.join(
                corrupt_dir, f"{key}.{sequence}.json"
            )
        try:
            os.rename(source, target)
        except FileNotFoundError:
            return None
        try:
            with open(
                target[: -len(".json")] + ".reason.json",
                "w",
                encoding="ascii",
            ) as handle:
                json.dump(
                    {
                        "cache_key": key,
                        "reason": reason,
                        "quarantined_at": time.time(),
                        "by_pid": os.getpid(),
                    },
                    handle,
                    indent=1,
                    sort_keys=True,
                )
                handle.write("\n")
        except OSError:
            pass  # diagnostics are best-effort; the quarantine stands
        return target

    def keys(self) -> List[str]:
        found = []
        for directory, subdirs, files in os.walk(self.root):
            if os.path.abspath(directory) == os.path.abspath(self.root):
                subdirs[:] = [d for d in subdirs if d != "corrupt"]
            for name in files:
                if name.endswith(".json") and not name.startswith("."):
                    found.append(name[: -len(".json")])
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())
