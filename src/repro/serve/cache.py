"""The content-addressed result cache.

Results are stored by cache key (see :func:`repro.serve.jobs.cache_key`)
under two-character fan-out directories::

    cache/
      ab/abcdef....json      # canonical result payload bytes

Writes go through a temp file and ``os.replace``; a key that already
exists is left untouched (first write wins), which together with the
simulator's determinism guarantees that every reader of a key — across
workers, processes and submissions — sees byte-identical payloads.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """Byte-payload store addressed by hex digest keys."""

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        if len(key) < 3 or not all(
            c in "0123456789abcdef" for c in key
        ):
            raise ValueError(f"bad cache key {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def put(self, key: str, payload: bytes) -> bool:
        """Store ``payload`` under ``key``; returns False when the key
        already existed (the stored bytes win — determinism makes the
        difference unobservable, and first-write-wins keeps concurrent
        workers from racing on content)."""
        path = self._path(key)
        if os.path.exists(path):
            return False
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            if os.path.exists(path):
                os.unlink(temp_path)
                return False
            os.replace(temp_path, path)
            return True
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def keys(self) -> List[str]:
        found = []
        for directory, _, files in os.walk(self.root):
            for name in files:
                if name.endswith(".json") and not name.startswith("."):
                    found.append(name[: -len(".json")])
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())
