"""Worker processes and client calls over the queue + cache.

The flow, end to end:

1. ``submit`` validates a :class:`~repro.serve.jobs.JobSpec`, computes
   its digests and cache key, and enqueues a pending record.
2. ``serve`` runs N :func:`worker_loop` processes under a supervisor
   that restarts crashed workers (nonzero exit) up to a cap.  Each
   worker claims jobs atomically, consults the result cache first — a
   duplicate submission is acked as a **cache hit** without
   simulating — and otherwise runs the simulation, stores the
   canonical payload, and acks with per-job telemetry (wall time,
   chunk count, a telemetry registry snapshot).
3. ``result`` reads a finished job's payload back from the cache via
   the cache key recorded in its outcome.

Every payload byte is determined by ``(config digest, trace digest,
code version)``; hits and misses of the same key return identical
bytes.  Cached payloads are integrity-checked before being served as
hits; a corrupt one is quarantined and the job re-simulated.

Robustness contract:

* SIGTERM/SIGINT drain a worker gracefully: the in-flight job is
  released back to ``pending`` with its attempt count intact, a final
  metrics snapshot is flushed, and the worker exits 0.
* The client calls accept ``retries``/``deadline_s`` and back off with
  deterministic jitter (:mod:`repro.serve.retry`) on transient errors.
* The worker paths are threaded with chaos failpoints
  (:mod:`repro.chaos.failpoints`) — free unless an injector is
  installed — so seeded campaigns can kill, hang, and starve workers
  at precise points.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import time
from typing import Dict, List, Optional, Tuple

from repro.chaos.failpoints import current_failpoints
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    current_metrics,
    merge_worker_snapshots,
    set_current_metrics,
    write_worker_snapshot,
)
from repro.obs.registry import TelemetryRegistry
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JobSpec,
    cache_key,
    code_version,
    result_payload_bytes,
    run_job,
    verify_result_payload,
)
from repro.serve.queue import (
    DEFAULT_LEASE_S,
    DEFAULT_MAX_ATTEMPTS,
    JobQueue,
)
from repro.serve.retry import call_with_retries

__all__ = [
    "GracefulShutdown",
    "merged_queue_metrics",
    "result",
    "serve",
    "status",
    "submit",
    "worker_loop",
]

_submit_counter = itertools.count()


class GracefulShutdown(BaseException):
    """Raised by the worker's SIGTERM/SIGINT handler to start a drain.

    A ``BaseException`` so a job-level ``except Exception`` cannot
    swallow the shutdown: it unwinds to :func:`worker_loop`, which
    releases the in-flight job and flushes metrics before exiting.
    """

    def __init__(self, signum: int):
        super().__init__(f"signal {signum}")
        self.signum = signum


def _cache_root(queue_dir: str, cache_dir: Optional[str]) -> str:
    return cache_dir or os.path.join(str(queue_dir), "cache")


def _retry_counter(call_name: str):
    """An ``on_retry`` hook counting client retries on the ambient
    registry (no-op when metrics are disabled)."""

    def on_retry(attempt: int, error: BaseException) -> None:
        metrics = current_metrics()
        if metrics.enabled:
            metrics.counter(
                "repro_client_retries_total",
                "Client calls retried after a transient error",
                labels=("call",),
            ).labels(call=call_name).inc()

    return on_retry


def submit(
    queue_dir: str,
    spec: JobSpec,
    cache_dir: Optional[str] = None,
    retries: int = 0,
    deadline_s: Optional[float] = None,
    retry_seed: int = 0,
) -> Dict:
    """Enqueue ``spec``; returns the pending record (with ``job_id``).

    The record carries the spec plus its three digests, so workers
    (and humans reading the queue directory) see the cache identity
    without recomputing trace digests.

    Transient ``OSError`` (ENOSPC, a flaky filesystem) is retried up
    to ``retries`` times with deterministic-jitter backoff under the
    ``deadline_s`` wall-clock budget.  The job id and record are
    computed once, so retries can never double-enqueue: the atomic
    write only places the record when it fully succeeds.
    """
    spec.validate()
    key = cache_key(spec)
    queue = JobQueue(queue_dir)
    job_id = (
        f"{int(time.time() * 1000):013d}-{key[:10]}-"
        f"{os.getpid()}-{next(_submit_counter)}"
    )
    record = {
        "job_id": job_id,
        "spec": spec.to_dict(),
        "cache_key": key,
        "config_digest": spec.config_digest(),
        "trace_digest": spec.trace_digest(),
        "code_version": code_version(),
        "submitted_at": time.time(),
        "already_cached": key in ResultCache(
            _cache_root(queue_dir, cache_dir)
        ),
    }
    call_with_retries(
        lambda: queue.enqueue(job_id, record),
        retries=retries,
        deadline_s=deadline_s,
        seed=retry_seed,
        retry_on=(OSError,),
        on_retry=_retry_counter("submit"),
    )
    metrics = current_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_jobs_submitted_total", "Jobs enqueued by submit()"
        ).inc()
        if record["already_cached"]:
            metrics.counter(
                "repro_submit_already_cached_total",
                "Submissions whose result was already in the cache",
            ).inc()
    return record


def worker_loop(
    queue_dir: str,
    cache_dir: Optional[str] = None,
    poll_interval_s: float = 0.2,
    drain: bool = False,
    max_jobs: Optional[int] = None,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    owner: Optional[str] = None,
    metrics: bool = False,
    heartbeat_interval_s: float = 2.0,
    durable: bool = True,
    handle_signals: bool = False,
) -> Dict:
    """Claim-and-run until stopped; returns this worker's telemetry.

    ``drain=True`` exits when no pending work remains (the CI/batch
    mode); otherwise the loop polls forever and is stopped by signal.
    ``max_jobs`` bounds the number of jobs this worker processes.

    ``metrics=True`` gives the worker a live :class:`MetricsRegistry`
    (installed as ambient for the duration, so replay/shard
    instrumentation lands in it too) and writes it atomically to
    ``<queue>/metrics/`` after every job and at least every
    ``heartbeat_interval_s`` seconds — the snapshot files a
    ``repro metrics``/``status --metrics`` reader merges.

    ``handle_signals=True`` (what ``serve`` passes its children)
    installs SIGTERM/SIGINT handlers that drain gracefully: the
    in-flight job is released back to ``pending`` with its attempt
    count preserved, a final metrics snapshot is flushed, and the loop
    returns normally.  A second signal falls through to the default
    disposition (hard kill).
    """
    queue = JobQueue(
        queue_dir,
        lease_s=lease_s,
        max_attempts=max_attempts,
        durable=durable,
    )
    cache = ResultCache(_cache_root(queue_dir, cache_dir))
    telemetry = TelemetryRegistry()
    worker_name = owner or f"worker-{os.getpid()}"
    failpoints = current_failpoints()
    if failpoints.enabled:
        failpoints.bind_worker(worker_name)
    registry: object = MetricsRegistry() if metrics else NULL_METRICS
    last_beat = 0.0
    in_flight = {"job_id": None}

    def on_signal(signum, frame):
        # Restore default dispositions first so a second signal kills
        # the worker outright instead of re-raising mid-unwind.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)
        raise GracefulShutdown(signum)

    previous_handlers = {}
    if handle_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, on_signal)

    def beat(force: bool = False) -> None:
        nonlocal last_beat
        now = time.time()
        if not force and now - last_beat < heartbeat_interval_s:
            return
        registry.gauge(
            "repro_worker_heartbeat_timestamp",
            "Wall-clock time of the worker's last metrics write",
            labels=("worker", "pid"),
        ).labels(worker=worker_name, pid=os.getpid()).set(now)
        depth = registry.gauge(
            "repro_queue_depth",
            "Jobs per queue state, as of this worker's last sample",
            labels=("state",),
        )
        for state, count in queue.counts().items():
            depth.labels(state=state).set(count)
        write_worker_snapshot(queue_dir, worker_name, registry, now=now)
        last_beat = now

    def count_quarantined() -> None:
        if not queue.last_quarantined:
            return
        telemetry.counter("jobs.quarantined").inc(
            len(queue.last_quarantined)
        )
        if registry.enabled:
            registry.counter(
                "repro_records_quarantined_total",
                "Torn/tampered queue records moved to corrupt/",
                labels=("worker",),
            ).labels(worker=worker_name).inc(
                len(queue.last_quarantined)
            )

    processed = 0
    previous_ambient = None
    if registry.enabled:
        previous_ambient = set_current_metrics(registry)
        beat(force=True)
    try:
        while True:
            requeued = queue.requeue_stale()
            count_quarantined()
            if registry.enabled and (
                requeued or queue.last_requeue_failed
            ):
                if requeued:
                    registry.counter(
                        "repro_jobs_requeued_total",
                        "Stale claims returned to pending",
                        labels=("worker",),
                    ).labels(worker=worker_name).inc(len(requeued))
                if queue.last_requeue_failed:
                    registry.counter(
                        "repro_jobs_failed_out_total",
                        "Jobs that exhausted max_attempts on requeue",
                        labels=("worker",),
                    ).labels(worker=worker_name).inc(
                        len(queue.last_requeue_failed)
                    )
            if registry.enabled:
                claim_started = time.perf_counter()
            record = queue.claim(owner=worker_name)
            count_quarantined()
            if registry.enabled:
                registry.histogram(
                    "repro_claim_latency_ms",
                    "Wall-clock latency of one claim attempt",
                    labels=("worker",),
                ).labels(worker=worker_name).observe(
                    (time.perf_counter() - claim_started) * 1000.0
                )
            if record is None:
                if drain:
                    break
                if registry.enabled:
                    beat()
                time.sleep(poll_interval_s)
                continue
            if registry.enabled:
                registry.counter(
                    "repro_job_attempts_total",
                    "Claims processed (retries of one job each count)",
                    labels=("worker",),
                ).labels(worker=worker_name).inc()
            in_flight["job_id"] = record["job_id"]
            _process_one(
                record, queue, cache, telemetry, worker_name, registry
            )
            in_flight["job_id"] = None
            processed += 1
            if registry.enabled:
                beat(force=True)
            if max_jobs is not None and processed >= max_jobs:
                break
    except GracefulShutdown:
        job_id = in_flight["job_id"]
        if job_id is not None and queue.release(job_id):
            telemetry.counter("jobs.released").inc()
            if registry.enabled:
                registry.counter(
                    "repro_jobs_released_total",
                    "In-flight jobs released on graceful shutdown",
                    labels=("worker",),
                ).labels(worker=worker_name).inc()
        count_quarantined()
    finally:
        if handle_signals:
            for signum, handler in previous_handlers.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, TypeError):
                    pass
        if registry.enabled:
            beat(force=True)
            set_current_metrics(previous_ambient)
    snapshot = telemetry.snapshot()
    snapshot["worker"] = worker_name
    snapshot["processed"] = processed
    return snapshot


def _process_one(
    record: Dict,
    queue: JobQueue,
    cache: ResultCache,
    telemetry: TelemetryRegistry,
    worker_name: str,
    registry: object = NULL_METRICS,
) -> None:
    job_id = record["job_id"]
    started = time.time()
    job_telemetry = TelemetryRegistry()
    failpoints = current_failpoints()
    try:
        if failpoints.enabled:
            failpoints.hit("service.job.before_run")
        spec = JobSpec.from_dict(record["spec"])
        key = cache_key(spec)
        cached = cache.get(key)
        if cached is not None:
            # Never serve bytes that fail their self-check: quarantine
            # and fall through to a fresh simulation of the same key.
            problem = verify_result_payload(cached)
            if problem is not None:
                cache.quarantine(key, problem)
                cached = None
                telemetry.counter("jobs.cache_corrupt").inc()
                if registry.enabled:
                    registry.counter(
                        "repro_cache_corrupt_total",
                        "Cached payloads quarantined at hit time",
                        labels=("worker",),
                    ).labels(worker=worker_name).inc()
        if cached is not None:
            telemetry.counter("jobs.cache_hits").inc()
            if registry.enabled:
                registry.counter(
                    "repro_cache_hits_total",
                    "Jobs answered from the result cache",
                    labels=("worker",),
                ).labels(worker=worker_name).inc()
            payload = json.loads(cached.decode("ascii"))
            outcome = {
                "status": "done",
                "cached": True,
                "cache_key": key,
                "figures_sha256": payload["figures_sha256"],
                "worker": worker_name,
                "wall_s": time.time() - started,
            }
        else:
            telemetry.counter("jobs.cache_misses").inc()
            if registry.enabled:
                registry.counter(
                    "repro_cache_misses_total",
                    "Jobs that had to be simulated",
                    labels=("worker",),
                ).labels(worker=worker_name).inc()

            def on_chunk(progress):
                job_telemetry.counter("replay.chunks").inc()
                job_telemetry.stats("replay.chunk_mean_response_ms").add(
                    progress.chunk.mean_response_ms
                )

            payload, stats = run_job(spec, on_chunk=on_chunk)
            cache.put(key, result_payload_bytes(payload))
            wall = time.time() - started
            job_telemetry.counter("replay.requests").inc(
                stats["completed"]
            )
            job_telemetry.stats("job.wall_s").add(wall)
            outcome = {
                "status": "done",
                "cached": False,
                "cache_key": key,
                "figures_sha256": payload["figures_sha256"],
                "worker": worker_name,
                "wall_s": wall,
                "requests": stats["completed"],
                "chunks": stats["chunks"],
                "telemetry": job_telemetry.snapshot(),
            }
        if failpoints.enabled:
            failpoints.hit("service.job.before_ack")
        _ack_safely(
            queue, telemetry, job_id, outcome, "done",
            registry=registry, worker_name=worker_name,
        )
        telemetry.counter("jobs.completed").inc()
        wall = time.time() - started
        telemetry.stats("job.wall_s").add(wall)
        if registry.enabled:
            registry.counter(
                "repro_jobs_completed_total",
                "Jobs acked done (cache hits included)",
                labels=("worker",),
            ).labels(worker=worker_name).inc()
            registry.histogram(
                "repro_job_wall_ms",
                "Wall-clock time from claim to ack",
                labels=("worker", "cached"),
            ).labels(
                worker=worker_name,
                cached="yes" if outcome["cached"] else "no",
            ).observe(wall * 1000.0)
    except Exception as error:  # noqa: BLE001 - worker must survive jobs
        telemetry.counter("jobs.errors").inc()
        if registry.enabled:
            registry.counter(
                "repro_jobs_failed_total",
                "Jobs acked failed (the worker survived)",
                labels=("worker",),
            ).labels(worker=worker_name).inc()
        _ack_safely(
            queue,
            telemetry,
            job_id,
            {
                "status": "failed",
                "error": f"{type(error).__name__}: {error}",
                "worker": worker_name,
                "wall_s": time.time() - started,
            },
            "failed",
            registry=registry,
            worker_name=worker_name,
        )


def _ack_safely(
    queue, telemetry, job_id, outcome, state,
    registry: object = NULL_METRICS, worker_name: str = "",
) -> None:
    """Ack, tolerating a lease lost to requeue while the job ran.

    If the lease expired mid-run and another worker re-claimed the
    job, our claimed record is gone; the result (if any) is already in
    the content-addressed cache, so dropping the ack is harmless —
    count it and move on rather than killing the worker.
    """
    try:
        queue.ack(job_id, outcome, state=state)
    except ValueError:
        telemetry.counter("jobs.lost_leases").inc()
        if registry.enabled:
            registry.counter(
                "repro_jobs_lost_leases_total",
                "Acks dropped because the lease was re-claimed",
                labels=("worker",),
            ).labels(worker=worker_name).inc()


def serve(
    queue_dir: str,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    poll_interval_s: float = 0.2,
    drain: bool = False,
    max_jobs: Optional[int] = None,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    metrics: bool = False,
    max_restarts: int = 0,
    durable: bool = True,
) -> List[int]:
    """Run ``workers`` worker processes over one queue.

    Returns the exit codes of every worker incarnation (restarts
    append, so ``len(codes) - workers`` is the restart count).
    ``workers=1`` with ``max_restarts=0`` runs the loop in-process (no
    child process), which keeps single-worker serving debuggable
    exactly like ``sweep(n_workers=1)``.

    The supervisor restarts a worker that exits nonzero (crash, chaos
    kill) up to ``max_restarts`` times across the pool; replacements
    are named ``worker-{i}r{attempt}`` so their metrics and leases are
    distinguishable from the incarnation they replace.  Gracefully
    drained workers (exit 0) are not restarted.

    Live metrics are enabled either explicitly (``metrics=True``) or
    by an enabled ambient registry (the ``--metrics PATH`` CLI path):
    each worker writes atomic snapshot files under
    ``<queue>/metrics/``, and after the workers exit the merged queue
    metrics are folded into the ambient registry so the caller's
    exporter sees the whole session.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if max_restarts < 0:
        raise ValueError(
            f"max_restarts must be >= 0, got {max_restarts}"
        )
    ambient = current_metrics()
    want_metrics = metrics or ambient.enabled
    JobQueue(queue_dir, durable=durable)  # create the layout first
    ResultCache(_cache_root(queue_dir, cache_dir))
    if workers == 1 and max_restarts == 0:
        worker_loop(
            queue_dir,
            cache_dir=cache_dir,
            poll_interval_s=poll_interval_s,
            drain=drain,
            max_jobs=max_jobs,
            lease_s=lease_s,
            max_attempts=max_attempts,
            metrics=want_metrics,
            durable=durable,
        )
        codes = [0]
    else:
        import multiprocessing

        def spawn(index: int, attempt: int):
            name = f"worker-{index}" if attempt == 0 else (
                f"worker-{index}r{attempt}"
            )
            child = multiprocessing.Process(
                target=worker_loop,
                args=(queue_dir,),
                kwargs={
                    "cache_dir": cache_dir,
                    "poll_interval_s": poll_interval_s,
                    "drain": drain,
                    "max_jobs": max_jobs,
                    "lease_s": lease_s,
                    "max_attempts": max_attempts,
                    "owner": name,
                    "metrics": want_metrics,
                    "durable": durable,
                    "handle_signals": True,
                },
                name=f"repro-serve-{name}",
            )
            child.start()
            return {"index": index, "attempt": attempt, "child": child}

        active = [spawn(index, 0) for index in range(workers)]
        codes = []
        restarts = 0
        try:
            while active:
                for entry in list(active):
                    child = entry["child"]
                    child.join(0.05)
                    if child.is_alive():
                        continue
                    code = child.exitcode or 0
                    codes.append(code)
                    active.remove(entry)
                    if code != 0 and restarts < max_restarts:
                        restarts += 1
                        if ambient.enabled:
                            ambient.counter(
                                "repro_worker_restarts_total",
                                "Crashed workers restarted by serve()",
                            ).inc()
                        active.append(
                            spawn(
                                entry["index"], entry["attempt"] + 1
                            )
                        )
        except (KeyboardInterrupt, GracefulShutdown):
            for entry in active:
                entry["child"].terminate()
            for entry in active:
                entry["child"].join()
            raise
    if want_metrics and ambient.enabled:
        merged_queue_metrics(queue_dir, into=ambient)
    return codes


def merged_queue_metrics(
    queue_dir: str,
    into: Optional[MetricsRegistry] = None,
) -> Tuple[MetricsRegistry, List[Dict]]:
    """Merge a queue's per-worker metrics snapshots into one registry.

    On top of the file merge (counters/histograms add, gauges
    last-write-wins, per-worker heartbeat gauges derived from the
    snapshot timestamps) the queue depth gauges are re-sampled live,
    so a dashboard reflects the directory as it is *now*, not as of
    the last worker heartbeat.  Raises ``FileNotFoundError`` for a
    path that is not a queue.
    """
    queue = JobQueue(queue_dir, create=False)
    registry, workers = merge_worker_snapshots(queue_dir, into=into)
    depth = registry.gauge(
        "repro_queue_depth",
        "Jobs per queue state, re-sampled at merge time",
        labels=("state",),
    )
    for state, count in queue.counts().items():
        depth.labels(state=state).set(count)
    return registry, workers


def status(
    queue_dir: str,
    job_id: Optional[str] = None,
    metrics: bool = False,
    retries: int = 0,
    deadline_s: Optional[float] = None,
    retry_seed: int = 0,
) -> Dict:
    """Queue counts, or one job's full record when ``job_id`` given.

    ``metrics=True`` adds the merged live-metrics snapshot (and the
    per-worker heartbeat list) to the queue summary.  ``retries``
    backs off and retries transient errors — including ``ValueError``
    for a job that has not appeared yet, which makes a bounded-retry
    ``status`` double as "wait for the job to exist".
    """

    def attempt() -> Dict:
        queue = JobQueue(queue_dir, create=False)
        if job_id is not None:
            return queue.read(job_id)
        summary = {"queue": str(queue_dir), "counts": queue.counts()}
        summary["jobs"] = {
            state: queue.jobs(state) for state in ("claimed", "failed")
        }
        if metrics:
            registry, workers = merged_queue_metrics(queue_dir)
            summary["metrics"] = registry.snapshot()
            summary["workers"] = workers
        return summary

    return call_with_retries(
        attempt,
        retries=retries,
        deadline_s=deadline_s,
        seed=retry_seed,
        retry_on=(OSError, ValueError),
        on_retry=_retry_counter("status"),
    )


def result(
    queue_dir: str,
    job_id: str,
    cache_dir: Optional[str] = None,
    retries: int = 0,
    deadline_s: Optional[float] = None,
    retry_seed: int = 0,
) -> Tuple[Dict, Optional[bytes]]:
    """A finished job's ``(record, payload bytes)``.

    The payload is ``None`` while the job is still pending/claimed, or
    if its outcome was a failure.  ``retries`` retries transient
    errors (and not-yet-visible jobs) with deterministic backoff.
    """

    def attempt() -> Tuple[Dict, Optional[bytes]]:
        queue = JobQueue(queue_dir, create=False)
        record = queue.read(job_id)
        outcome = record.get("outcome") or {}
        key = outcome.get("cache_key")
        if record.get("state") != "done" or not key:
            return record, None
        cache = ResultCache(_cache_root(queue_dir, cache_dir))
        return record, cache.get(key)

    return call_with_retries(
        attempt,
        retries=retries,
        deadline_s=deadline_s,
        seed=retry_seed,
        retry_on=(OSError, ValueError),
        on_retry=_retry_counter("result"),
    )
