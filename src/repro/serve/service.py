"""Worker processes and client calls over the queue + cache.

The flow, end to end:

1. ``submit`` validates a :class:`~repro.serve.jobs.JobSpec`, computes
   its digests and cache key, and enqueues a pending record.
2. ``serve`` runs N :func:`worker_loop` processes.  Each claims jobs
   atomically, consults the result cache first — a duplicate
   submission is acked as a **cache hit** without simulating — and
   otherwise runs the simulation, stores the canonical payload, and
   acks with per-job telemetry (wall time, chunk count, a telemetry
   registry snapshot).
3. ``result`` reads a finished job's payload back from the cache via
   the cache key recorded in its outcome.

Every payload byte is determined by ``(config digest, trace digest,
code version)``; hits and misses of the same key return identical
bytes.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import TelemetryRegistry
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JobSpec,
    cache_key,
    code_version,
    result_payload_bytes,
    run_job,
)
from repro.serve.queue import (
    DEFAULT_LEASE_S,
    DEFAULT_MAX_ATTEMPTS,
    JobQueue,
)

__all__ = [
    "result",
    "serve",
    "status",
    "submit",
    "worker_loop",
]

_submit_counter = itertools.count()


def _cache_root(queue_dir: str, cache_dir: Optional[str]) -> str:
    return cache_dir or os.path.join(str(queue_dir), "cache")


def submit(
    queue_dir: str,
    spec: JobSpec,
    cache_dir: Optional[str] = None,
) -> Dict:
    """Enqueue ``spec``; returns the pending record (with ``job_id``).

    The record carries the spec plus its three digests, so workers
    (and humans reading the queue directory) see the cache identity
    without recomputing trace digests.
    """
    spec.validate()
    key = cache_key(spec)
    queue = JobQueue(queue_dir)
    job_id = (
        f"{int(time.time() * 1000):013d}-{key[:10]}-"
        f"{os.getpid()}-{next(_submit_counter)}"
    )
    record = {
        "job_id": job_id,
        "spec": spec.to_dict(),
        "cache_key": key,
        "config_digest": spec.config_digest(),
        "trace_digest": spec.trace_digest(),
        "code_version": code_version(),
        "submitted_at": time.time(),
        "already_cached": key in ResultCache(
            _cache_root(queue_dir, cache_dir)
        ),
    }
    queue.enqueue(job_id, record)
    return record


def worker_loop(
    queue_dir: str,
    cache_dir: Optional[str] = None,
    poll_interval_s: float = 0.2,
    drain: bool = False,
    max_jobs: Optional[int] = None,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    owner: Optional[str] = None,
) -> Dict:
    """Claim-and-run until stopped; returns this worker's telemetry.

    ``drain=True`` exits when no pending work remains (the CI/batch
    mode); otherwise the loop polls forever and is stopped by signal.
    ``max_jobs`` bounds the number of jobs this worker processes.
    """
    queue = JobQueue(
        queue_dir, lease_s=lease_s, max_attempts=max_attempts
    )
    cache = ResultCache(_cache_root(queue_dir, cache_dir))
    telemetry = TelemetryRegistry()
    worker_name = owner or f"worker-{os.getpid()}"
    processed = 0
    while True:
        queue.requeue_stale()
        record = queue.claim(owner=worker_name)
        if record is None:
            if drain:
                break
            time.sleep(poll_interval_s)
            continue
        _process_one(record, queue, cache, telemetry, worker_name)
        processed += 1
        if max_jobs is not None and processed >= max_jobs:
            break
    snapshot = telemetry.snapshot()
    snapshot["worker"] = worker_name
    snapshot["processed"] = processed
    return snapshot


def _process_one(
    record: Dict,
    queue: JobQueue,
    cache: ResultCache,
    telemetry: TelemetryRegistry,
    worker_name: str,
) -> None:
    job_id = record["job_id"]
    started = time.time()
    job_telemetry = TelemetryRegistry()
    try:
        spec = JobSpec.from_dict(record["spec"])
        key = cache_key(spec)
        cached = cache.get(key)
        if cached is not None:
            telemetry.counter("jobs.cache_hits").inc()
            payload = json.loads(cached.decode("ascii"))
            outcome = {
                "status": "done",
                "cached": True,
                "cache_key": key,
                "figures_sha256": payload["figures_sha256"],
                "worker": worker_name,
                "wall_s": time.time() - started,
            }
        else:
            telemetry.counter("jobs.cache_misses").inc()

            def on_chunk(progress):
                job_telemetry.counter("replay.chunks").inc()
                job_telemetry.stats("replay.chunk_mean_response_ms").add(
                    progress.chunk.mean_response_ms
                )

            payload, stats = run_job(spec, on_chunk=on_chunk)
            cache.put(key, result_payload_bytes(payload))
            wall = time.time() - started
            job_telemetry.counter("replay.requests").inc(
                stats["completed"]
            )
            job_telemetry.stats("job.wall_s").add(wall)
            outcome = {
                "status": "done",
                "cached": False,
                "cache_key": key,
                "figures_sha256": payload["figures_sha256"],
                "worker": worker_name,
                "wall_s": wall,
                "requests": stats["completed"],
                "chunks": stats["chunks"],
                "telemetry": job_telemetry.snapshot(),
            }
        _ack_safely(queue, telemetry, job_id, outcome, "done")
        telemetry.counter("jobs.completed").inc()
        telemetry.stats("job.wall_s").add(time.time() - started)
    except Exception as error:  # noqa: BLE001 - worker must survive jobs
        telemetry.counter("jobs.errors").inc()
        _ack_safely(
            queue,
            telemetry,
            job_id,
            {
                "status": "failed",
                "error": f"{type(error).__name__}: {error}",
                "worker": worker_name,
                "wall_s": time.time() - started,
            },
            "failed",
        )


def _ack_safely(queue, telemetry, job_id, outcome, state) -> None:
    """Ack, tolerating a lease lost to requeue while the job ran.

    If the lease expired mid-run and another worker re-claimed the
    job, our claimed record is gone; the result (if any) is already in
    the content-addressed cache, so dropping the ack is harmless —
    count it and move on rather than killing the worker.
    """
    try:
        queue.ack(job_id, outcome, state=state)
    except ValueError:
        telemetry.counter("jobs.lost_leases").inc()


def serve(
    queue_dir: str,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    poll_interval_s: float = 0.2,
    drain: bool = False,
    max_jobs: Optional[int] = None,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> List[int]:
    """Run ``workers`` worker processes over one queue.

    Returns the worker exit codes.  ``workers=1`` runs the loop
    in-process (no child process), which keeps single-worker serving
    debuggable exactly like ``sweep(n_workers=1)``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    JobQueue(queue_dir)  # create the layout before children race on it
    ResultCache(_cache_root(queue_dir, cache_dir))
    if workers == 1:
        worker_loop(
            queue_dir,
            cache_dir=cache_dir,
            poll_interval_s=poll_interval_s,
            drain=drain,
            max_jobs=max_jobs,
            lease_s=lease_s,
            max_attempts=max_attempts,
        )
        return [0]
    import multiprocessing

    children = [
        multiprocessing.Process(
            target=worker_loop,
            args=(queue_dir,),
            kwargs={
                "cache_dir": cache_dir,
                "poll_interval_s": poll_interval_s,
                "drain": drain,
                "max_jobs": max_jobs,
                "lease_s": lease_s,
                "max_attempts": max_attempts,
                "owner": f"worker-{index}",
            },
            name=f"repro-serve-{index}",
        )
        for index in range(workers)
    ]
    for child in children:
        child.start()
    codes = []
    try:
        for child in children:
            child.join()
            codes.append(child.exitcode or 0)
    except KeyboardInterrupt:
        for child in children:
            child.terminate()
        for child in children:
            child.join()
        raise
    return codes


def status(queue_dir: str, job_id: Optional[str] = None) -> Dict:
    """Queue counts, or one job's full record when ``job_id`` given."""
    queue = JobQueue(queue_dir)
    if job_id is not None:
        return queue.read(job_id)
    summary = {"queue": str(queue_dir), "counts": queue.counts()}
    summary["jobs"] = {
        state: queue.jobs(state) for state in ("claimed", "failed")
    }
    return summary


def result(
    queue_dir: str,
    job_id: str,
    cache_dir: Optional[str] = None,
) -> Tuple[Dict, Optional[bytes]]:
    """A finished job's ``(record, payload bytes)``.

    The payload is ``None`` while the job is still pending/claimed, or
    if its outcome was a failure.
    """
    queue = JobQueue(queue_dir)
    record = queue.read(job_id)
    outcome = record.get("outcome") or {}
    key = outcome.get("cache_key")
    if record.get("state") != "done" or not key:
        return record, None
    cache = ResultCache(_cache_root(queue_dir, cache_dir))
    return record, cache.get(key)
