#!/usr/bin/env python
"""Consolidating an OLTP disk array onto one intra-disk parallel drive.

The scenario of the paper's limit study (§7.1): a transaction-
processing workload runs on a 24-disk, performance-tuned array.  Can a
single high-capacity drive replace it?  This example walks the whole
argument on the Financial workload:

1. the array (MD) handles the load comfortably but burns >100 W;
2. a naive single-drive migration (HC-SD) collapses;
3. the bottleneck is rotational latency, not seek time;
4. a 4-actuator version of the same drive closes most of the gap at
   roughly one-tenth of the array's power.

Run:  python examples/oltp_consolidation.py  [requests]
"""

import sys

from repro.experiments.configs import build_hcsd_system, build_md_system
from repro.experiments.runner import run_trace
from repro.metrics.report import format_cdf_table, format_table
from repro.metrics.cdf import RESPONSE_TIME_EDGES_MS
from repro.sim.engine import Environment
from repro.workloads.commercial import FINANCIAL


def main():
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    workload = FINANCIAL
    trace = workload.generate(requests)
    print(
        f"Financial workload: {requests} requests, "
        f"{workload.disks}-disk original array, "
        f"mean inter-arrival {workload.mean_interarrival_ms} ms\n"
    )

    runs = []
    env = Environment()
    runs.append(("MD (24 disks)",
                 run_trace(env, build_md_system(env, workload), trace)))
    env = Environment()
    runs.append(("HC-SD (1 disk)",
                 run_trace(env, build_hcsd_system(env, workload), trace)))
    env = Environment()
    runs.append(("HC-SD, seeks=0",
                 run_trace(env, build_hcsd_system(env, workload,
                                                  seek_scale=0.0), trace)))
    env = Environment()
    runs.append(("HC-SD, rotation=0",
                 run_trace(env, build_hcsd_system(env, workload,
                                                  rotation_scale=0.0),
                           trace)))
    env = Environment()
    runs.append(("HC-SD-SA(4)",
                 run_trace(env, build_hcsd_system(env, workload,
                                                  actuators=4), trace)))

    rows = [
        (label, r.mean_response_ms, r.percentile(90), r.power.total_watts)
        for label, r in runs
    ]
    print(
        format_table(
            ["system", "mean_ms", "p90_ms", "power_W"],
            rows,
            title="Consolidation walk-through",
            float_format="{:.1f}",
        )
    )

    labels = [f"{e:g}" for e in RESPONSE_TIME_EDGES_MS] + ["200+"]
    print()
    print(
        format_cdf_table(
            labels,
            [(label, r.response_cdf()) for label, r in runs],
            title="Response-time CDFs",
        )
    )
    md, sa4 = runs[0][1], runs[-1][1]
    print(
        f"\nSA(4) delivers {md.mean_response_ms / sa4.mean_response_ms:.2f}x "
        f"the array's mean response at "
        f"{md.power.total_watts / sa4.power.total_watts:.1f}x less power."
    )


if __name__ == "__main__":
    main()
