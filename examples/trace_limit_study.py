#!/usr/bin/env python
"""Trace the paper's limit study and export a Perfetto-ready trace.

Runs a scaled-down Figure 2 limit study (MD vs HC-SD on every
commercial workload) plus one multi-actuator HC-SD-SA(4) pass under an
ambient tracer, prints the recorded span and telemetry summary, and
writes Chrome trace-event JSON.  Drop the output on
https://ui.perfetto.dev to scrub the run: each drive is a process row,
each arm assembly a thread track, and every request decomposes into
queue / seek / rotation / transfer spans.

Tracing changes nothing: the script re-runs the study untraced and
shows the figure digests matching bit for bit.

Run:  python examples/trace_limit_study.py [requests]
"""

import sys

from repro.obs import validate_chrome_trace, to_chrome_trace, tracing
from repro.obs.export import write_chrome_trace
from repro.obs.run import figures_digest, limit_study_figures
from repro.experiments.limit_study import run_limit_study

OUT = "limit_study_trace.json"


def main():
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 800

    with tracing() as tracer:
        results = run_limit_study(requests=requests)

    # -- what the tracer saw ------------------------------------------
    by_cat = ", ".join(
        f"{cat}={count}"
        for cat, count in sorted(tracer.spans_by_category().items())
    )
    print(f"spans recorded: {len(tracer.spans)} ({by_cat})")
    print(f"tracks: {len(tracer.tracks())} (process, thread) pairs")
    print()
    for line in tracer.telemetry.summary_lines():
        print(f"  {line}")
    print()

    # -- determinism check: tracing changed no figure bit -------------
    traced_digest = figures_digest(limit_study_figures(results))
    untraced = run_limit_study(requests=requests)
    untraced_digest = figures_digest(limit_study_figures(untraced))
    match = "MATCH" if traced_digest == untraced_digest else "MISMATCH"
    print(f"figures sha256 traced:   {traced_digest}")
    print(f"figures sha256 untraced: {untraced_digest}  -> {match}")

    # -- export -------------------------------------------------------
    problems = validate_chrome_trace(to_chrome_trace(tracer))
    assert not problems, problems
    path = write_chrome_trace(tracer, OUT)
    print(f"\nwrote {path} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
