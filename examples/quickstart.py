#!/usr/bin/env python
"""Quickstart: simulate one drive, then its intra-disk parallel twin.

Builds a Barracuda-ES-class 750 GB drive, replays a small random
workload against it, then repeats with a 4-actuator (``D1A4S1H1``)
version of the same drive and compares response time and power — the
paper's core idea in thirty lines.

Run:  python examples/quickstart.py
"""

from repro.core.taxonomy import DashConfig
from repro.experiments.configs import build_hcsd_drive
from repro.experiments.runner import run_trace
from repro.metrics.report import format_table
from repro.raid.array import DiskArray
from repro.raid.layout import JBODLayout
from repro.sim.engine import Environment
from repro.workloads.synthetic import SyntheticWorkload


def simulate(actuators: int, requests: int = 3000):
    """One open-loop run against a drive with ``actuators`` assemblies."""
    env = Environment()
    drive = build_hcsd_drive(env, actuators=actuators)
    # Wrap the bare drive in a trivial single-member "array" so the
    # shared trace runner can drive it.
    system = DiskArray(
        env,
        [drive],
        JBODLayout([drive.geometry.total_sectors]),
        label=f"SA({actuators})",
    )
    workload = SyntheticWorkload(
        capacity_sectors=drive.geometry.total_sectors,
        mean_interarrival_ms=5.0,
        footprint_fraction=0.02,
        seed=7,
    )
    trace = workload.generate(requests)
    return run_trace(env, system, trace)


def main():
    config = DashConfig(arm_assemblies=4)
    print(f"Simulating D1A1S1H1 vs {config.notation} "
          f"({config.max_data_paths} data path(s) max)\n")
    rows = []
    for actuators in (1, 2, 4):
        result = simulate(actuators)
        rows.append(
            (
                f"SA({actuators})",
                result.mean_response_ms,
                result.percentile(90),
                result.collector.mean_rotational_ms,
                result.power.total_watts,
            )
        )
    print(
        format_table(
            ["design", "mean_ms", "p90_ms", "rot_latency_ms", "power_W"],
            rows,
            title="Conventional vs intra-disk parallel (same drive, same workload)",
            float_format="{:.2f}",
        )
    )
    print(
        "\nExtra actuators cut rotational latency (the paper's primary "
        "bottleneck)\nwhile average power stays near the conventional "
        "drive's, because only\none voice-coil motor is active at a time."
    )


if __name__ == "__main__":
    main()
