#!/usr/bin/env python
"""Black-box drive characterisation and analytic validation.

Treats a simulated drive the way DIXtrac treats a real one: probe it
through timed I/O only, recover its rotation period, seek curve and
zone bandwidths, and compare against the spec that built it.  Then
cross-check the simulator's queueing behaviour against the M/G/1
Pollaczek-Khinchine prediction.

Run:  python examples/characterize_drive.py
"""

from repro.disk.specs import BARRACUDA_ES, CHEETAH_10K
from repro.metrics.report import format_table
from repro.tools.characterize import characterize_drive
from repro.tools.validate import validate_against_mg1


def main():
    for spec in (BARRACUDA_ES, CHEETAH_10K):
        print(f"=== {spec.name} ===")
        report = characterize_drive(spec)
        print(report.summary())
        truth = [
            ("rotation period (ms)", 60000.0 / spec.rpm,
             report.rotation_period_ms),
            ("RPM", spec.rpm, report.rpm_estimate),
        ]
        print(
            format_table(
                ["quantity", "spec", "probed"],
                truth,
                title="probe vs spec",
                float_format="{:.2f}",
            )
        )
        print()

    print("=== M/G/1 cross-validation (Barracuda-class, FCFS) ===")
    rows = []
    for interarrival in (60.0, 30.0, 20.0):
        result = validate_against_mg1(
            BARRACUDA_ES, interarrival, requests=2000
        )
        rows.append(
            (
                interarrival,
                result.utilisation,
                result.predicted_mean_ms,
                result.simulated_mean_ms,
                result.relative_error,
            )
        )
    print(
        format_table(
            ["interarrival_ms", "utilisation", "P-K_predicted_ms",
             "simulated_ms", "rel_error"],
            rows,
            float_format="{:.3f}",
        )
    )
    print(
        "\nThe simulator tracks queueing theory at light-to-moderate "
        "load; deviations\ngrow with utilisation because successive "
        "service times are correlated\nthrough the head position "
        "(a real-disk effect M/G/1 ignores)."
    )


if __name__ == "__main__":
    main()
