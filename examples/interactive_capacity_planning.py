#!/usr/bin/env python
"""Closed-loop capacity planning: how many concurrent users fit?

Open-loop trace replay diverges once a drive saturates; interactive
systems instead behave closed-loop — each user waits for their I/O and
thinks before issuing the next.  This example asks: for a target mean
response time, how many concurrent users can one drive sustain, and
how much does intra-disk parallelism raise that ceiling?

Run:  python examples/interactive_capacity_planning.py [target_ms]
"""

import sys

from repro.core.parallel_disk import ParallelDisk
from repro.core.taxonomy import DashConfig
from repro.disk.scheduler import FCFSScheduler
from repro.disk.specs import BARRACUDA_ES
from repro.metrics.report import format_table, hbar
from repro.sim.engine import Environment
from repro.workloads.closedloop import ClosedLoopClients

CLIENT_STEPS = (1, 2, 4, 8, 16, 32, 64)


def capacity(actuators: int, target_ms: float):
    """Largest client count whose mean response meets the target."""
    best = 0
    curve = []
    for clients in CLIENT_STEPS:
        env = Environment()
        drive = ParallelDisk(
            env,
            BARRACUDA_ES,
            config=DashConfig(arm_assemblies=actuators),
            scheduler=FCFSScheduler(),
        )
        loop = ClosedLoopClients(
            env,
            drive,
            clients=clients,
            capacity_sectors=drive.geometry.total_sectors // 50,
            think_time_ms=30.0,
            seed=5,
        )
        result = loop.run(40)
        curve.append(
            (clients, result.mean_response_ms, result.throughput_iops)
        )
        if result.mean_response_ms <= target_ms:
            best = clients
    return best, curve


def main():
    target_ms = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    print(f"Target: mean response <= {target_ms:g} ms, "
          "30 ms think time, 4 KB requests\n")
    summary = []
    for actuators in (1, 2, 4):
        best, curve = capacity(actuators, target_ms)
        label = "conventional" if actuators == 1 else f"SA({actuators})"
        print(
            format_table(
                ["clients", "mean_ms", "IOPS"],
                curve,
                title=f"{label} drive",
                float_format="{:.1f}",
            )
        )
        print()
        summary.append((label, best))
    peak = max(best for _, best in summary) or 1
    print(f"Users sustained at <= {target_ms:g} ms:")
    for label, best in summary:
        print(f"  {label:>12}: {best:3d}  {hbar(best, peak, width=30)}")


if __name__ == "__main__":
    main()
